"""Ablations of this implementation's own design choices (DESIGN.md §6).

Not paper figures — these isolate the internal decisions the reproduction
made so their costs are visible:

* dynamic PST updates (swap-down insert / promote-child delete with
  scapegoat rebuilds) versus rebuilding the whole tree from scratch on
  every skyband change;
* the staircase's binary-search dominance test versus the basic
  dominance-counting prefix scan, measured per test at equal state;
* deterministic median-of-medians selection versus randomized
  quickselect in the Algorithm 2 candidate-selection step.
"""

from __future__ import annotations

import random
import time

from repro.baselines.basic import BasicMaintainer
from repro.bench.harness import PaperParameters, synthetic_rows, us_per
from repro.bench.reporting import print_figure
from repro.core.maintenance import SCaseMaintainer
from repro.core.pair import Pair
from repro.scoring.library import k_closest_pairs
from repro.stream.manager import StreamManager
from repro.stream.object import StreamObject
from repro.structures.pst import PrioritySearchTree
from repro.structures.selection import quickselect_smallest, select_smallest


def _random_pairs(count, seed):
    rng = random.Random(seed)
    pairs = []
    for i in range(count):
        older = StreamObject(rng.randint(1, 10_000), (0.0,))
        newer = StreamObject(20_000 + i, (0.0,))
        pairs.append(Pair(older, newer, rng.uniform(0, 100)))
    return pairs


def run_pst_ablation():
    """Dynamic PST ops vs full rebuild per change."""
    sizes = [100, 400, 1600]
    churn = 200
    series = {"dynamic": [], "rebuild": []}
    for size in sizes:
        base = _random_pairs(size, seed=size)
        extra = _random_pairs(churn, seed=size + 1)

        pst = PrioritySearchTree(base)
        start = time.perf_counter()
        for pair in extra:
            pst.insert(pair)
            pst.delete(pair)
        series["dynamic"].append(
            us_per(time.perf_counter() - start, 2 * churn)
        )

        pst = PrioritySearchTree(base)
        current = list(base)
        start = time.perf_counter()
        for pair in extra:
            current.append(pair)
            pst = PrioritySearchTree(current)
            current.pop()
            pst = PrioritySearchTree(current)
        series["rebuild"].append(
            us_per(time.perf_counter() - start, 2 * churn)
        )
    print_figure(
        "Ablation: dynamic PST ops vs full rebuild", "skyband size",
        sizes, series, unit="us/op",
    )
    return sizes, series


def run_dominance_ablation():
    """Staircase binary search vs basic counting, per dominance test."""
    N, K, d = PaperParameters.N_DEFAULT, PaperParameters.K_DEFAULT, 2
    ticks = PaperParameters.TICKS
    warm = synthetic_rows(N, d, seed=15)
    measured = synthetic_rows(N + ticks, d, seed=15)[N:]
    series = {"scase(staircase)": [], "basic(counting)": []}
    for maintainer_cls, label in (
        (SCaseMaintainer, "scase(staircase)"),
        (BasicMaintainer, "basic(counting)"),
    ):
        manager = StreamManager(N, d)
        maintainer = maintainer_cls(k_closest_pairs(d), K)
        for row in warm:
            event = manager.append(row)
            maintainer.on_tick(manager, event.new, event.expired)
        start = time.perf_counter()
        for row in measured:
            event = manager.append(row)
            maintainer.on_tick(manager, event.new, event.expired)
        series[label].append(us_per(time.perf_counter() - start, ticks))
    print_figure(
        f"Ablation: staircase vs dominance counting (N={N}, K={K})",
        "config", ["default"], series,
    )
    return series


def run_selection_ablation():
    """Deterministic select vs quickselect on Algorithm-2-sized inputs."""
    sizes = [64, 512, 4096]
    k = PaperParameters.K_DEFAULT
    repeats = 200
    rng = random.Random(16)
    series = {"quickselect": [], "median-of-medians": []}
    for size in sizes:
        data = [rng.random() for _ in range(size)]
        start = time.perf_counter()
        for _ in range(repeats):
            quickselect_smallest(data, k)
        series["quickselect"].append(
            us_per(time.perf_counter() - start, repeats)
        )
        start = time.perf_counter()
        for _ in range(repeats):
            select_smallest(data, k)
        series["median-of-medians"].append(
            us_per(time.perf_counter() - start, repeats)
        )
    print_figure(
        f"Ablation: selection algorithms (k={k})", "candidates",
        sizes, series, unit="us/select",
    )
    return sizes, series


def run_batching_ablation():
    """Throughput gain from batched ingestion (one Algorithm 4 sweep per
    batch) at the cost of result latency."""
    from repro.core.monitor import TopKPairsMonitor

    N, K, d = PaperParameters.N_DEFAULT, PaperParameters.K_DEFAULT, 2
    ticks = PaperParameters.TICKS * 2
    batch_sizes = [1, 4, 16, 64]
    warm = synthetic_rows(N, d, seed=17)
    measured = synthetic_rows(N + ticks, d, seed=17)[N:]
    series = {"scase": []}
    for batch in batch_sizes:
        monitor = TopKPairsMonitor(N, d, strategy="scase")
        monitor.register_query(k_closest_pairs(d), k=K, n=N)
        monitor.extend(warm, batch_size=batch)
        start = time.perf_counter()
        monitor.extend(measured, batch_size=batch)
        series["scase"].append(
            us_per(time.perf_counter() - start, ticks)
        )
    print_figure(
        "Ablation: batched ingestion throughput", "batch size",
        batch_sizes, series,
    )
    return batch_sizes, series


def test_ablation_pst_dynamic_vs_rebuild(benchmark):
    sizes, series = benchmark.pedantic(
        run_pst_ablation, rounds=1, iterations=1
    )
    # Dynamic updates must beat rebuild-per-change, increasingly so.
    assert series["dynamic"][-1] < series["rebuild"][-1]


def test_ablation_staircase_vs_counting(benchmark):
    series = benchmark.pedantic(
        run_dominance_ablation, rounds=1, iterations=1
    )
    assert series["scase(staircase)"][0] <= series["basic(counting)"][0]


def test_ablation_selection(benchmark):
    sizes, series = benchmark.pedantic(
        run_selection_ablation, rounds=1, iterations=1
    )
    # Both are usable; quickselect's constants win at every size here.
    assert series["quickselect"][-1] <= series["median-of-medians"][-1]


def test_ablation_batched_ingestion(benchmark):
    batch_sizes, series = benchmark.pedantic(
        run_batching_ablation, rounds=1, iterations=1
    )
    # Batching must not be slower, and large batches should clearly win.
    assert series["scase"][-1] < series["scase"][0]
