"""Figure 7 — overall cost per object update vs N on (simulated) real
sensor data: Naive vs SCase vs Supreme, with 100 random queries.

Paper setup: the Intel-lab stream, scoring function
``|dt| / (|dtemp| * |dhum|)`` (arbitrary, so the SCase path applies), 100
queries with random ``k <= K`` and ``n <= N``.  Expected shape: SCase sits
within a small factor of the oracle-assisted Supreme while Naive is one to
three orders of magnitude slower and the gap widens with N (the paper
could not even finish Naive beyond N = 500k).
"""

from __future__ import annotations

import random

from repro.baselines.naive import NaiveAlgorithm
from repro.baselines.supreme import SupremeAlgorithm
from repro.bench.harness import (
    PaperParameters,
    sensor_rows,
    time_monitor,
    time_naive,
    time_supreme,
    us_per,
)
from repro.bench.reporting import print_figure
from repro.core.monitor import TopKPairsMonitor
from repro.scoring.library import sensor_scoring_function

from shape_checks import mostly_dominates

K = PaperParameters.K_DEFAULT
NUM_QUERIES = 100


def _register_random_queries(monitor, sf, N, rng):
    for _ in range(NUM_QUERIES):
        monitor.register_query(
            sf, k=rng.randint(1, K), n=rng.randint(2, N), continuous=True
        )


def run_figure7():
    x_values = PaperParameters.N_SWEEP[:3]  # naive cannot go further here
    ticks = PaperParameters.TICKS
    series = {"naive": [], "scase": [], "supreme": []}
    for N in x_values:
        warmup = sensor_rows(N, seed=7)
        measured = sensor_rows(N + ticks, seed=7)[N:]
        rng = random.Random(N)

        sf = sensor_scoring_function()
        monitor = TopKPairsMonitor(N, 3, strategy="scase")
        monitor.register_query(sf, k=K, n=N)  # pins skyband depth at K
        _register_random_queries(monitor, sf, N, rng)
        for row in warmup:
            monitor.append(row)
        series["scase"].append(us_per(time_monitor(monitor, measured), ticks))

        naive = NaiveAlgorithm(sensor_scoring_function(), K, N)
        for row in warmup:
            naive.append(row)
        series["naive"].append(us_per(time_naive(naive, measured), ticks))

        supreme = SupremeAlgorithm(
            sensor_scoring_function(), K, N, num_attributes=3
        )
        for row in warmup:
            supreme.append(row)
        series["supreme"].append(
            us_per(time_supreme(supreme, measured), ticks)
        )
    print_figure(
        "Fig 7: overall cost on sensor data (100 random queries)",
        "N", x_values, series,
    )
    return x_values, series


def test_fig7_overall_cost_real_data(benchmark):
    x_values, series = benchmark.pedantic(run_figure7, rounds=1, iterations=1)
    # Shape: naive is the clear loser everywhere; supreme the lower bound.
    assert mostly_dominates(series["scase"], series["naive"], slack=1.0)
    assert mostly_dominates(series["supreme"], series["scase"], slack=1.5)
    # Naive degrades faster with N than SCase does.
    naive_growth = series["naive"][-1] / series["naive"][0]
    scase_growth = series["scase"][-1] / series["scase"][0]
    assert naive_growth > 0.5 * scase_growth
