"""Figure 8 — overall cost per object update on synthetic data.

Paper setup: four queries (one per scoring function s1..s4) each with
``k = K`` and ``n = N``; uniform data; (a) sweeps K at the default N, (b)
sweeps N at the default K.  Expected shape: SCase stays within a modest
factor of Supreme, both grow roughly linearly in N and only mildly in K.
"""

from __future__ import annotations

from repro.baselines.supreme import SupremeAlgorithm
from repro.bench.harness import (
    PaperParameters,
    synthetic_rows,
    time_monitor,
    time_supreme,
    us_per,
)
from repro.bench.reporting import print_figure
from repro.core.monitor import TopKPairsMonitor
from repro.scoring.library import paper_scoring_functions

from shape_checks import mostly_dominates

D = PaperParameters.D_DEFAULT
NUM_FUNCTIONS = 4


def _measure_point(N, K, ticks):
    """Cost per object update (averaged over the four queries)."""
    warmup = synthetic_rows(N, D, seed=8)
    measured = synthetic_rows(N + ticks, D, seed=8)[N:]

    monitor = TopKPairsMonitor(N, D, strategy="scase")
    for sf in paper_scoring_functions(D):
        monitor.register_query(sf, k=K, n=N)
    for row in warmup:
        monitor.append(row)
    scase = us_per(time_monitor(monitor, measured), ticks * NUM_FUNCTIONS)

    supreme_total = 0.0
    for sf in paper_scoring_functions(D):
        supreme = SupremeAlgorithm(sf, K, N, num_attributes=D)
        supreme.register_continuous(query_id=1, k=K, n=N)
        for row in warmup:
            supreme.append(row)
        supreme_total += time_supreme(supreme, measured)
    supreme_cost = us_per(supreme_total, ticks * NUM_FUNCTIONS)
    return scase, supreme_cost


def run_fig8a():
    x_values = PaperParameters.K_SWEEP
    ticks = PaperParameters.TICKS
    series = {"scase": [], "supreme": []}
    for K in x_values:
        scase, supreme = _measure_point(PaperParameters.N_DEFAULT, K, ticks)
        series["scase"].append(scase)
        series["supreme"].append(supreme)
    print_figure(
        "Fig 8(a): overall cost vs K (n=N, k=K, uniform)", "K",
        x_values, series,
    )
    return x_values, series


def run_fig8b():
    x_values = PaperParameters.N_SWEEP
    ticks = PaperParameters.TICKS
    series = {"scase": [], "supreme": []}
    for N in x_values:
        scase, supreme = _measure_point(N, PaperParameters.K_DEFAULT, ticks)
        series["scase"].append(scase)
        series["supreme"].append(supreme)
    print_figure(
        "Fig 8(b): overall cost vs N (n=N, k=K, uniform)", "N",
        x_values, series,
    )
    return x_values, series


def test_fig8a_vary_K(benchmark):
    x_values, series = benchmark.pedantic(run_fig8a, rounds=1, iterations=1)
    # Supreme is the lower bound at every K.
    assert mostly_dominates(series["supreme"], series["scase"], slack=1.0,
                            threshold=0.8)
    # K has only a mild effect on SCase (not super-linear).
    assert series["scase"][-1] < series["scase"][0] * (
        4 * x_values[-1] / x_values[0]
    )


def test_fig8b_vary_N(benchmark):
    x_values, series = benchmark.pedantic(run_fig8b, rounds=1, iterations=1)
    assert mostly_dominates(series["supreme"], series["scase"], slack=1.0,
                            threshold=0.8)
    # Cost grows with N for both (roughly linear in N).
    assert series["scase"][-1] > series["scase"][0]
    assert series["supreme"][-1] > series["supreme"][0]
