"""Figure 9 — effect of the query parameters k and n.

Paper setup: four queries (s1..s4) with fixed ``(k, n)``; SCase does not
know ``k``/``n`` in advance (it maintains its K-skyband over the full
window N with the default K), while **naive++** and **supreme++** are
built per query with exactly ``K = k`` and ``window = n``.  Expected
shape:

* (a) naive++ wins at ``k = 1`` (it keeps only O(n) pairs) but degrades
  with k; SCase's line is flat in k (its work depends on K and N only,
  so it is measured once and drawn flat, exactly like the paper's curve);
* (b) supreme++'s cost grows with n (its lower bound is O(n)) while
  SCase's stays flat; SCase beats naive++ by the time n reaches N.
"""

from __future__ import annotations

from repro.baselines.naive import NaiveAlgorithm
from repro.baselines.supreme import SupremeAlgorithm
from repro.bench.harness import (
    PaperParameters,
    synthetic_rows,
    time_monitor,
    time_naive,
    time_supreme,
    us_per,
)
from repro.bench.reporting import print_figure
from repro.core.monitor import TopKPairsMonitor
from repro.scoring.library import paper_scoring_functions

D = PaperParameters.D_DEFAULT
N = PaperParameters.N_DEFAULT
K = PaperParameters.K_DEFAULT
NUM_FUNCTIONS = 4


def _measure_scase(ticks):
    """SCase cost per query per update — independent of the query's
    (k, n), because maintenance is governed by (K, N)."""
    warmup = synthetic_rows(N, D, seed=9)
    measured = synthetic_rows(N + ticks, D, seed=9)[N:]
    monitor = TopKPairsMonitor(N, D, strategy="scase")
    for sf in paper_scoring_functions(D):
        monitor.register_query(sf, k=K, n=N)
    for row in warmup:
        monitor.append(row)
    return us_per(time_monitor(monitor, measured), ticks * NUM_FUNCTIONS)


def _measure_plus_plus(k, n, ticks):
    """naive++ / supreme++ cost per query per update for one (k, n)."""
    warmup = synthetic_rows(N, D, seed=9)
    measured = synthetic_rows(N + ticks, D, seed=9)[N:]
    naive_total = supreme_total = 0.0
    for sf in paper_scoring_functions(D):
        naive = NaiveAlgorithm.plus_plus(sf, k, n)
        for row in warmup:
            naive.append(row)
        naive_total += time_naive(naive, measured)

        supreme = SupremeAlgorithm.plus_plus(sf, k, n, num_attributes=D)
        supreme.register_continuous(query_id=1, k=k, n=n)
        for row in warmup:
            supreme.append(row)
        supreme_total += time_supreme(supreme, measured)
    return (
        us_per(naive_total, ticks * NUM_FUNCTIONS),
        us_per(supreme_total, ticks * NUM_FUNCTIONS),
    )


def run_fig9a():
    x_values = [1, 5, 10, 20]  # paper: k <= K = 20
    n = max(2, N // 10)  # paper: n = 1000 with N = 10,000
    ticks = PaperParameters.TICKS
    scase_cost = _measure_scase(ticks)
    series = {"scase": [], "naive++": [], "supreme++": []}
    for k in x_values:
        naive_pp, supreme_pp = _measure_plus_plus(k, n, ticks)
        series["scase"].append(scase_cost)
        series["naive++"].append(naive_pp)
        series["supreme++"].append(supreme_pp)
    print_figure(
        f"Fig 9(a): cost vs k (n={n}, N={N}, uniform)", "k",
        x_values, series,
    )
    return x_values, series


def run_fig9b():
    x_values = [max(2, N // 10), N // 4, N // 2, N]
    ticks = PaperParameters.TICKS
    scase_cost = _measure_scase(ticks)
    series = {"scase": [], "naive++": [], "supreme++": []}
    for n in x_values:
        naive_pp, supreme_pp = _measure_plus_plus(K, n, ticks)
        series["scase"].append(scase_cost)
        series["naive++"].append(naive_pp)
        series["supreme++"].append(supreme_pp)
    print_figure(
        f"Fig 9(b): cost vs n (k={K}, N={N}, uniform)", "n",
        x_values, series,
    )
    return x_values, series


def test_fig9a_vary_k(benchmark):
    x_values, series = benchmark.pedantic(run_fig9a, rounds=1, iterations=1)
    # naive++ degrades with k; SCase is flat by construction.
    assert series["naive++"][-1] > series["naive++"][0]
    # At k = 1 naive++'s tiny state can beat SCase (paper Fig 9(a)).
    # By k = K the tables must have turned.
    assert series["scase"][-1] < series["naive++"][-1]


def test_fig9b_vary_n(benchmark):
    x_values, series = benchmark.pedantic(run_fig9b, rounds=1, iterations=1)
    # supreme++ grows with n (its lower bound is O(n)).
    assert series["supreme++"][-1] > 1.5 * series["supreme++"][0]
    # SCase beats naive++ by the time n reaches N.
    assert series["scase"][-1] < series["naive++"][-1]
