"""Figure 10 — snapshot query answering cost.

Paper setup: a warmed K-skyband; compare the PST traversal (Algorithm 2,
"snapshot"), the score-ordered scan ("linear") and the oracle read
("supreme") per query, sweeping (a) K, (b) N, (c) k, (d) n.  Expected
shape: supreme is negligible; snapshot beats linear and scales better in
K and N; snapshot grows with k; linear closes the gap (and can win) as n
approaches N, where its scan stops after ~k hits anyway.
"""

from __future__ import annotations

import time

from repro.baselines.linear import linear_top_k
from repro.baselines.supreme import SupremeAlgorithm
from repro.bench.harness import PaperParameters, synthetic_rows, us_per
from repro.bench.reporting import print_figure
from repro.core.maintenance import SCaseMaintainer
from repro.core.query import answer_snapshot
from repro.scoring.library import k_closest_pairs
from repro.stream.manager import StreamManager

from shape_checks import mostly_dominates

D = 2
QUERY_REPEATS = 400


def build_state(N, K, seed=10):
    """A warmed maintainer plus a twin supreme at the same stream point."""
    sf = k_closest_pairs(D)
    manager = StreamManager(N, D)
    maintainer = SCaseMaintainer(sf, K)
    supreme = SupremeAlgorithm(k_closest_pairs(D), K, N, num_attributes=D)
    for row in synthetic_rows(2 * N, D, seed=seed):
        event = manager.append(row)
        maintainer.on_tick(manager, event.new, event.expired)
        supreme.append(row)
    return manager, maintainer, supreme


def measure_query_costs(manager, maintainer, supreme, k, n):
    """Per-query microseconds for snapshot / linear / supreme."""
    now = manager.now_seq
    start = time.perf_counter()
    for _ in range(QUERY_REPEATS):
        answer_snapshot(maintainer.pst, k, n, now)
    snapshot_cost = us_per(time.perf_counter() - start, QUERY_REPEATS)

    skyband = maintainer.skyband
    start = time.perf_counter()
    for _ in range(QUERY_REPEATS):
        linear_top_k(skyband, k, n, now)
    linear_cost = us_per(time.perf_counter() - start, QUERY_REPEATS)

    before = supreme.chargeable_seconds
    for _ in range(QUERY_REPEATS):
        supreme.top_k(k, n)
    supreme_cost = us_per(supreme.chargeable_seconds - before, QUERY_REPEATS)
    return snapshot_cost, linear_cost, supreme_cost


def sweep(configurations):
    series = {"snapshot": [], "linear": [], "supreme": []}
    for N, K, k, n in configurations:
        manager, maintainer, supreme = build_state(N, K)
        snap, lin, sup = measure_query_costs(manager, maintainer, supreme, k, n)
        series["snapshot"].append(snap)
        series["linear"].append(lin)
        series["supreme"].append(sup)
    return series


def run_fig10a():
    N = PaperParameters.N_DEFAULT
    n, k = max(2, N // 10), PaperParameters.K_DEFAULT
    x_values = PaperParameters.K_SWEEP[1:] + [100]  # k=20 needs K>=20
    series = sweep([(N, K, k, n) for K in x_values])
    print_figure(
        f"Fig 10(a): snapshot query cost vs K (k={k}, n={n})", "K",
        x_values, series, unit="us/query",
    )
    return x_values, series


def run_fig10b():
    K, k = PaperParameters.K_DEFAULT, PaperParameters.K_DEFAULT
    x_values = PaperParameters.N_SWEEP
    series = sweep([(N, K, k, max(2, N // 10)) for N in x_values])
    print_figure(
        f"Fig 10(b): snapshot query cost vs N (K=k={K})", "N",
        x_values, series, unit="us/query",
    )
    return x_values, series


def run_fig10c():
    N, K = PaperParameters.N_DEFAULT, 100  # paper: K=100 so any k <= 100
    n = max(2, N // 10)
    x_values = [1, 5, 20, 50, 100]
    series = sweep([(N, K, k, n) for k in x_values])
    print_figure(
        f"Fig 10(c): snapshot query cost vs k (K={K}, n={n})", "k",
        x_values, series, unit="us/query",
    )
    return x_values, series


def run_fig10d():
    N, K = PaperParameters.N_DEFAULT, PaperParameters.K_DEFAULT
    k = PaperParameters.K_DEFAULT
    x_values = [max(2, N // 10), N // 4, N // 2, N]
    series = sweep([(N, K, k, n) for n in x_values])
    print_figure(
        f"Fig 10(d): snapshot query cost vs n (K=k={K})", "n",
        x_values, series, unit="us/query",
    )
    return x_values, series


def test_fig10a_vary_K(benchmark):
    x_values, series = benchmark.pedantic(run_fig10a, rounds=1, iterations=1)
    assert mostly_dominates(series["supreme"], series["snapshot"], slack=1.0,
                            threshold=0.8)
    # Linear degrades with K (skyband grows); snapshot much less.
    assert series["linear"][-1] > series["linear"][0]

def test_fig10b_vary_N(benchmark):
    x_values, series = benchmark.pedantic(run_fig10b, rounds=1, iterations=1)
    assert mostly_dominates(series["supreme"], series["snapshot"], slack=1.0,
                            threshold=0.8)
    # Both query algorithms run on the skyband, whose size is only
    # logarithmic in N — so quadrupling N must not even double the cost.
    assert series["snapshot"][-1] < 2.5 * series["snapshot"][0]
    assert series["linear"][-1] < 2.5 * series["linear"][0]


def test_fig10c_vary_k(benchmark):
    x_values, series = benchmark.pedantic(run_fig10c, rounds=1, iterations=1)
    # Snapshot cost grows with k, as the analysis predicts.
    assert series["snapshot"][-1] > series["snapshot"][0]


def test_fig10d_vary_n(benchmark):
    x_values, series = benchmark.pedantic(run_fig10d, rounds=1, iterations=1)
    # The paper's crossover: at n = N linear is O(k) and hard to beat.
    assert series["linear"][-1] <= series["linear"][0]
    assert series["linear"][-1] < series["snapshot"][-1]
