"""Figure 11 — continuous query answering cost.

Paper setup: many continuous queries with random ``k <= K`` and
``n <= N``; compare the incremental continuous algorithm against
recomputing from scratch per tick with the linear scan or the snapshot
(PST) algorithm, and against the oracle-notified supreme.  (a) sweeps K
with a fixed query population; (b) sweeps the number of queries.
Expected shape: continuous beats both recompute strategies and scales
better; supreme is negligible.

Costs reported are query-answering work only (per query per update for
(a), total per update for (b)) — maintenance is shared and identical
across competitors, exactly as in the paper.
"""

from __future__ import annotations

import random
import time

from repro.baselines.linear import linear_top_k
from repro.baselines.supreme import SupremeAlgorithm
from repro.bench.harness import PaperParameters, synthetic_rows, us_per
from repro.bench.reporting import print_figure
from repro.core.continuous import ContinuousQueryState
from repro.core.maintenance import SCaseMaintainer
from repro.core.query import TopKPairsQuery, answer_snapshot
from repro.scoring.library import k_closest_pairs
from repro.stream.manager import StreamManager

from shape_checks import mostly_dominates

D = 2
N = PaperParameters.N_DEFAULT


def _measure(K, num_queries, ticks, seed=11):
    """Per-tick query-answering seconds for the four strategies."""
    rng = random.Random(seed)
    sf = k_closest_pairs(D)
    manager = StreamManager(N, D)
    maintainer = SCaseMaintainer(sf, K)
    supreme = SupremeAlgorithm(k_closest_pairs(D), K, N, num_attributes=D)
    specs = [
        (rng.randint(1, K), rng.randint(2, N)) for _ in range(num_queries)
    ]
    warmup = synthetic_rows(N, D, seed=seed)
    measured = synthetic_rows(N + ticks, D, seed=seed)[N:]
    for row in warmup:
        event = manager.append(row)
        maintainer.on_tick(manager, event.new, event.expired)
        supreme.append(row)
    states = []
    for k, n in specs:
        state = ContinuousQueryState(TopKPairsQuery(sf, k, n, continuous=True))
        state.initialize(maintainer.pst, manager.now_seq)
        states.append(state)
    for query_id, (k, n) in enumerate(specs):
        supreme.register_continuous(query_id, k, n)

    continuous_s = linear_s = snapshot_s = 0.0
    supreme_before = supreme.chargeable_query_seconds
    for row in measured:
        event = manager.append(row)
        delta = maintainer.on_tick(manager, event.new, event.expired)
        now = manager.now_seq
        start = time.perf_counter()
        for state in states:
            state.apply(delta, maintainer.pst, now)
        continuous_s += time.perf_counter() - start
        start = time.perf_counter()
        for k, n in specs:
            linear_top_k(maintainer.skyband, k, n, now)
        linear_s += time.perf_counter() - start
        start = time.perf_counter()
        for k, n in specs:
            answer_snapshot(maintainer.pst, k, n, now)
        snapshot_s += time.perf_counter() - start
        supreme.append(row)
    supreme_s = supreme.chargeable_query_seconds - supreme_before
    return continuous_s, linear_s, snapshot_s, supreme_s


def run_fig11a():
    x_values = PaperParameters.K_SWEEP
    num_queries, ticks = 50, PaperParameters.TICKS
    series = {"continuous": [], "linear": [], "snapshot": [], "supreme": []}
    for K in x_values:
        cont, lin, snap, sup = _measure(K, num_queries, ticks)
        per = ticks * num_queries
        series["continuous"].append(us_per(cont, per))
        series["linear"].append(us_per(lin, per))
        series["snapshot"].append(us_per(snap, per))
        series["supreme"].append(us_per(sup, per))
    print_figure(
        f"Fig 11(a): continuous cost vs K ({num_queries} random queries)",
        "K", x_values, series, unit="us/query/update",
    )
    return x_values, series


def run_fig11b():
    x_values = [10, 25, 50, 100]
    K, ticks = PaperParameters.K_DEFAULT, PaperParameters.TICKS
    series = {"continuous": [], "linear": [], "snapshot": [], "supreme": []}
    for num_queries in x_values:
        cont, lin, snap, sup = _measure(K, num_queries, ticks)
        series["continuous"].append(us_per(cont, ticks))
        series["linear"].append(us_per(lin, ticks))
        series["snapshot"].append(us_per(snap, ticks))
        series["supreme"].append(us_per(sup, ticks))
    print_figure(
        f"Fig 11(b): total continuous cost vs #queries (K={K})",
        "#queries", x_values, series, unit="us/update",
    )
    return x_values, series


def test_fig11a_vary_K(benchmark):
    x_values, series = benchmark.pedantic(run_fig11a, rounds=1, iterations=1)
    # Incremental continuous clearly beats the snapshot recompute at
    # every K; at this scale the linear rescan is only *comparable*
    # (tiny skybands make a flat list scan extremely cheap in CPython —
    # see EXPERIMENTS.md), so assert a bounded factor rather than a win.
    assert mostly_dominates(series["continuous"], series["snapshot"],
                            slack=1.0, threshold=1.0)
    assert mostly_dominates(series["continuous"], series["linear"],
                            slack=5.0, threshold=1.0)


def test_fig11b_vary_num_queries(benchmark):
    x_values, series = benchmark.pedantic(run_fig11b, rounds=1, iterations=1)
    assert mostly_dominates(series["continuous"], series["snapshot"],
                            slack=1.0, threshold=0.75)
    # Total cost grows with the number of queries for every strategy.
    assert series["continuous"][-1] > series["continuous"][0]
    assert series["snapshot"][-1] > series["snapshot"][0]
