"""Figure 12 — skyband maintenance techniques.

Paper setup: maintenance cost only (no queries) for four algorithms —
**basic** (dominance counting, no staircase), **SCase** (Algorithm 3 with
the K-staircase), **TA** (Algorithm 5, global scoring functions only) and
**supreme** (oracle lower bound).  Sweeps: (a) K, (b) N, (c) the number of
attributes d, (d) the data distribution.  Expected shape: TA < SCase <
basic everywhere; TA degrades as d grows (its access bound is
``(d+1) N^{d/(d+1)} K^{1/(d+1)}``) and can even beat supreme at large N;
basic and SCase are insensitive to d.
"""

from __future__ import annotations

from repro.baselines.basic import BasicMaintainer
from repro.baselines.supreme import SupremeAlgorithm
from repro.bench.harness import (
    PaperParameters,
    synthetic_rows,
    time_supreme,
    us_per,
)
from repro.bench.reporting import print_figure
from repro.core.maintenance import SCaseMaintainer, TAMaintainer
from repro.scoring.library import k_closest_pairs
from repro.stream.manager import StreamManager

from shape_checks import mostly_dominates

import time


def _time_maintainer(maintainer_cls, N, K, d, rows_warm, rows_measured):
    sf = k_closest_pairs(d)
    manager = StreamManager(N, d)
    maintainer = maintainer_cls(sf, K)
    for row in rows_warm:
        event = manager.append(row)
        maintainer.on_tick(manager, event.new, event.expired)
    start = time.perf_counter()
    for row in rows_measured:
        event = manager.append(row)
        maintainer.on_tick(manager, event.new, event.expired)
    return time.perf_counter() - start


def _measure_point(N, K, d, ticks, distribution="uniform"):
    warm = synthetic_rows(N, d, distribution=distribution, seed=12)
    measured = synthetic_rows(
        N + ticks, d, distribution=distribution, seed=12
    )[N:]
    basic = _time_maintainer(BasicMaintainer, N, K, d, warm, measured)
    scase = _time_maintainer(SCaseMaintainer, N, K, d, warm, measured)
    ta = _time_maintainer(TAMaintainer, N, K, d, warm, measured)
    supreme = SupremeAlgorithm(k_closest_pairs(d), K, N, num_attributes=d)
    for row in warm:
        supreme.append(row)
    supreme_s = time_supreme(supreme, measured)
    return {
        "basic": us_per(basic, ticks),
        "scase": us_per(scase, ticks),
        "ta": us_per(ta, ticks),
        "supreme": us_per(supreme_s, ticks),
    }


def _sweep(points, labels):
    series = {"basic": [], "scase": [], "ta": [], "supreme": []}
    for point in points:
        result = _measure_point(**point)
        for name in series:
            series[name].append(result[name])
    return series


def run_fig12a():
    x_values = PaperParameters.K_SWEEP
    d, N, ticks = PaperParameters.D_DEFAULT, PaperParameters.N_DEFAULT, \
        PaperParameters.TICKS
    series = _sweep(
        [dict(N=N, K=K, d=d, ticks=ticks) for K in x_values], x_values
    )
    print_figure("Fig 12(a): maintenance cost vs K", "K", x_values, series)
    return x_values, series


def run_fig12b():
    x_values = PaperParameters.N_SWEEP
    d, K, ticks = PaperParameters.D_DEFAULT, PaperParameters.K_DEFAULT, \
        PaperParameters.TICKS
    series = _sweep(
        [dict(N=N, K=K, d=d, ticks=ticks) for N in x_values], x_values
    )
    print_figure("Fig 12(b): maintenance cost vs N", "N", x_values, series)
    return x_values, series


def run_fig12c():
    x_values = PaperParameters.D_SWEEP
    N, K, ticks = PaperParameters.N_DEFAULT, PaperParameters.K_DEFAULT, \
        PaperParameters.TICKS
    series = _sweep(
        [dict(N=N, K=K, d=d, ticks=ticks) for d in x_values], x_values
    )
    print_figure("Fig 12(c): maintenance cost vs d", "d", x_values, series)
    return x_values, series


def run_fig12d():
    x_values = PaperParameters.DISTRIBUTIONS
    N, K, d = PaperParameters.N_DEFAULT, PaperParameters.K_DEFAULT, \
        PaperParameters.D_DEFAULT
    ticks = PaperParameters.TICKS
    series = _sweep(
        [
            dict(N=N, K=K, d=d, ticks=ticks, distribution=dist)
            for dist in x_values
        ],
        x_values,
    )
    print_figure(
        "Fig 12(d): maintenance cost vs distribution", "distribution",
        x_values, series,
    )
    return x_values, series


def test_fig12a_vary_K(benchmark):
    x_values, series = benchmark.pedantic(run_fig12a, rounds=1, iterations=1)
    assert mostly_dominates(series["ta"], series["scase"], slack=1.0,
                            threshold=0.75)
    assert mostly_dominates(series["scase"], series["basic"], slack=1.0,
                            threshold=0.75)


def test_fig12b_vary_N(benchmark):
    x_values, series = benchmark.pedantic(run_fig12b, rounds=1, iterations=1)
    assert mostly_dominates(series["ta"], series["scase"], slack=1.0,
                            threshold=0.75)
    # TA's advantage grows with N: its cost is sublinear in N.
    ta_growth = series["ta"][-1] / series["ta"][0]
    scase_growth = series["scase"][-1] / series["scase"][0]
    assert ta_growth < scase_growth


def test_fig12c_vary_d(benchmark):
    x_values, series = benchmark.pedantic(run_fig12c, rounds=1, iterations=1)
    # TA degrades with d (more lists, weaker threshold) ...
    assert series["ta"][-1] > series["ta"][0]
    # ... while basic/SCase costs are driven by N, not d (allow the cost
    # of computing d-attribute scores to show up, bounded by ~d).
    assert series["scase"][-1] < series["scase"][0] * len(x_values)


def test_fig12d_vary_distribution(benchmark):
    x_values, series = benchmark.pedantic(run_fig12d, rounds=1, iterations=1)
    # TA consistently beats SCase; SCase consistently beats basic (paper:
    # "on each different data set").
    assert mostly_dominates(series["ta"], series["scase"], slack=1.0,
                            threshold=0.67)
    assert mostly_dominates(series["scase"], series["basic"], slack=1.0,
                            threshold=0.67)
