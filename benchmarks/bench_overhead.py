"""Overhead of the repro.obs instrumentation (docs/observability.md).

Every hot-path hook in the monitoring pipeline is guarded by a single
``recorder.enabled`` attribute check, and the default
:class:`~repro.obs.NullRecorder` pins ``enabled = False`` as a class
attribute — so a monitor built without a recorder must pay essentially
nothing for the instrumentation points.  Two measurements back that up:

* **pipeline**: identical synthetic streams through an uninstrumented
  monitor (NullRecorder) and a fully instrumented one (MetricsRecorder
  with per-tick tracing), interleaved best-of-``_REPEATS``.  The
  disabled path must not come within 5% of the enabled path's cost —
  i.e. ``t_null <= 1.05 * t_enabled`` even under timer noise, and in
  practice it is strictly faster.
* **hook micro-cost**: the marginal nanoseconds of one guarded no-op
  hook (``if obs.enabled: obs.on_pst_insert()``) over an empty loop
  body, the per-call price of leaving the instrumentation compiled in.

Results are written to ``BENCH_obs_overhead.json`` in the working
directory (CI uploads it as an artifact).
"""

from __future__ import annotations

import json
import time

from repro.bench.harness import PaperParameters, synthetic_rows, us_per
from repro.bench.reporting import stamp_result
from repro.core.monitor import TopKPairsMonitor
from repro.obs import NULL_RECORDER, MetricsRecorder
from repro.scoring.library import k_closest_pairs

_REPEATS = 5
_OUTPUT = "BENCH_obs_overhead.json"


def _run_once(rows, N, recorder):
    monitor = TopKPairsMonitor(N, 2, recorder=recorder)
    handle = monitor.register_query(k_closest_pairs(2), k=5)
    start = time.perf_counter()
    for row in rows:
        monitor.append(row)
    elapsed = time.perf_counter() - start
    assert monitor.results(handle) is not None
    return elapsed


def _hook_micro_cost(repeats=200_000):
    """Marginal seconds per guarded no-op hook call."""
    obs = NULL_RECORDER
    indices = range(repeats)
    start = time.perf_counter()
    for _ in indices:
        if obs.enabled:
            obs.on_pst_insert()
    guarded = time.perf_counter() - start
    start = time.perf_counter()
    for _ in indices:
        pass
    empty = time.perf_counter() - start
    return max(0.0, (guarded - empty) / repeats)


def run_overhead():
    N = PaperParameters.N_DEFAULT
    rows = synthetic_rows(N + 4 * PaperParameters.TICKS, 2, seed=7)
    null_times = []
    enabled_times = []
    # Interleaved so drift (thermal, scheduler) hits both arms equally.
    for _ in range(_REPEATS):
        null_times.append(_run_once(rows, N, None))
        enabled_times.append(_run_once(rows, N, MetricsRecorder()))
    t_null = min(null_times)
    t_enabled = min(enabled_times)
    result = {
        "rows": len(rows),
        "window": N,
        "repeats": _REPEATS,
        "null_seconds": t_null,
        "enabled_seconds": t_enabled,
        "null_us_per_row": us_per(t_null, len(rows)),
        "enabled_us_per_row": us_per(t_enabled, len(rows)),
        "enabled_over_null_pct": (t_enabled / t_null - 1.0) * 100.0,
        "disabled_overhead_pct": (t_null / t_enabled - 1.0) * 100.0,
        "hook_ns": _hook_micro_cost() * 1e9,
    }
    stamp_result(result, suite="obs_overhead")
    with open(_OUTPUT, "w", encoding="utf-8") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return result


def test_disabled_overhead_under_5pct():
    result = run_overhead()
    # The uninstrumented (NullRecorder) monitor must never cost more
    # than the instrumented one plus measurement noise: if the disabled
    # hooks were expensive, t_null would creep up toward t_enabled.
    assert result["null_seconds"] <= 1.05 * result["enabled_seconds"], result
    # One guarded no-op hook stays under a microsecond outright.
    assert result["hook_ns"] < 1000, result


if __name__ == "__main__":
    outcome = run_overhead()
    print(json.dumps(outcome, indent=2, sort_keys=True))
    print(f"written to {_OUTPUT}")
