"""Serving-layer round-trip benchmark (docs/serving.md).

Thin wrapper around :mod:`repro.bench.serve` — the same suite the
``repro bench serve`` CLI runs.  Boots a real loopback server
(:class:`~repro.serve.server.BackgroundServer`) and measures, through a
:class:`~repro.serve.client.ServeClient`, acknowledged ingest
throughput, subscribe delta latency (p50/p99 from the ingest request to
the tick's delta event) and checkpoint save/restore timing; writes
``BENCH_serve.json``.

Scaled by ``REPRO_BENCH_SCALE``; CI's serve-smoke job runs a reduced
pass and uploads the JSON as an artifact.
"""

from __future__ import annotations

import json
import os
import tempfile

from repro.bench.serve import (
    DEFAULT_OUTPUT,
    run_serve_bench,
    write_serve_json,
)


def test_serve_roundtrip_delta_replay_consistent():
    """Smoke gate: deltas replayed client-side must reproduce the
    server's polled answer, and every ingest must be acknowledged."""
    with tempfile.TemporaryDirectory() as tmp:
        result = run_serve_bench(
            window=64, ingest_rows=120, delta_ticks=40,
            checkpoint_path=os.path.join(tmp, "ck.json"),
        )
    assert result["deltas"]["replay_consistent"], result["deltas"]
    assert result["ingest"]["rows"] == result["params"]["ingest_rows"]
    assert result["checkpoint"]["objects"] <= result["params"]["window"]


if __name__ == "__main__":
    outcome = run_serve_bench()
    path = write_serve_json(outcome, DEFAULT_OUTPUT)
    print(json.dumps(outcome, indent=2, sort_keys=True))
    print(f"written to {path}")
