"""Storage footprint — the paper's space claims as measurements.

§III-B: the framework stores the window in ``O(ND)`` (Theorem 4's lower
bound) plus one K-skyband of expected ``O(K log(N/K))`` pairs per unique
scoring function; the naive competitor stores ``O(KN)`` pairs.  This
benchmark measures the actual stored-pair counts at steady state and
compares them with each other and with the Theorem 3 estimate.
"""

from __future__ import annotations

import statistics

from repro.analysis.theory import expected_skyband_size
from repro.baselines.naive import NaiveAlgorithm
from repro.bench.harness import PaperParameters, synthetic_rows
from repro.bench.reporting import print_figure
from repro.core.maintenance import SCaseMaintainer
from repro.scoring.library import k_closest_pairs
from repro.stream.manager import StreamManager


def _steady_state_counts(N, K, samples=20):
    sf = k_closest_pairs(2)
    manager = StreamManager(N, 2)
    maintainer = SCaseMaintainer(sf, K)
    naive = NaiveAlgorithm(k_closest_pairs(2), K, N)
    skyband_sizes = []
    naive_sizes = []
    rows = synthetic_rows(2 * N + samples * 3, 2, seed=18)
    for i, row in enumerate(rows):
        event = manager.append(row)
        maintainer.on_tick(manager, event.new, event.expired)
        naive.append(row)
        if i >= 2 * N and (i - 2 * N) % 3 == 0:
            skyband_sizes.append(len(maintainer.skyband))
            naive_sizes.append(naive.stored_pairs)
    return (
        statistics.fmean(skyband_sizes),
        statistics.fmean(naive_sizes),
    )


def run_storage():
    K = PaperParameters.K_DEFAULT
    x_values = PaperParameters.N_SWEEP
    series = {"skyband": [], "naive O(KN)": [], "theorem3": [],
              "all pairs O(N^2)": []}
    for N in x_values:
        skyband, naive = _steady_state_counts(N, K)
        series["skyband"].append(skyband)
        series["naive O(KN)"].append(naive)
        series["theorem3"].append(expected_skyband_size(K, N))
        series["all pairs O(N^2)"].append(N * (N - 1) / 2)
    print_figure(
        f"Storage: stored pairs at steady state (K={K})", "N",
        x_values, series, unit="pairs", precision=0,
    )
    return x_values, series


def test_storage_footprints(benchmark):
    x_values, series = benchmark.pedantic(run_storage, rounds=1, iterations=1)
    for i, N in enumerate(x_values):
        skyband = series["skyband"][i]
        naive = series["naive O(KN)"][i]
        predicted = series["theorem3"][i]
        # The skyband is a vanishing fraction of both the naive store and
        # the full pair set, and tracks the Theorem 3 estimate.
        assert skyband < naive / 3
        assert skyband < 0.1 * N * (N - 1) / 2
        assert predicted / 4 < skyband < predicted * 4
    # Skyband growth in N is logarithmic; naive's is linear.
    skyband_growth = series["skyband"][-1] / series["skyband"][0]
    naive_growth = series["naive O(KN)"][-1] / series["naive O(KN)"][0]
    assert skyband_growth < 0.5 * naive_growth
