"""Analysis validation — Theorem 3 and Lemma 2 against measurements.

Not a figure in the paper, but the paper's cost claims all rest on two
expectations: the K-skyband holds ``O(K log(N/K))`` pairs (Theorem 3) and
each arrival adds only ``O(K)`` non-dominated pairs (Lemma 2).  These
benchmarks measure both on uniform streams (whose scores are independent
of ages, the analysis' assumption) and check the measured values stay
within small constant factors of the closed forms.
"""

from __future__ import annotations

import statistics

from repro.analysis.cost_model import Counters
from repro.analysis.theory import (
    expected_new_skyband_pairs,
    expected_skyband_size,
)
from repro.bench.harness import PaperParameters, synthetic_rows
from repro.bench.reporting import print_figure
from repro.core.maintenance import SCaseMaintainer
from repro.scoring.library import k_closest_pairs
from repro.stream.manager import StreamManager


def _measured_skyband_sizes(N, K, samples=40):
    """Steady-state skyband sizes sampled along a uniform stream."""
    sf = k_closest_pairs(2)
    manager = StreamManager(N, 2)
    maintainer = SCaseMaintainer(sf, K)
    sizes = []
    rows = synthetic_rows(2 * N + samples * 5, 2, seed=13)
    for i, row in enumerate(rows):
        event = manager.append(row)
        maintainer.on_tick(manager, event.new, event.expired)
        if i >= 2 * N and (i - 2 * N) % 5 == 0:
            sizes.append(len(maintainer.skyband))
    return sizes


def run_theorem3():
    K = PaperParameters.K_DEFAULT
    x_values = PaperParameters.N_SWEEP
    series = {"measured": [], "K+K(H_N-H_sqrtK)": []}
    for N in x_values:
        series["measured"].append(
            statistics.fmean(_measured_skyband_sizes(N, K))
        )
        series["K+K(H_N-H_sqrtK)"].append(expected_skyband_size(K, N))
    print_figure(
        f"Theorem 3: K-skyband size vs N (K={K}, uniform)", "N",
        x_values, series, unit="pairs",
    )
    return x_values, series


def run_lemma2():
    N = PaperParameters.N_DEFAULT
    x_values = PaperParameters.K_SWEEP
    ticks = PaperParameters.TICKS
    series = {"measured": [], "sqrtK + K*C": []}
    for K in x_values:
        sf = k_closest_pairs(2)
        manager = StreamManager(N, 2)
        counters = Counters()
        maintainer = SCaseMaintainer(sf, K, counters=counters)
        rows = synthetic_rows(N + ticks, 2, seed=14)
        for row in rows[:N]:
            event = manager.append(row)
            maintainer.on_tick(manager, event.new, event.expired)
        counters.reset()
        for row in rows[N:]:
            event = manager.append(row)
            maintainer.on_tick(manager, event.new, event.expired)
        # pairs that survived the staircase dominance test, per arrival
        series["measured"].append(counters.candidate_pairs / ticks)
        series["sqrtK + K*C"].append(expected_new_skyband_pairs(K, N))
    print_figure(
        f"Lemma 2: new non-dominated pairs per arrival (N={N})", "K",
        x_values, series, unit="pairs/arrival",
    )
    return x_values, series


def test_skyband_size_matches_theory(benchmark):
    x_values, series = benchmark.pedantic(run_theorem3, rounds=1, iterations=1)
    for measured, predicted in zip(series["measured"],
                                   series["K+K(H_N-H_sqrtK)"]):
        assert predicted / 4 <= measured <= predicted * 4
    # Growth in N is logarithmic: quadrupling N far less than doubles size.
    assert series["measured"][-1] < 2 * series["measured"][0]


def test_lemma2_new_pairs_per_arrival(benchmark):
    x_values, series = benchmark.pedantic(run_lemma2, rounds=1, iterations=1)
    N = PaperParameters.N_DEFAULT
    for K, measured in zip(x_values, series["measured"]):
        # O(K), not O(N): a generous constant-factor envelope.
        assert measured <= 6 * K + 6
        assert measured < N / 4
