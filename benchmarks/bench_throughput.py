"""Fast-path vs legacy maintenance throughput (docs/performance.md).

Thin wrapper around :mod:`repro.bench.throughput` — the same suite the
``repro bench throughput`` CLI runs.  Streams the §VI-A synthetic
distributions plus an expiry-heavy time-horizon workload through
identical monitors with ``fast_path=True`` (coalesced expiry + seeded
suffix re-sweep) and ``fast_path=False`` (the pre-fast-path
rebuild-per-expiry / full-MaxHeap-sweep baseline), and writes
``BENCH_throughput.json`` with ticks/sec, the speedup ratio, p50/p99
tick latency and a per-phase breakdown.

Scaled by ``REPRO_BENCH_SCALE``; CI's bench-smoke job runs a reduced
pass and uploads the JSON as an artifact.
"""

from __future__ import annotations

import json

from repro.bench.throughput import (
    DEFAULT_OUTPUT,
    run_throughput,
    write_throughput_json,
)


def test_fast_path_no_slower_on_expiry_heavy():
    """Smoke gate: the fast path must never lose to the legacy path on
    the workload built to favour it (full-scale runs show >=2x; the
    smoke threshold leaves headroom for CI timer noise)."""
    result = run_throughput(repeats=2, ticks=120, window=150)
    heavy = result["workloads"]["expiry_heavy"]
    assert heavy["speedup"] >= 1.0, heavy


if __name__ == "__main__":
    outcome = run_throughput()
    path = write_throughput_json(outcome, DEFAULT_OUTPUT)
    print(json.dumps(outcome, indent=2, sort_keys=True))
    print(f"written to {path}")
