"""Shared helpers for the figure benchmarks.

Every benchmark regenerates one paper figure: it sweeps the figure's
x-axis, measures each algorithm's cost in the paper's unit, prints the
series table (run with ``-s`` to see it) and asserts the figure's
qualitative *shape* (who wins, how the curves move).  Absolute numbers
differ from the paper — its testbed was compiled code on 2012 hardware;
see EXPERIMENTS.md for the side-by-side reading.
"""

from __future__ import annotations


def fraction_leq(xs, ys, slack=1.0):
    """Fraction of positions where xs[i] <= ys[i] * slack."""
    assert len(xs) == len(ys)
    hits = sum(1 for x, y in zip(xs, ys) if x <= y * slack)
    return hits / len(xs)


def mostly_dominates(cheaper, dearer, slack=1.2, threshold=0.6):
    """Soft series comparison: ``cheaper`` is at most ``slack`` times
    ``dearer`` at a ``threshold`` fraction of the sweep points.  Used for
    shape assertions that must not be flaky on noisy CI machines."""
    return fraction_leq(cheaper, dearer, slack) >= threshold
