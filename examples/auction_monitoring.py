#!/usr/bin/env python3
"""Online-auction analytics (paper §I's SQL example).

    Select a.id, b.id from auction a, auction b
    where a.id < b.id
    order by dist(a.spec, b.spec) - |a.bid - b.bid|
    limit k
    window [7 days]

Finds pairs of products with *similar specifications* that sold for
*very different final bids* inside a 7-day time-based sliding window —
the example also exercises the library's time-based window support.

Run:  python examples/auction_monitoring.py
"""

from __future__ import annotations

import random

from repro import LambdaScoringFunction, TopKPairsMonitor

DAY = 86_400.0
CATALOG = {
    # product family -> (spec vector nucleus, typical price)
    "phone-64gb": ((6.1, 64.0, 12.0), 350.0),
    "phone-128gb": ((6.1, 128.0, 12.0), 420.0),
    "laptop-i5": ((14.0, 512.0, 16.0), 800.0),
    "laptop-i7": ((14.0, 512.0, 32.0), 1050.0),
    "tablet": ((10.9, 256.0, 8.0), 500.0),
}


def auction_scoring() -> LambdaScoringFunction:
    """dist(spec_a, spec_b) - |bid_a - bid_b| (an arbitrary function:
    the negated bid term makes it non-monotonic, so the SCase path runs)."""

    def score(a, b) -> float:
        spec_distance = sum(
            abs(x - y) for x, y in zip(a.values[:3], b.values[:3])
        )
        bid_difference = abs(a.values[3] - b.values[3])
        return spec_distance - bid_difference

    return LambdaScoringFunction(score, name="auction-spec-vs-bid")


def main() -> None:
    rng = random.Random(11)
    monitor = TopKPairsMonitor(
        window_size=100_000,        # safety cap; expiry is time-driven
        num_attributes=4,           # 3 spec dims + final bid
        time_horizon=7 * DAY,
    )
    scoring = auction_scoring()
    query = monitor.register_query(scoring, k=3, continuous=True)

    print("simulating 3 weeks of auction closings ...\n")
    t = 0.0
    auction_id = 0
    for day in range(1, 22):
        for _ in range(rng.randint(8, 14)):  # closings per day
            t += rng.uniform(0.2, 2.5) * 3600.0
            auction_id += 1
            family = rng.choice(list(CATALOG))
            spec_nucleus, typical = CATALOG[family]
            spec = tuple(v * rng.uniform(0.98, 1.02) for v in spec_nucleus)
            bid = typical * rng.uniform(0.8, 1.2)
            if rng.random() < 0.04:   # the interesting events: fire sales
                bid *= rng.uniform(0.3, 0.5)
            monitor.append(
                (*spec, bid),
                timestamp=t,
                payload=f"{family}#{auction_id}",
            )
        if day % 7 == 0:
            print(f"day {day}: similar items, very different final bids "
                  f"(7-day window):")
            for pair in monitor.results(query):
                a, b = pair.objects()
                print(
                    f"  {a.payload:>16} sold {a.values[3]:7.2f}  vs  "
                    f"{b.payload:<16} sold {b.values[3]:7.2f}  "
                    f"score {pair.score:8.2f}"
                )
            print()

    print(f"objects currently in the 7-day window: {len(monitor.manager)}")
    print(f"skyband size: {monitor.skyband_size(scoring)} pairs")


if __name__ == "__main__":
    main()
