#!/usr/bin/env python3
"""Pair trading (paper §I): monitor diverging correlated stocks.

A pair trader wants, continuously, the pairs of *fundamentally similar*
stocks whose *recent returns diverge most* — buy the laggard, sell the
leader, profit when the spread reverts.  Following the paper's intro, we
score a pair of ticks by

    score = w1 * |fundamental_a - fundamental_b|   (similar companies ...)
          - w2 * |return_a - return_b|             (... diverging prices)

which is a global scoring function: two absolute-difference locals, one
negated, combined by a weighted sum — so the TA-optimized maintenance
path applies automatically.

The simulated market has 12 stocks in 4 sectors; within a sector the
fundamental score is close.  Two stocks of one sector are occasionally
driven apart to create trading opportunities.

Run:  python examples/pair_trading.py
"""

from __future__ import annotations

import random

from repro import TopKPairsMonitor
from repro.scoring import (
    AbsoluteDifference,
    GlobalScoringFunction,
    NegatedAbsoluteDifference,
    WeightedSumCombiner,
)

SECTORS = {
    "energy": ["XOM", "CVX", "SHEL"],
    "tech": ["AAPL", "MSFT", "GOOG"],
    "banks": ["JPM", "BAC", "WFC"],
    "drinks": ["KO", "PEP", "KDP"],
}
FUNDAMENTAL = {  # sector-clustered "similarity" coordinate
    "XOM": 1.00, "CVX": 1.05, "SHEL": 1.10,
    "AAPL": 2.00, "MSFT": 2.04, "GOOG": 2.08,
    "JPM": 3.00, "BAC": 3.06, "WFC": 3.12,
    "KO": 4.00, "PEP": 4.03, "KDP": 4.08,
}


def divergence_scoring() -> GlobalScoringFunction:
    """Small fundamental difference, large return difference -> small score."""
    return GlobalScoringFunction(
        [
            (0, AbsoluteDifference()),         # attribute 0: fundamentals
            (1, NegatedAbsoluteDifference()),  # attribute 1: 5-tick return
        ],
        WeightedSumCombiner([3.0, 1.0]),
        name="pair-trading-divergence",
    )


def main() -> None:
    rng = random.Random(7)
    tickers = [t for sector in SECTORS.values() for t in sector]
    returns = {t: 0.0 for t in tickers}

    monitor = TopKPairsMonitor(window_size=600, num_attributes=2)
    scoring = divergence_scoring()
    query = monitor.register_query(scoring, k=3, n=240, continuous=True)

    print("streaming simulated ticks; look for KO/PEP divergence alerts\n")
    for tick in range(1, 1201):
        ticker = rng.choice(tickers)
        # returns follow a mild random walk ...
        returns[ticker] = 0.9 * returns[ticker] + rng.gauss(0.0, 0.4)
        # ... except an occasional sector shock that splits KO and PEP
        if tick % 400 == 0:
            returns["KO"] += 5.0
            returns["PEP"] -= 5.0
            print(f"tick {tick}: *** injected KO/PEP divergence ***")
        monitor.append(
            (FUNDAMENTAL[ticker], returns[ticker]), payload=ticker
        )

        if tick % 400 == 0:
            print(f"tick {tick}: top diverging similar pairs "
                  f"(last 240 ticks):")
            for pair in monitor.results(query):
                a, b = pair.objects()
                spread = abs(a.values[1] - b.values[1])
                print(
                    f"  {a.payload:>5} <-> {b.payload:<5} "
                    f"fundamentals {a.values[0]:.2f}/{b.values[0]:.2f}  "
                    f"return spread {spread:5.2f}  score {pair.score:7.3f}"
                )
            print()

    print(f"skyband size: {monitor.skyband_size(scoring)} pairs; "
          f"strategy: TA (global scoring function)")


if __name__ == "__main__":
    main()
