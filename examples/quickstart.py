#!/usr/bin/env python3
"""Quickstart: continuous k-closest-pairs monitoring over a sliding window.

Streams 2-D points through a TopKPairsMonitor and keeps the 3 closest
pairs among the most recent 200 points continuously up to date — the
canonical top-k pairs query of the paper with the Manhattan ``s1``
scoring function.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro import TopKPairsMonitor, k_closest_pairs


def main() -> None:
    window_size = 500          # N: the largest window any query may use
    monitor = TopKPairsMonitor(window_size=window_size, num_attributes=2)

    closest = k_closest_pairs(2)            # s1 over both attributes
    query = monitor.register_query(closest, k=3, n=200, continuous=True)

    rng = random.Random(42)
    print(f"streaming 1000 points through a window of {window_size} ...\n")
    for tick in range(1, 1001):
        point = (rng.uniform(0, 100), rng.uniform(0, 100))
        monitor.append(point, payload=f"point-{tick}")

        if tick % 250 == 0:
            print(f"after {tick} arrivals, top-3 closest pairs "
                  f"(window n=200):")
            for rank, pair in enumerate(monitor.results(query), start=1):
                a, b = pair.objects()
                print(
                    f"  #{rank}: {a.payload} {tuple(round(v, 1) for v in a.values)}"
                    f" <-> {b.payload} {tuple(round(v, 1) for v in b.values)}"
                    f"  distance={pair.score:.3f}"
                    f"  age={pair.age(monitor.manager.now_seq)}"
                )
            print()

    size = monitor.skyband_size(closest)
    print(f"K-skyband size at the end: {size} pairs "
          f"(instead of ~{200 * 199 // 2} candidate pairs)")

    # One-off (snapshot) query with a different k and window, answered
    # from the same skyband:
    top5 = monitor.snapshot_query(closest, k=5, n=100)
    print("\nsnapshot top-5 in the last 100 points:")
    for pair in top5:
        print(f"  {pair.older.payload} <-> {pair.newer.payload} "
              f"distance={pair.score:.3f}")


if __name__ == "__main__":
    main()
