#!/usr/bin/env python3
"""Sensor anomaly hunting — the paper's §VI real-data experiment.

Streams the Intel-lab-like simulated sensor readings and continuously
monitors the paper's scoring function

    |t_x - t_y| / (|temp_x - temp_y| * |hum_x - hum_y|)

which surfaces pairs of readings taken *close in time* that report *very
different* temperature and humidity — i.e. anomalies (a heater blast, an
opened window, a failing mote).  The function is not a global scoring
function, so this example exercises the general SCase maintenance path.

Run:  python examples/sensor_anomaly.py
"""

from __future__ import annotations

from repro import TopKPairsMonitor, sensor_scoring_function
from repro.datasets import SensorStreamSimulator


def main() -> None:
    window = 1_000
    monitor = TopKPairsMonitor(window_size=window, num_attributes=3)
    scoring = sensor_scoring_function()      # attrs: (time, temp, humidity)
    query = monitor.register_query(scoring, k=5, n=window, continuous=True)

    simulator = SensorStreamSimulator(seed=3, anomaly_rate=0.004)
    readings = simulator.readings()

    print(f"streaming simulated Intel-lab readings (window={window}) ...\n")
    for tick in range(1, 4001):
        reading = next(readings)
        monitor.append(
            (reading.time, reading.temperature, reading.humidity),
            payload=f"mote-{reading.sensor_id:02d}",
        )
        if tick % 1000 == 0:
            print(f"after {tick} readings — top anomaly pairs:")
            for rank, pair in enumerate(monitor.results(query), start=1):
                a, b = pair.objects()
                dt = abs(a.values[0] - b.values[0])
                dtemp = abs(a.values[1] - b.values[1])
                dhum = abs(a.values[2] - b.values[2])
                print(
                    f"  #{rank}: {a.payload} vs {b.payload}  "
                    f"dt={dt:6.1f}s  dT={dtemp:5.2f}C  dH={dhum:5.2f}%  "
                    f"score={pair.score:.3e}"
                )
            print()

    print(f"skyband size: {monitor.skyband_size(scoring)} pairs "
          f"(vs {window * (window - 1) // 2} pairs in the window)")


if __name__ == "__main__":
    main()
