#!/usr/bin/env python3
"""Serving-layer round trip: server, live subscription, checkpoint,
warm restart (repro.serve, docs/serving.md).

Boots a loopback server, registers a continuous 3-closest-pairs query,
subscribes to its answer deltas while streaming points in, checkpoints
the session mid-stream, then restores the checkpoint into a second
server and shows both answering identically — the byte-identity
property the test suite pins down.

Run:  PYTHONPATH=src python examples/serve_roundtrip.py
"""

from __future__ import annotations

import json
import os
import random
import tempfile

from repro.serve import (
    BackgroundServer,
    ServeClient,
    ServerMonitor,
    apply_delta,
    restore_server_monitor,
)


def main() -> None:
    session = ServerMonitor(window_size=200, num_attributes=2)
    rng = random.Random(42)

    with BackgroundServer(session) as server:
        with ServeClient(port=server.port) as client:
            print(f"server on 127.0.0.1:{server.port} "
                  f"(protocol v{client.hello['protocol']}, "
                  f"{client.hello['backpressure']} backpressure)\n")

            # warm the window, then watch a continuous query's deltas
            client.ingest(
                [[rng.uniform(0, 100), rng.uniform(0, 100)]
                 for _ in range(150)]
            )
            query = client.register("closest", k=3)
            answer = client.subscribe(query)
            print(f"registered {query}, baseline answer: "
                  f"{len(answer)} pairs")

            delta_events = 0
            for _ in range(100):
                ack = client.ingest(
                    [[rng.uniform(0, 100), rng.uniform(0, 100)]]
                )
                for _ in range(ack["deltas"]):
                    event = client.next_event(timeout=5.0)
                    if event and event.get("event") == "delta":
                        apply_delta(answer, event)
                        delta_events += 1
            print(f"replayed {delta_events} delta events over 100 ticks")

            polled = client.snapshot(query=query)
            assert sorted(answer) == sorted(
                (p["older"], p["newer"]) for p in polled
            ), "delta replay must equal the polled answer"
            print("delta-replayed answer == polled answer\n")

            # checkpoint mid-stream ...
            path = os.path.join(tempfile.mkdtemp(), "roundtrip.ckpt.json")
            meta = client.checkpoint(path)
            print(f"checkpoint: {meta['objects']} objects, "
                  f"{meta['queries']} queries, {meta['bytes']} bytes")
            original = json.dumps(client.snapshot(query=query))

    # ... and warm-restart a brand new server from it
    restored = restore_server_monitor(path)
    with BackgroundServer(restored) as server:
        with ServeClient(port=server.port) as client:
            recovered = json.dumps(client.snapshot(query=query))
            assert recovered == original, "restore must be byte-identical"
            print("restored server answers byte-identically")


if __name__ == "__main__":
    main()
