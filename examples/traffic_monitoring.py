#!/usr/bin/env python3
"""Traffic monitoring (paper §I) with pair filters and change callbacks.

Road-segment sensors report (position_km, speed_kmh) readings.  Two
queries run concurrently on one monitor:

* **shockwave detector** — pairs of *nearby* readings with *very
  different* speeds (free flow meeting a jam: where rear-end collisions
  happen).  Uses a global scoring function, so the TA path applies.
* **same-corridor incidents** — the same query restricted by a *pair
  filter* to readings from the same corridor, with an ``on_change``
  callback printing alerts the moment a pair enters the top-k.

Run:  python examples/traffic_monitoring.py
"""

from __future__ import annotations

import random

from repro import TopKPairsMonitor
from repro.scoring import (
    AbsoluteDifference,
    GlobalScoringFunction,
    NegatedAbsoluteDifference,
    WeightedSumCombiner,
)

CORRIDORS = ("M1-north", "M1-south", "ring-road")


def shockwave_scoring() -> GlobalScoringFunction:
    """Close in space, far apart in speed -> small score."""
    return GlobalScoringFunction(
        [
            (0, AbsoluteDifference()),          # position difference (km)
            (1, NegatedAbsoluteDifference()),   # speed difference (km/h)
        ],
        WeightedSumCombiner([10.0, 1.0]),
        name="shockwave",
    )


def same_corridor(a, b) -> bool:
    return a.payload == b.payload


def main() -> None:
    rng = random.Random(21)
    monitor = TopKPairsMonitor(window_size=800, num_attributes=2)
    scoring = shockwave_scoring()

    def alert(entered, left) -> None:
        for pair in entered:
            a, b = pair.objects()
            print(
                f"  ALERT [{a.payload}] km {a.values[0]:.1f}/{b.values[0]:.1f}"
                f"  speeds {a.values[1]:.0f} vs {b.values[1]:.0f} km/h"
            )

    anywhere = monitor.register_query(scoring, k=3, n=400)
    corridor = monitor.register_query(
        scoring, k=3, n=400, pair_filter=same_corridor, on_change=alert
    )

    jam_position = 12.0
    print("streaming traffic readings; a jam forms around km 12 on "
          "M1-north after tick 800\n")
    for tick in range(1, 1601):
        name = rng.choice(CORRIDORS)
        position = rng.uniform(0.0, 25.0)
        speed = rng.gauss(105.0, 8.0)
        if (
            tick > 800
            and name == "M1-north"
            and abs(position - jam_position) < 1.5
        ):
            speed = rng.gauss(15.0, 5.0)  # stop-and-go inside the jam
        monitor.append((position, max(0.0, speed)), payload=name)

        if tick % 800 == 0:
            print(f"\ntick {tick}: sharpest speed discontinuities "
                  f"(any corridor):")
            for pair in monitor.results(anywhere):
                a, b = pair.objects()
                print(
                    f"  {a.payload:>9}/{b.payload:<9} "
                    f"km {a.values[0]:5.1f}/{b.values[0]:5.1f}  "
                    f"speeds {a.values[1]:5.1f}/{b.values[1]:5.1f}"
                )
            print()

    stats = monitor.stats()
    print("\nmonitor stats:")
    for group in stats["groups"]:
        print(
            f"  {group['scoring_function']}"
            f"{' [filtered]' if group['filtered'] else ''}: "
            f"skyband {group['skyband_size']} pairs, "
            f"strategy {group['strategy']}"
        )
    # The corridor query's answers always satisfy the filter:
    for pair in monitor.results(corridor):
        assert pair.older.payload == pair.newer.payload


if __name__ == "__main__":
    main()
