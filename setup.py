"""Setup shim for environments without the ``wheel`` package, where the
legacy ``setup.py develop`` editable-install path is the only one
available.  All real metadata lives in ``pyproject.toml``."""

from setuptools import setup

setup()
