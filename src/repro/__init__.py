"""repro — Efficiently Monitoring Top-k Pairs over Sliding Windows.

A complete reproduction of Shen, Cheema, Lin, Zhang and Wang (ICDE 2012):
continuous and snapshot top-k *pairs* queries over count- and time-based
sliding windows, answered from a per-scoring-function K-skyband maintained
with the paper's K-staircase (Algorithms 3-4), queried through a priority
search tree (Algorithms 1-2), with the TA optimization for global scoring
functions (Algorithm 5) and the paper's full competitor suite (naive,
supreme, linear, basic).

Quickstart::

    from repro import TopKPairsMonitor, k_closest_pairs

    monitor = TopKPairsMonitor(window_size=1000, num_attributes=2)
    closest = k_closest_pairs(2)
    query = monitor.register_query(closest, k=3, n=500)
    monitor.append((0.1, 0.9))
    monitor.append((0.15, 0.88))
    monitor.append((0.7, 0.2))
    for pair in monitor.results(query):
        print(pair.older.values, pair.newer.values, pair.score)
"""

from repro.analysis import Counters
from repro.obs import (
    MetricsRecorder,
    MetricsRegistry,
    NullRecorder,
    TickEvent,
)
from repro.audit import (
    MonitorAuditor,
    Violation,
    check_monitor,
    check_pst,
    check_skiplist,
    check_skyband,
    check_staircase,
    check_window,
    lint_paths,
)
from repro.core import (
    Pair,
    QueryHandle,
    SCaseMaintainer,
    SkybandDelta,
    TAMaintainer,
    TopKPairsMonitor,
    TopKPairsQuery,
    answer_snapshot,
)
from repro.exceptions import (
    AuditViolationError,
    InvalidParameterError,
    ReproError,
    ScoringFunctionError,
    UnknownQueryError,
    WindowError,
)
from repro.scoring import (
    GlobalScoringFunction,
    LambdaScoringFunction,
    ScoringFunction,
    k_closest_pairs,
    k_furthest_pairs,
    paper_scoring_functions,
    sensor_scoring_function,
    top_k_dissimilar_pairs,
    top_k_similar_pairs,
)
from repro.stream import StreamManager, StreamObject

__version__ = "1.0.0"

__all__ = [
    "AuditViolationError",
    "Counters",
    "GlobalScoringFunction",
    "InvalidParameterError",
    "LambdaScoringFunction",
    "MetricsRecorder",
    "MetricsRegistry",
    "MonitorAuditor",
    "NullRecorder",
    "Pair",
    "QueryHandle",
    "ReproError",
    "SCaseMaintainer",
    "ScoringFunction",
    "ScoringFunctionError",
    "SkybandDelta",
    "StreamManager",
    "StreamObject",
    "TAMaintainer",
    "TickEvent",
    "TopKPairsMonitor",
    "TopKPairsQuery",
    "UnknownQueryError",
    "Violation",
    "WindowError",
    "answer_snapshot",
    "check_monitor",
    "check_pst",
    "check_skiplist",
    "check_skyband",
    "check_staircase",
    "check_window",
    "lint_paths",
    "k_closest_pairs",
    "k_furthest_pairs",
    "paper_scoring_functions",
    "sensor_scoring_function",
    "top_k_dissimilar_pairs",
    "top_k_similar_pairs",
]
