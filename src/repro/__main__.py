"""``python -m repro`` — the CSV monitoring CLI."""

import os
import sys

from repro.cli import main

if __name__ == "__main__":
    try:
        code = main()
        sys.stdout.flush()
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; exit quietly like a
        # well-behaved Unix filter.  Re-point stdout at devnull so the
        # interpreter's shutdown flush does not raise again.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        code = 0
    sys.exit(code)
