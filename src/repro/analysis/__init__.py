"""Analysis utilities: operation counters (cost model) and the paper's
closed-form expectations."""

from repro.analysis.complexity import PowerLawFit, doubling_ratios, fit_power_law
from repro.analysis.cost_model import Counters, CountingScoringFunction
from repro.analysis.trace import TraceRecorder
from repro.analysis.theory import (
    expected_new_skyband_pairs,
    expected_skyband_size,
    harmonic,
    skyband_membership_probability,
    ta_access_bound,
)

__all__ = [
    "Counters",
    "CountingScoringFunction",
    "PowerLawFit",
    "TraceRecorder",
    "doubling_ratios",
    "fit_power_law",
    "expected_new_skyband_pairs",
    "expected_skyband_size",
    "harmonic",
    "skyband_membership_probability",
    "ta_access_bound",
]
