"""Empirical complexity-trend estimation.

The paper's claims are asymptotic: maintenance is ``O(N (log log N +
log K))``, the skyband is ``O(K log(N/K))``, TA touches
``O(N^{d/(d+1)})`` pairs.  To check such claims against measurements, the
tests and benchmarks fit a power law ``y = c * x^alpha`` to (x, y) series
by ordinary least squares in log-log space and inspect the exponent:
``alpha ~ 1`` means linear growth, ``alpha ~ 0`` flat / logarithmic,
``alpha < 1`` sublinear, etc.

Pure-Python, no numpy required (numpy is available in this environment,
but the library keeps its zero-dependency promise).
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = ["PowerLawFit", "fit_power_law", "doubling_ratios"]


class PowerLawFit:
    """Result of a log-log least-squares fit ``y ~ c * x^alpha``."""

    __slots__ = ("exponent", "coefficient", "r_squared")

    def __init__(self, exponent: float, coefficient: float,
                 r_squared: float) -> None:
        self.exponent = exponent
        self.coefficient = coefficient
        self.r_squared = r_squared

    def predict(self, x: float) -> float:
        return self.coefficient * x ** self.exponent

    def __repr__(self) -> str:
        return (
            f"PowerLawFit(y ~ {self.coefficient:.4g} * x^"
            f"{self.exponent:.3f}, R2={self.r_squared:.3f})"
        )


def fit_power_law(
    xs: Sequence[float], ys: Sequence[float]
) -> PowerLawFit:
    """Fit ``y = c * x^alpha`` by least squares on ``(ln x, ln y)``.

    Requires at least two points with strictly positive coordinates.
    """
    if len(xs) != len(ys):
        raise ValueError(f"length mismatch: {len(xs)} vs {len(ys)}")
    if len(xs) < 2:
        raise ValueError("need at least two points to fit a trend")
    if any(x <= 0 for x in xs) or any(y <= 0 for y in ys):
        raise ValueError("power-law fits need positive coordinates")
    log_x = [math.log(x) for x in xs]
    log_y = [math.log(y) for y in ys]
    n = len(xs)
    mean_x = sum(log_x) / n
    mean_y = sum(log_y) / n
    ss_xx = sum((lx - mean_x) ** 2 for lx in log_x)
    if ss_xx == 0:
        raise ValueError("all x values are equal; exponent is undefined")
    ss_xy = sum(
        (lx - mean_x) * (ly - mean_y) for lx, ly in zip(log_x, log_y)
    )
    exponent = ss_xy / ss_xx
    intercept = mean_y - exponent * mean_x
    ss_res = sum(
        (ly - (intercept + exponent * lx)) ** 2
        for lx, ly in zip(log_x, log_y)
    )
    ss_tot = sum((ly - mean_y) ** 2 for ly in log_y)
    r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return PowerLawFit(exponent, math.exp(intercept), r_squared)


def doubling_ratios(ys: Sequence[float]) -> list[float]:
    """``y[i+1] / y[i]`` for a series measured at doubling x values.

    Handy for eyeballing growth: ~2 per step means linear, ~1 means flat
    or logarithmic, ~4 quadratic.
    """
    if any(y <= 0 for y in ys):
        raise ValueError("ratios need positive values")
    return [b / a for a, b in zip(ys, ys[1:])]
