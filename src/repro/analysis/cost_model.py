"""Compatibility shim — the cost model lives in :mod:`repro.obs.cost_model`.

The machine-independent operation counters were folded into the
:mod:`repro.obs` observability layer; this module keeps the historical
import path (``from repro.analysis.cost_model import Counters``) working
unchanged.  New code should import from :mod:`repro.obs` directly.
"""

from __future__ import annotations

from repro.obs.cost_model import Counters, CountingScoringFunction

__all__ = ["Counters", "CountingScoringFunction"]
