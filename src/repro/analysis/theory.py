"""Closed-form expectations from the paper's analysis.

* Lemma 1 — a pair of age ``x`` is in the K-skyband with probability
  ``min(K / x^2, 1)`` (scores independent of ages);
* Theorem 3 — the expected K-skyband size is ``O(K log(N/K))``, derived
  via ``K + K (H_N - H_sqrt(K))``;
* Lemma 2 — the expected number of new pairs per arrival not dominated by
  the skyband is ``O(K)`` (``~ sqrt(K) + K * pi^2/6`` before truncation);
* §V-B.2 — the TA maintenance examines
  ``M = (d+1) N^{d/(d+1)} K^{1/(d+1)}`` pairs in expectation (Fagin).

The theory-validation benchmark compares these against measurements.
"""

from __future__ import annotations

import math

__all__ = [
    "harmonic",
    "skyband_membership_probability",
    "expected_skyband_size",
    "expected_new_skyband_pairs",
    "ta_access_bound",
]

_EULER_GAMMA = 0.57721566490153286


def harmonic(n: int) -> float:
    """The n-th harmonic number ``H_n`` (exact below 10^6, asymptotic
    ``ln n + gamma + 1/2n`` above)."""
    if n < 0:
        raise ValueError(f"harmonic number needs n >= 0, got {n}")
    if n < 1_000_000:
        return math.fsum(1.0 / x for x in range(1, n + 1))
    return math.log(n) + _EULER_GAMMA + 1.0 / (2 * n)


def skyband_membership_probability(K: int, age: int) -> float:
    """Lemma 1: P[a pair of this age is in the K-skyband]."""
    if age < 2:
        return 1.0
    return min(K / float(age * age), 1.0)


def expected_skyband_size(K: int, N: int) -> float:
    """Theorem 3's estimate ``sum_{x=2}^{N} x * min(K/x^2, 1)``, in its
    closed ``K + K (H_N - H_y)`` form with ``y = floor(sqrt(K))``."""
    if K < 1 or N < 2:
        raise ValueError(f"need K >= 1 and N >= 2, got K={K}, N={N}")
    y = max(1, int(math.isqrt(K)))
    return K + K * (harmonic(N) - harmonic(y))


def expected_new_skyband_pairs(K: int, N: int | None = None) -> float:
    """Lemma 2: expected new non-dominated pairs per arrival.

    ``sum_{x=2}^{N} min(K/x^2, 1) ~ sqrt(K) + K * (pi^2/6 truncated)``;
    with ``N`` given the tail is truncated exactly.
    """
    if K < 1:
        raise ValueError(f"need K >= 1, got {K}")
    y = max(1, int(math.isqrt(K)))
    basel = math.pi * math.pi / 6.0
    head = sum(1.0 / (x * x) for x in range(1, y + 1))
    tail = basel - head
    if N is not None:
        tail -= max(0.0, 1.0 / N)  # crude truncation of the far tail
    return y + K * max(0.0, tail)


def ta_access_bound(d: int, N: int, K: int) -> float:
    """Fagin's bound on the pairs Algorithm 5 examines:
    ``(d+1) * N^(d/(d+1)) * K^(1/(d+1))``."""
    if d < 1 or N < 1 or K < 1:
        raise ValueError(f"need d, N, K >= 1, got d={d}, N={N}, K={K}")
    return (d + 1) * N ** (d / (d + 1)) * K ** (1 / (d + 1))
