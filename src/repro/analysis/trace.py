"""Per-tick trace recording.

A :class:`TraceRecorder` subscribes to a maintainer (or is fed deltas
manually) and records one row per stream tick: skyband size, staircase
size, pairs added / removed / expired, and optionally the counter deltas.
Useful for

* plotting skyband dynamics against the Theorem 3 expectation,
* regression-testing steady-state behaviour (the suite asserts e.g. that
  adds and departures balance at steady state),
* debugging a live monitor (attach, run, dump).

Rows are plain dicts; :meth:`TraceRecorder.to_csv` writes them out for
external tooling.
"""

from __future__ import annotations

import csv
from typing import IO, Optional

from repro.analysis.cost_model import Counters
from repro.core.maintenance import SkybandDelta, SkybandMaintainer

__all__ = ["TraceRecorder"]

_FIELDS = (
    "tick",
    "skyband_size",
    "staircase_size",
    "added",
    "removed",
    "expired",
    "score_evaluations",
    "pairs_considered",
    "candidate_pairs",
)


class TraceRecorder:
    """Records one row of skyband dynamics per observed tick."""

    def __init__(self, counters: Optional[Counters] = None) -> None:
        self.counters = counters
        self.rows: list[dict[str, int]] = []
        self._tick = 0
        self._last_counter_snapshot = (
            counters.snapshot() if counters is not None else None
        )

    def __len__(self) -> int:
        return len(self.rows)

    def observe(
        self, maintainer: SkybandMaintainer, delta: SkybandDelta
    ) -> dict[str, int]:
        """Record the outcome of one tick; returns the recorded row."""
        self._tick += 1
        row = {
            "tick": self._tick,
            "skyband_size": len(maintainer),
            "staircase_size": len(maintainer.staircase),
            "added": len(delta.added),
            "removed": len(delta.removed),
            "expired": len(delta.expired),
            "score_evaluations": 0,
            "pairs_considered": 0,
            "candidate_pairs": 0,
        }
        if self.counters is not None:
            snapshot = self.counters.snapshot()
            previous = self._last_counter_snapshot
            for field in ("score_evaluations", "pairs_considered",
                          "candidate_pairs"):
                row[field] = snapshot[field] - previous[field]
            self._last_counter_snapshot = snapshot
        self.rows.append(row)
        return row

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------
    def mean(self, field: str) -> float:
        """Average of one recorded field across all ticks."""
        if not self.rows:
            raise ValueError("no rows recorded")
        return sum(row[field] for row in self.rows) / len(self.rows)

    def series(self, field: str) -> list[int]:
        return [row[field] for row in self.rows]

    def steady_state(self, skip_fraction: float = 0.5) -> "TraceRecorder":
        """A view over the later rows only (warm-up discarded)."""
        view = TraceRecorder()
        view.rows = self.rows[int(len(self.rows) * skip_fraction):]
        view._tick = self._tick
        return view

    def to_csv(self, handle: IO[str]) -> None:
        """Write all rows as CSV (header included)."""
        writer = csv.DictWriter(handle, fieldnames=_FIELDS)
        writer.writeheader()
        writer.writerows(self.rows)
