"""Compatibility shim — per-tick tracing lives in :mod:`repro.obs.trace`.

:class:`TraceRecorder` (one skyband-dynamics row per observed tick, CSV
dump) was folded into the :mod:`repro.obs` observability layer alongside
the richer :class:`~repro.obs.trace.TickEvent` stream; this module keeps
the historical import path (``from repro.analysis.trace import
TraceRecorder``) working unchanged.  New code should import from
:mod:`repro.obs` directly.
"""

from __future__ import annotations

from repro.obs.trace import TraceRecorder

__all__ = ["TraceRecorder"]
