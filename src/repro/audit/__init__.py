"""Correctness net for the skyband pipeline: runtime invariant
verification plus a project-specific static lint pass.

* :mod:`repro.audit.invariants` — pure ``check_*`` functions that walk
  the PST, skip lists, K-skyband, K-staircase and stream window and
  return structured :class:`~repro.audit.report.Violation` records, and
  the :class:`MonitorAuditor` that runs them (plus a sampled brute-force
  K-skyband cross-check) on live :class:`~repro.TopKPairsMonitor` ticks.
* :mod:`repro.audit.lint` — an AST-based lint pass over the source tree
  with the per-file rules RA100-RA108 (float-score equality, mutable
  defaults, ``__all__`` hygiene, hot-path anti-patterns, bare
  ``except``) plus the :func:`~repro.audit.lint.analyze_paths` driver
  that runs the cross-module passes as well.
* :mod:`repro.audit.callgraph` — the project-wide call graph with
  transitive hot-path propagation (RA105/106/108 fire in any function
  *reachable* from hot-path code, not just in hot-path files).
* :mod:`repro.audit.asynccheck` — the async-safety family RA201-RA205
  (blocking calls on the event loop, shared-state mutation across
  awaits, fire-and-forget tasks, locks held across unbounded awaits,
  unawaited coroutines).
* :mod:`repro.audit.conformance` — RA301 wire-protocol conformance
  between ``serve/protocol.py``, the server handlers and the client.
* :mod:`repro.audit.rules` — the single-source-of-truth rule catalogue
  (``--explain``, ``docs/audit.md`` and SARIF metadata all render it).
* :mod:`repro.audit.baseline` / :mod:`repro.audit.emit` — the
  grandfathered-findings baseline for ``repro lint --strict`` and the
  JSON/SARIF emitters.

Surface through the CLI: ``python -m repro lint [paths]`` (with
``--strict``, ``--format``, ``--explain``) and ``python -m repro audit
--dataset synthetic --steps N``.  See ``docs/audit.md`` for the
invariant and rule catalogues.
"""

from repro.audit.baseline import (
    baseline_key,
    load_baseline,
    partition_violations,
    render_baseline,
)
from repro.audit.callgraph import (
    build_project,
    hot_functions,
    hot_path_violations,
)
from repro.audit.emit import to_json, to_sarif
from repro.audit.invariants import (
    MonitorAuditor,
    brute_force_skyband,
    check_maintainer,
    check_monitor,
    check_pst,
    check_skiplist,
    check_skyband,
    check_staircase,
    check_window,
    cross_check_monitor,
)
from repro.audit.lint import (
    RULES,
    AnalysisResult,
    analyze_paths,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.audit.report import Violation, format_violations, summarize
from repro.audit.rules import CATALOG, RuleInfo, explain_rule, rule_info

__all__ = [
    "AnalysisResult",
    "CATALOG",
    "MonitorAuditor",
    "RULES",
    "RuleInfo",
    "Violation",
    "analyze_paths",
    "baseline_key",
    "brute_force_skyband",
    "build_project",
    "check_maintainer",
    "check_monitor",
    "check_pst",
    "check_skiplist",
    "check_skyband",
    "check_staircase",
    "check_window",
    "cross_check_monitor",
    "explain_rule",
    "format_violations",
    "hot_functions",
    "hot_path_violations",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "partition_violations",
    "render_baseline",
    "rule_info",
    "summarize",
    "to_json",
    "to_sarif",
]
