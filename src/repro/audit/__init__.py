"""Correctness net for the skyband pipeline: runtime invariant
verification plus a project-specific static lint pass.

* :mod:`repro.audit.invariants` — pure ``check_*`` functions that walk
  the PST, skip lists, K-skyband, K-staircase and stream window and
  return structured :class:`~repro.audit.report.Violation` records, and
  the :class:`MonitorAuditor` that runs them (plus a sampled brute-force
  K-skyband cross-check) on live :class:`~repro.TopKPairsMonitor` ticks.
* :mod:`repro.audit.lint` — an AST-based lint pass over the source tree
  with rules RA101-RA108 (float-score equality, mutable defaults,
  ``__all__`` hygiene, hot-path anti-patterns, bare ``except``).

Surface through the CLI: ``python -m repro lint [paths]`` and
``python -m repro audit --dataset synthetic --steps N``.  See
``docs/audit.md`` for the invariant and rule catalogues.
"""

from repro.audit.invariants import (
    MonitorAuditor,
    brute_force_skyband,
    check_maintainer,
    check_monitor,
    check_pst,
    check_skiplist,
    check_skyband,
    check_staircase,
    check_window,
    cross_check_monitor,
)
from repro.audit.lint import RULES, lint_file, lint_paths, lint_source
from repro.audit.report import Violation, format_violations, summarize

__all__ = [
    "MonitorAuditor",
    "RULES",
    "Violation",
    "brute_force_skyband",
    "check_maintainer",
    "check_monitor",
    "check_pst",
    "check_skiplist",
    "check_skyband",
    "check_staircase",
    "check_window",
    "cross_check_monitor",
    "format_violations",
    "lint_file",
    "lint_paths",
    "lint_source",
    "summarize",
]
