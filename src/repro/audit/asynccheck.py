"""Async-safety rules (RA201–RA205) over await-segmented function CFGs.

The serve layer runs many handlers on one event loop; the paper's
structures underneath (skyband, staircase, PST) assume a single writer
per tick.  These rules flag the ways asyncio code breaks that bargain:

RA201
    A blocking call (``time.sleep``, sync file/socket I/O,
    ``subprocess``) inside ``async def`` — directly, or buried in a
    sync helper the async frame reaches through the call graph
    (:mod:`repro.audit.callgraph`).  Propagation follows invocation
    edges only (``direct``/``method``/``ctor``); a function passed *as
    a value* — ``loop.run_in_executor(None, write, ...)`` or a
    ``functools.partial`` — is the sanctioned escape hatch and does
    not taint its wrapper.
RA202
    ``self.``/module-level shared state mutated on both sides of an
    ``await`` without a lock held.  Every ``await`` is a scheduling
    point: another handler can observe (or race) the half-updated
    state.  The check segments each async function at its await
    points; a target written in two different segments fires.  A loop
    whose body contains both a write and an await counts as writing on
    both sides (iteration two races iteration one).  Writes inside an
    ``async with <lock>`` block are exempt.
RA203
    ``create_task``/``ensure_future`` whose result is discarded — the
    task can be garbage-collected mid-flight and its exception is
    never retrieved.
RA204
    A lock held across ``await`` of an unbounded operation (queue
    get/put, socket read/drain, bare wait): one slow peer deadlocks
    every handler queued on the lock.  (``wait_for`` is bounded and
    exempt.)
RA205
    A bare-statement call to a project ``async def`` without ``await``
    — the coroutine is built and thrown away; the body never runs.

Everything reports through :class:`repro.audit.report.Violation` with
real ``path:line:col`` locations, so line suppressions
(``# audit: allow[RA202] reason``) work exactly as for the per-file
rules.
"""

from __future__ import annotations

import ast
import re
from collections import deque
from typing import Optional

from repro.audit.callgraph import CALL_KINDS, Project
from repro.audit.report import Violation

__all__ = [
    "MUTATOR_METHODS",
    "UNBOUNDED_AWAIT_ATTRS",
    "async_violations",
]

_PAPER_REF = "docs/audit.md rule catalogue"

#: container-mutation method names that count as writes for RA202.
#: Deliberately excludes metric-style verbs (``inc``/``dec``/``set``/
#: ``observe``) so instrumentation calls never read as state races.
MUTATOR_METHODS = frozenset({
    "append", "appendleft", "add", "discard", "remove", "pop",
    "popitem", "popleft", "clear", "extend", "extendleft", "insert",
    "update", "setdefault", "sort", "reverse",
})

#: awaited attribute names that are unbounded while a lock is held
#: (RA204); ``wait_for`` carries a timeout and is exempt.
UNBOUNDED_AWAIT_ATTRS = frozenset({
    "get", "put", "join", "wait", "acquire", "drain", "read",
    "readline", "readexactly", "readuntil", "recv", "accept",
    "connect", "gather", "sleep", "wait_closed", "serve_forever",
})

_TASK_SPAWNERS = frozenset({"create_task", "ensure_future"})

_LOCK_NAME_RE = re.compile(r"lock|semaphore|condition|mutex", re.I)


def _dotted_text(node: ast.expr) -> Optional[str]:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_lock_expr(node: ast.expr) -> bool:
    """Heuristic: the async-with context manager is a lock if its
    dotted text (or the called factory's) names one."""
    if isinstance(node, ast.Call):
        node = node.func
    dotted = _dotted_text(node)
    return dotted is not None and bool(_LOCK_NAME_RE.search(dotted))


def _contains_await(node: ast.AST) -> bool:
    for child in ast.walk(node):
        if isinstance(child, (ast.Await, ast.AsyncFor, ast.AsyncWith)):
            return True
    return False


def _local_names(node: ast.AST) -> set[str]:
    """Names bound locally in a function (params + assignments), used
    to tell module-level state from shadowing locals."""
    names: set[str] = set()
    args = node.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        names.add(arg.arg)
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and isinstance(child.ctx, ast.Store):
            names.add(child.id)
        elif isinstance(child, (ast.For, ast.AsyncFor)):
            for sub in ast.walk(child.target):
                if isinstance(sub, ast.Name):
                    names.add(sub.id)
        elif isinstance(child, ast.Global):
            names.difference_update(child.names)
    return names


class _AsyncFunctionChecker:
    """One async function: segment at awaits, record shared writes."""

    def __init__(self, fn, module_globals: set[str]) -> None:
        self.fn = fn
        self.path = fn.path
        self.segment = 0
        self.lock_depth = 0
        #: target -> list[(segment, lineno, col)]
        self.writes: dict[str, list[tuple[int, int, int]]] = {}
        self.findings: list[Violation] = []
        node = fn.node
        self.globals_declared: set[str] = set()
        for child in ast.walk(node):
            if isinstance(child, ast.Global):
                self.globals_declared.update(child.names)
        self.locals = _local_names(node)
        # module-level bindings visible (and not shadowed) here
        self.module_state = (
            (module_globals - self.locals) | self.globals_declared
        )

    # -- entry ----------------------------------------------------------
    def run(self) -> list[Violation]:
        for stmt in self.fn.node.body:
            self._visit_stmt(stmt)
        self._report_races()
        return self.findings

    def _report(self, rule: str, node: ast.AST, message: str) -> None:
        lineno = getattr(node, "lineno", self.fn.lineno)
        col = getattr(node, "col_offset", 0)
        self.findings.append(Violation(
            rule, message, paper_ref=_PAPER_REF,
            subject=self.fn.qualname,
            location=f"{self.path}:{lineno}:{col}",
        ))

    # -- statements -----------------------------------------------------
    def _visit_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # nested scopes are checked as their own functions
        if isinstance(stmt, ast.Assign):
            self._visit_expr(stmt.value)
            for target in stmt.targets:
                self._record_target(target)
            return
        if isinstance(stmt, ast.AugAssign):
            self._visit_expr(stmt.value)
            self._record_target(stmt.target)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._visit_expr(stmt.value)
            self._record_target(stmt.target)
            return
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._record_target(target)
            return
        if isinstance(stmt, ast.Expr):
            self._visit_bare_expr(stmt.value)
            return
        if isinstance(stmt, (ast.For, ast.While)):
            self._visit_loop(stmt)
            return
        if isinstance(stmt, ast.AsyncFor):
            # each iteration awaits the async iterator
            self._bump_segment()
            self._visit_loop(stmt)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._visit_with(stmt)
            return
        if isinstance(stmt, ast.If):
            self._visit_expr(stmt.test)
            for child in [*stmt.body, *stmt.orelse]:
                self._visit_stmt(child)
            return
        if isinstance(stmt, ast.Try):
            blocks = [*stmt.body, *stmt.orelse, *stmt.finalbody]
            for handler in stmt.handlers:
                blocks.extend(handler.body)
            for child in blocks:
                self._visit_stmt(child)
            return
        if isinstance(stmt, (ast.Return, ast.Raise)):
            value = stmt.value if isinstance(stmt, ast.Return) else stmt.exc
            if value is not None:
                self._visit_expr(value)
            return
        if isinstance(stmt, ast.Assert):
            self._visit_expr(stmt.test)
            return
        # Pass/Break/Continue/Import/Global/Nonlocal: nothing to do
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._visit_expr(child)

    def _visit_loop(self, stmt) -> None:
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._visit_expr(stmt.iter)
        else:
            self._visit_expr(stmt.test)
        # A loop whose body awaits runs write→await→write across
        # iterations: walking the body twice lands pre-await writes in
        # the post-await segment too, so they read as "both sides".
        sweeps = 2 if any(_contains_await(s) for s in stmt.body) else 1
        for sweep in range(sweeps):
            for child in stmt.body:
                self._visit_stmt(child)
        for child in stmt.orelse:
            self._visit_stmt(child)

    def _visit_with(self, stmt) -> None:
        is_async = isinstance(stmt, ast.AsyncWith)
        locked = is_async and any(
            _is_lock_expr(item.context_expr) for item in stmt.items
        )
        for item in stmt.items:
            self._visit_expr(item.context_expr)
        if is_async:
            self._bump_segment()  # __aenter__ awaits
        if locked:
            self.lock_depth += 1
        for child in stmt.body:
            self._visit_stmt(child)
        if locked:
            self.lock_depth -= 1
        if is_async:
            self._bump_segment()  # __aexit__ awaits

    # -- expressions ----------------------------------------------------
    def _visit_bare_expr(self, value: ast.expr) -> None:
        """An expression statement: where RA203 fires (spawner result
        discarded)."""
        if isinstance(value, ast.Call):
            name = None
            if isinstance(value.func, ast.Attribute):
                name = value.func.attr
            elif isinstance(value.func, ast.Name):
                name = value.func.id
            if name in _TASK_SPAWNERS:
                self._report(
                    "RA203", value,
                    f"{name}(...) result is discarded — the task can be "
                    "garbage-collected mid-flight and its exception is "
                    "never retrieved; keep a reference (task set with a "
                    "done-callback) or await it",
                )
        self._visit_expr(value)

    def _visit_expr(self, node: ast.expr) -> None:
        if isinstance(node, ast.Await):
            self._check_locked_await(node)
            self._visit_expr(node.value)
            self._bump_segment()
            return
        if isinstance(node, ast.Call):
            self._check_mutator_call(node)
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._visit_expr(child)
            return
        if isinstance(node, (ast.Lambda, ast.ListComp, ast.SetComp,
                             ast.DictComp, ast.GeneratorExp)):
            return  # separate scopes; comprehension awaits are rare
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._visit_expr(child)

    def _bump_segment(self) -> None:
        self.segment += 1

    # -- RA202 bookkeeping ----------------------------------------------
    def _shared_target(self, node: ast.expr) -> Optional[tuple[str, ast.AST]]:
        """``(key, anchor-node)`` when the expression names shared
        state: ``self.attr`` (any depth of trailing subscripts) or a
        module-level binding."""
        while isinstance(node, ast.Subscript):
            node = node.value
        if isinstance(node, ast.Attribute) \
                and isinstance(node.value, ast.Name) \
                and node.value.id == "self":
            return f"self.{node.attr}", node
        if isinstance(node, ast.Name) and node.id in self.module_state:
            return node.id, node
        return None

    def _record_target(self, target: ast.expr) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._record_target(element)
            return
        if isinstance(target, ast.Starred):
            self._record_target(target.value)
            return
        shared = self._shared_target(target)
        if shared is not None:
            self._record_write(*shared)
        # subscript *reads* inside the target expression still count as
        # expression traffic for segmentation (awaits inside indices)
        if isinstance(target, ast.Subscript):
            self._visit_expr(target.slice)

    def _check_mutator_call(self, node: ast.Call) -> None:
        """``self.pending.append(x)`` — and through a chained call,
        ``self._subs.setdefault(k, set()).add(conn)`` — are writes to
        the receiver."""
        func = node.func
        if not isinstance(func, ast.Attribute) \
                or func.attr not in MUTATOR_METHODS:
            return
        receiver = func.value
        # unwrap chained mutator calls back to the base receiver
        while isinstance(receiver, ast.Call) \
                and isinstance(receiver.func, ast.Attribute):
            receiver = receiver.func.value
        shared = self._shared_target(receiver)
        if shared is not None:
            key, _anchor = shared
            self._record_write(key, node)

    def _record_write(self, key: str, node: ast.AST) -> None:
        if self.lock_depth > 0:
            return  # mutations under a held lock are safe
        self.writes.setdefault(key, []).append((
            self.segment,
            getattr(node, "lineno", self.fn.lineno),
            getattr(node, "col_offset", 0),
        ))

    def _report_races(self) -> None:
        for key, entries in sorted(self.writes.items()):
            segments = {segment for segment, _l, _c in entries}
            if len(segments) < 2:
                continue
            last_segment = max(segments)
            _seg, lineno, col = next(
                entry for entry in entries if entry[0] == last_segment
            )
            anchor = ast.Module(body=[], type_ignores=[])
            anchor.lineno = lineno  # type: ignore[attr-defined]
            anchor.col_offset = col  # type: ignore[attr-defined]
            self._report(
                "RA202", anchor,
                f"{key!r} is mutated on both sides of an await without "
                "a lock — another handler can run at the await and "
                "observe (or race) the half-updated state; finish the "
                "mutation before awaiting or hold an asyncio.Lock",
            )

    # -- RA204 ----------------------------------------------------------
    def _check_locked_await(self, node: ast.Await) -> None:
        if self.lock_depth == 0:
            return
        value = node.value
        if not isinstance(value, ast.Call):
            return
        func = value.func
        attr = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        if attr in UNBOUNDED_AWAIT_ATTRS:
            self._report(
                "RA204", node,
                f"await of unbounded {attr}(...) while holding a lock — "
                "one slow peer stalls every handler queued on the lock; "
                "copy state under the lock, release, then await",
            )


# ----------------------------------------------------------------------
# RA201: blocking calls reachable from async frames
# ----------------------------------------------------------------------
def _blocking_reach(
    project: Project,
    start: str,
) -> Optional[tuple[list[str], str, int]]:
    """From async function ``start``, the first sync-helper chain that
    reaches a blocking call: ``(chain-of-qualnames, blocking-name,
    lineno-of-first-hop-call)``.  Propagation crosses *sync* project
    functions only — an async callee is its own analysis root — and
    only invocation edges (a ``partial`` reference is not a call)."""
    parents: dict[str, tuple[Optional[str], int]] = {start: (None, 0)}
    queue = deque([start])
    while queue:
        current = queue.popleft()
        for edge in project.callees(current, CALL_KINDS):
            callee = project.functions.get(edge.callee)
            if callee is None or edge.callee in parents:
                continue
            if current != start and project.functions[current].is_async:
                continue
            if callee.is_async:
                continue  # analyzed from its own async roots
            parents[edge.callee] = (current, edge.lineno)
            blocked = project.blocking_calls.get(edge.callee)
            if blocked:
                chain = [edge.callee]
                node: Optional[str] = current
                while node is not None:
                    chain.append(node)
                    node = parents[node][0]
                chain.reverse()
                first_hop_line = parents[chain[1]][1]
                return chain, blocked[0][0], first_hop_line
            queue.append(edge.callee)
    return None


def _short_names(project: Project, chain: list[str]) -> str:
    out = []
    for qualname in chain:
        fn = project.functions.get(qualname)
        out.append(fn.name if fn is not None else qualname)
    return " -> ".join(out)


def async_violations(project: Project) -> list[Violation]:
    """All RA2xx findings for a resolved project."""
    violations: list[Violation] = []

    # cache module-level bindings per module (for RA202 global state)
    module_globals: dict[str, set[str]] = {}

    def globals_of(module_name: str) -> set[str]:
        cached = module_globals.get(module_name)
        if cached is not None:
            return cached
        from repro.audit.lint import _module_bindings

        info = project.modules.get(module_name)
        names = _module_bindings(info.tree.body) if info else set()
        # import bindings are rebindable but not the shared *state*
        # RA202 cares about; keep only mutated-in-place candidates
        module_globals[module_name] = names
        return names

    for qualname in sorted(project.functions):
        fn = project.functions[qualname]
        if fn.is_async:
            # RA201: direct blocking calls
            for dotted, lineno in project.blocking_calls.get(qualname, ()):
                violations.append(Violation(
                    "RA201",
                    f"blocking {dotted}(...) inside async def {fn.name} "
                    "stalls the event loop for every connection; use the "
                    "async equivalent or loop.run_in_executor",
                    paper_ref=_PAPER_REF,
                    subject=qualname,
                    location=f"{fn.path}:{lineno}:0",
                ))
            # RA201: blocking calls buried in reachable sync helpers
            reach = _blocking_reach(project, qualname)
            if reach is not None:
                chain, blocking, lineno = reach
                violations.append(Violation(
                    "RA201",
                    f"async def {fn.name} reaches blocking {blocking}"
                    f"(...) via {_short_names(project, chain)} — the "
                    "event loop stalls for the whole sync chain; push "
                    "it through loop.run_in_executor",
                    paper_ref=_PAPER_REF,
                    subject=qualname,
                    location=f"{fn.path}:{lineno}:0",
                ))
            # RA202/RA203/RA204: per-function CFG
            checker = _AsyncFunctionChecker(fn, globals_of(fn.module))
            violations.extend(checker.run())

        # RA205: bare-statement call to an async def (any caller kind)
        violations.extend(_unawaited_calls(project, fn))

    return violations


def _unawaited_calls(project: Project, fn) -> list[Violation]:
    """Bare ``Expr``-statement calls resolving to project coroutines."""
    async_edges = {
        (edge.lineno, edge.col): edge
        for edge in project.callees(fn.qualname, CALL_KINDS)
        if (target := project.functions.get(edge.callee)) is not None
        and target.is_async
    }
    if not async_edges:
        return []
    violations: list[Violation] = []
    for stmt in ast.walk(fn.node):
        if not isinstance(stmt, ast.Expr) \
                or not isinstance(stmt.value, ast.Call):
            continue
        call = stmt.value
        edge = async_edges.get((call.lineno, call.col_offset))
        if edge is None:
            continue
        callee = project.functions[edge.callee]
        violations.append(Violation(
            "RA205",
            f"coroutine {callee.name}(...) is called but never awaited "
            "— the body never runs; add await or wrap in "
            "asyncio.create_task and keep the reference",
            paper_ref=_PAPER_REF,
            subject=fn.qualname,
            location=f"{fn.path}:{call.lineno}:{call.col_offset}",
        ))
    return violations
