"""Grandfathered-findings baseline for ``repro lint --strict``.

The baseline is a checked-in JSON file listing findings that existed
before strict mode was adopted.  Strict mode fails only on findings
*not* in the baseline, so the count can only ratchet down.  Entries
match on ``(rule, path, message)`` — deliberately line-insensitive, so
unrelated edits that shift a grandfathered finding by a few lines do
not break CI.

Format::

    {
      "format": "repro-lint-baseline",
      "version": 1,
      "entries": [
        {"rule": "RA202", "path": "src/repro/serve/server.py",
         "message": "..."},
        ...
      ]
    }

This repo ships an **empty** baseline (``.audit-baseline.json``):
every finding the analyzer surfaced was fixed or suppressed in place
with a reason.  The mechanism exists so future rule additions can land
without blocking on a same-day cleanup of every hit.
"""

from __future__ import annotations

import json
import os
from typing import Iterable, Sequence

from repro.audit.report import Violation
from repro.exceptions import ReproError

__all__ = [
    "BASELINE_NAME",
    "baseline_key",
    "load_baseline",
    "partition_violations",
    "render_baseline",
]

BASELINE_NAME = ".audit-baseline.json"

_FORMAT = "repro-lint-baseline"
_VERSION = 1


def _norm_path(path: str) -> str:
    return os.path.normpath(path).replace(os.sep, "/")


def baseline_key(violation: Violation) -> tuple[str, str, str]:
    """The line-insensitive identity of a finding."""
    path = violation.location.rsplit(":", 2)[0]
    return (violation.rule, _norm_path(path), violation.message)


def load_baseline(path: str) -> set[tuple[str, str, str]]:
    """The baseline file's entry keys; empty set for a missing file.

    Raises :class:`~repro.exceptions.ReproError` on a malformed file —
    a baseline CI silently ignores is worse than none.
    """
    if not os.path.exists(path):
        return set()
    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except ValueError as exc:
        raise ReproError(
            f"baseline {path!r} is not valid JSON: {exc}"
        ) from exc
    if not isinstance(data, dict) or data.get("format") != _FORMAT:
        raise ReproError(f"{path!r} is not a {_FORMAT} file")
    if data.get("version") != _VERSION:
        raise ReproError(
            f"baseline {path!r} has version {data.get('version')!r}; "
            f"this reader supports version {_VERSION} only"
        )
    entries = data.get("entries", [])
    keys: set[tuple[str, str, str]] = set()
    for entry in entries:
        try:
            keys.add((
                entry["rule"], _norm_path(entry["path"]), entry["message"],
            ))
        except (TypeError, KeyError) as exc:
            raise ReproError(
                f"baseline {path!r} has a malformed entry: {entry!r}"
            ) from exc
    return keys


def partition_violations(
    violations: Sequence[Violation],
    baseline: Iterable[tuple[str, str, str]],
) -> tuple[list[Violation], list[Violation], list[tuple[str, str, str]]]:
    """``(new, grandfathered, unused-baseline-keys)``.

    ``new`` fails strict mode; ``grandfathered`` matched the baseline;
    unused keys are reported as warnings so stale entries get pruned.
    """
    baseline_set = set(baseline)
    used: set[tuple[str, str, str]] = set()
    new: list[Violation] = []
    grandfathered: list[Violation] = []
    for violation in violations:
        key = baseline_key(violation)
        if key in baseline_set:
            used.add(key)
            grandfathered.append(violation)
        else:
            new.append(violation)
    unused = sorted(baseline_set - used)
    return new, grandfathered, unused


def render_baseline(violations: Sequence[Violation]) -> str:
    """The baseline document covering ``violations`` (deduplicated,
    sorted, trailing newline — byte-stable for check-in)."""
    keys = sorted({baseline_key(v) for v in violations})
    document = {
        "format": _FORMAT,
        "version": _VERSION,
        "entries": [
            {"rule": rule, "path": path, "message": message}
            for rule, path, message in keys
        ],
    }
    return json.dumps(document, indent=2) + "\n"
