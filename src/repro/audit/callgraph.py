"""Project-wide call graph with hot-path propagation.

The per-file pass (:mod:`repro.audit.lint`) applies its hot-path rules
(RA105/RA106/RA108) by *directory*: a helper that lives outside
``core/``/``structures/`` but is called from ``sweep_skyband`` escapes
them entirely.  This module closes that hole:

1. :func:`build_project` parses a source tree into a :class:`Project` —
   modules, functions (methods, nested defs), classes — and resolves
   call sites into edges, handling:

   * plain and aliased imports (``import a.b as c``,
     ``from a import b as c``, relative imports),
   * ``self.``/``cls.`` method calls, including methods inherited from
     project-local base classes,
   * decorator-wrapped defs (the binding survives decoration),
   * constructor calls (edge to ``Class.__init__``) and locals /
     ``self`` attributes / annotated parameters holding project-class
     instances (``x = Foo(); x.bar()``),
   * ``functools.partial(f, ...)`` (edge kind ``"partial"`` — a
     reference, not an invocation),
   * recursion and call cycles (all traversals are visited-set
     bounded).

2. :func:`hot_functions` seeds every function *defined in* a hot-path
   directory (:data:`repro.audit.lint.HOT_PATH_PARTS`) and propagates
   hotness transitively along call edges — the callee of a hot function
   is hot wherever it lives.

3. :func:`hot_path_violations` re-runs the hot-path rules on each
   hot-reachable function defined in a *non*-hot file, tagging each
   finding with the call chain that makes it hot
   (``sweep_skyband -> merge -> helper``).

The model is a deliberate over-approximation (branches union, last
assignment wins); for a linter, false edges are cheap and missed edges
are the expensive failure mode.
"""

from __future__ import annotations

import ast
import os
from collections import deque
from typing import Iterable, Optional, Sequence

from repro.audit.report import Violation

__all__ = [
    "CallEdge",
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "Project",
    "build_project",
    "collect_python_files",
    "hot_functions",
    "hot_path_violations",
    "module_name_for_path",
]

#: edge kinds that represent an actual invocation (``"partial"`` is a
#: reference: the callable is constructed, not yet called).
CALL_KINDS = frozenset({"direct", "method", "ctor"})


class CallEdge:
    """One resolved call site: ``caller`` invokes ``callee``."""

    __slots__ = ("caller", "callee", "kind", "lineno", "col")

    def __init__(self, caller: str, callee: str, kind: str,
                 lineno: int, col: int = 0) -> None:
        self.caller = caller
        self.callee = callee
        self.kind = kind
        self.lineno = lineno
        self.col = col

    def __repr__(self) -> str:
        return (f"CallEdge({self.caller!r} -> {self.callee!r}, "
                f"{self.kind}, line {self.lineno})")


class FunctionInfo:
    """One function, method or nested def."""

    __slots__ = ("qualname", "module", "name", "cls", "path", "node",
                 "is_async", "lineno", "hot_seed")

    def __init__(self, qualname: str, module: str, name: str,
                 cls: Optional[str], path: str, node: ast.AST,
                 is_async: bool, hot_seed: bool) -> None:
        self.qualname = qualname
        self.module = module
        self.name = name
        self.cls = cls  # enclosing class qualname, if a method
        self.path = path
        self.node = node
        self.is_async = is_async
        self.lineno = getattr(node, "lineno", 1)
        self.hot_seed = hot_seed  # defined inside a hot-path directory

    def __repr__(self) -> str:
        return f"FunctionInfo({self.qualname!r})"


class ClassInfo:
    """One class: its methods, base names and inferred attribute types."""

    __slots__ = ("qualname", "module", "name", "bases", "methods",
                 "attr_types", "node")

    def __init__(self, qualname: str, module: str, name: str,
                 bases: list[str], node: ast.ClassDef) -> None:
        self.qualname = qualname
        self.module = module
        self.name = name
        #: textual (dotted) base-class expressions, resolved lazily
        self.bases = bases
        #: method name -> FunctionInfo
        self.methods: dict[str, FunctionInfo] = {}
        #: instance attribute name -> project class qualname (from
        #: ``self.x = Ctor(...)`` / annotated parameters)
        self.attr_types: dict[str, str] = {}
        self.node = node


class ModuleInfo:
    """One parsed module and its binding environment."""

    __slots__ = ("name", "path", "source", "tree", "imports",
                 "functions", "classes", "is_package")

    def __init__(self, name: str, path: str, source: str,
                 tree: ast.Module, is_package: bool) -> None:
        self.name = name
        self.path = path
        self.source = source
        self.tree = tree
        self.is_package = is_package
        #: local binding -> dotted target ("json", "repro.serve.checkpoint",
        #: "repro.core.pair.Pair", ...)
        self.imports: dict[str, str] = {}
        #: top-level function name -> FunctionInfo
        self.functions: dict[str, FunctionInfo] = {}
        #: class name -> ClassInfo
        self.classes: dict[str, ClassInfo] = {}


class Project:
    """The parsed project: modules, functions, classes, call edges."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        #: caller qualname -> outgoing edges
        self.edges: dict[str, list[CallEdge]] = {}
        #: function qualname -> [(blocking dotted name, lineno), ...]
        self.blocking_calls: dict[str, list[tuple[str, int]]] = {}

    # -- lookups --------------------------------------------------------
    def callees(self, qualname: str,
                kinds: Optional[frozenset] = None) -> list[CallEdge]:
        edges = self.edges.get(qualname, [])
        if kinds is None:
            return edges
        return [edge for edge in edges if edge.kind in kinds]

    def function_at(self, module: str, name: str) -> Optional[FunctionInfo]:
        info = self.modules.get(module)
        if info is None:
            return None
        return info.functions.get(name)

    def resolve_class(self, module: str, dotted: str) -> Optional[ClassInfo]:
        """A class named by ``dotted`` as seen from ``module``."""
        info = self.modules.get(module)
        if info is None:
            return None
        parts = dotted.split(".")
        head = parts[0]
        # local class
        if len(parts) == 1 and head in info.classes:
            return info.classes[head]
        # imported binding (possibly itself dotted)
        target = info.imports.get(head)
        if target is not None:
            dotted = ".".join([target, *parts[1:]])
        # longest module prefix + class name
        pieces = dotted.split(".")
        for split in range(len(pieces) - 1, 0, -1):
            mod, rest = ".".join(pieces[:split]), pieces[split:]
            if mod in self.modules and len(rest) == 1:
                return self.modules[mod].classes.get(rest[0])
        return self.classes.get(dotted)

    def lookup_method(self, class_qualname: str,
                      name: str) -> Optional[FunctionInfo]:
        """Resolve a method on a class, walking project-local bases."""
        seen: set[str] = set()
        queue = deque([class_qualname])
        while queue:
            current = queue.popleft()
            if current in seen:
                continue
            seen.add(current)
            cls = self.classes.get(current)
            if cls is None:
                continue
            if name in cls.methods:
                return cls.methods[name]
            for base in cls.bases:
                resolved = self.resolve_class(cls.module, base)
                if resolved is not None:
                    queue.append(resolved.qualname)
        return None


# ----------------------------------------------------------------------
# file collection + module naming
# ----------------------------------------------------------------------
def collect_python_files(paths: Iterable[str]) -> list[str]:
    """Every ``*.py`` under the given files/trees, ``__pycache__``
    skipped, sorted within each tree for stable output."""
    files: list[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d != "__pycache__"
                )
                files.extend(
                    os.path.join(dirpath, name)
                    for name in sorted(filenames)
                    if name.endswith(".py")
                )
        else:
            files.append(path)
    return files


def module_name_for_path(path: str) -> str:
    """The dotted module name, derived by walking up through package
    directories (those holding an ``__init__.py``)."""
    path = os.path.normpath(os.path.abspath(path))
    directory, filename = os.path.split(path)
    stem = os.path.splitext(filename)[0]
    parts: list[str] = [] if stem == "__init__" else [stem]
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        directory, pkg = os.path.split(directory)
        if not pkg:
            break
        parts.insert(0, pkg)
    return ".".join(parts) if parts else stem


def _relative_base(module: str, is_package: bool, level: int) -> str:
    """The anchor package for a ``from ...x import y`` statement."""
    parts = module.split(".")
    drop = level - 1 if is_package else level
    if drop >= len(parts):
        return ""
    return ".".join(parts[:len(parts) - drop]) if drop else module


# ----------------------------------------------------------------------
# pass 1: registration
# ----------------------------------------------------------------------
def _register_module(project: Project, path: str, source: str,
                     hot_seed: bool) -> Optional[ModuleInfo]:
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError:
        return None  # the per-file pass reports RA100
    is_package = os.path.basename(path) == "__init__.py"
    name = module_name_for_path(path)
    info = ModuleInfo(name, path, source, tree, is_package)
    project.modules[name] = info

    for stmt in ast.walk(tree):
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                if alias.asname:
                    info.imports[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    info.imports[root] = root
        elif isinstance(stmt, ast.ImportFrom):
            base = stmt.module or ""
            if stmt.level:
                anchor = _relative_base(name, is_package, stmt.level)
                base = f"{anchor}.{stmt.module}" if stmt.module else anchor
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                target = f"{base}.{alias.name}" if base else alias.name
                info.imports[alias.asname or alias.name] = target

    def register_function(node, qualname: str, cls: Optional[str],
                          top_level: bool) -> FunctionInfo:
        fn = FunctionInfo(
            qualname, name, node.name, cls, path, node,
            isinstance(node, ast.AsyncFunctionDef), hot_seed,
        )
        project.functions[qualname] = fn
        if top_level:
            info.functions[node.name] = fn
        # nested defs become functions in their own right
        for child in node.body:
            _register_nested(child, f"{qualname}.<locals>")
        return fn

    def _register_nested(stmt, prefix: str) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            register_function(stmt, f"{prefix}.{stmt.name}", None, False)
        elif isinstance(stmt, (ast.For, ast.AsyncFor, ast.While, ast.If)):
            for child in [*stmt.body, *stmt.orelse]:
                _register_nested(child, prefix)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for child in stmt.body:
                _register_nested(child, prefix)
        elif isinstance(stmt, ast.Try):
            blocks = [*stmt.body, *stmt.orelse, *stmt.finalbody]
            for handler in stmt.handlers:
                blocks.extend(handler.body)
            for child in blocks:
                _register_nested(child, prefix)

    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            register_function(stmt, f"{name}.{stmt.name}", None, True)
        elif isinstance(stmt, ast.ClassDef):
            class_qualname = f"{name}.{stmt.name}"
            bases = [_dotted_text(b) for b in stmt.bases]
            cls = ClassInfo(class_qualname, name, stmt.name,
                            [b for b in bases if b], stmt)
            info.classes[stmt.name] = cls
            project.classes[class_qualname] = cls
            for member in stmt.body:
                if isinstance(member,
                              (ast.FunctionDef, ast.AsyncFunctionDef)):
                    method = register_function(
                        member, f"{class_qualname}.{member.name}",
                        class_qualname, False,
                    )
                    cls.methods[member.name] = method
    return info


def _dotted_text(node: ast.expr) -> Optional[str]:
    """``a.b.c`` as text for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


# ----------------------------------------------------------------------
# pass 2: resolution
# ----------------------------------------------------------------------
#: calls that block the event loop (dotted names after alias
#: resolution); ``open`` is the builtin.
BLOCKING_CALLS = frozenset({
    "open",
    "io.open",
    "time.sleep",
    "os.system",
    "os.popen",
    "os.replace",
    "os.fsync",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "subprocess.Popen",
    "socket.create_connection",
    "urllib.request.urlopen",
    "requests.get",
    "requests.post",
    "requests.put",
    "requests.delete",
    "requests.request",
})

__all__.append("BLOCKING_CALLS")


class _Resolver(ast.NodeVisitor):
    """Resolves one function body's call sites into project edges."""

    def __init__(self, project: Project, module: ModuleInfo,
                 fn: FunctionInfo) -> None:
        self.project = project
        self.module = module
        self.fn = fn
        #: local variable -> project class qualname
        self.var_types: dict[str, str] = {}
        #: names of nested defs visible in this scope
        self.local_defs: dict[str, str] = {}
        self._collect_scope(fn.node)

    # -- scope seeding --------------------------------------------------
    def _collect_scope(self, node) -> None:
        args = node.args
        all_args = [*args.posonlyargs, *args.args, *args.kwonlyargs]
        if args.vararg:
            all_args.append(args.vararg)
        if args.kwarg:
            all_args.append(args.kwarg)
        for arg in all_args:
            if arg.annotation is not None:
                dotted = _dotted_text(arg.annotation)
                if dotted:
                    cls = self.project.resolve_class(
                        self.module.name, dotted
                    )
                    if cls is not None:
                        self.var_types[arg.arg] = cls.qualname
        for stmt in ast.walk(node):
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and stmt is not node:
                self.local_defs.setdefault(
                    stmt.name,
                    f"{self.fn.qualname}.<locals>.{stmt.name}",
                )

    # -- traversal ------------------------------------------------------
    def run(self) -> None:
        for stmt in self.fn.node.body:
            self._visit_block(stmt)

    def _visit_block(self, node) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # nested scopes resolve separately
        if isinstance(node, ast.Assign):
            self._track_assignment(node)
        elif isinstance(node, ast.AnnAssign):
            self._track_ann_assignment(node)
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                continue
            if isinstance(child, ast.Call):
                self._visit_call(child)
            self._visit_block(child)

    def _track_assignment(self, node: ast.Assign) -> None:
        cls = self._class_of_call(node.value)
        if cls is None and isinstance(node.value, ast.Name):
            cls = self.var_types.get(node.value.id)
        if cls is None:
            return
        for target in node.targets:
            if isinstance(target, ast.Name):
                self.var_types[target.id] = cls
            elif isinstance(target, ast.Attribute) \
                    and isinstance(target.value, ast.Name) \
                    and target.value.id == "self" and self.fn.cls:
                owner = self.project.classes.get(self.fn.cls)
                if owner is not None:
                    owner.attr_types[target.attr] = cls

    def _track_ann_assignment(self, node: ast.AnnAssign) -> None:
        dotted = _dotted_text(node.annotation)
        if not dotted or not isinstance(node.target, ast.Name):
            return
        cls = self.project.resolve_class(self.module.name, dotted)
        if cls is not None:
            self.var_types[node.target.id] = cls.qualname

    def _class_of_call(self, value: ast.expr) -> Optional[str]:
        """``Ctor(...)`` -> the constructed project class, if any."""
        if not isinstance(value, ast.Call):
            return None
        dotted = _dotted_text(value.func)
        if dotted is None:
            return None
        cls = self.project.resolve_class(self.module.name, dotted)
        return cls.qualname if cls is not None else None

    # -- call resolution ------------------------------------------------
    def _visit_call(self, node: ast.Call) -> None:
        dotted = self._resolved_dotted(node.func)
        if dotted is not None and dotted in BLOCKING_CALLS:
            self.project.blocking_calls.setdefault(
                self.fn.qualname, []
            ).append((dotted, node.lineno))
        if dotted in ("functools.partial", "partial") and node.args:
            resolved = self._resolve_callable(node.args[0])
            if resolved is not None:
                self._add_edge(resolved, "partial", node)
            return
        resolved = self._resolve_callable(node.func)
        if resolved is None:
            return
        kind = "direct"
        target = self.project.functions.get(resolved)
        if target is None:
            # constructor: edge to __init__ when the class is local
            cls = self.project.classes.get(resolved)
            if cls is not None:
                init = self.project.lookup_method(resolved, "__init__")
                if init is None:
                    return
                resolved, kind = init.qualname, "ctor"
            else:
                return
        elif target.cls is not None:
            kind = "method"
        self._add_edge(resolved, kind, node)

    def _add_edge(self, callee: str, kind: str, node: ast.Call) -> None:
        self.project.edges.setdefault(self.fn.qualname, []).append(
            CallEdge(self.fn.qualname, callee, kind,
                     node.lineno, node.col_offset)
        )

    def _resolved_dotted(self, func: ast.expr) -> Optional[str]:
        """The dotted name with the leading binding resolved through
        this module's imports (``t.sleep`` -> ``time.sleep``)."""
        dotted = _dotted_text(func)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        if head in self.var_types or head in self.local_defs:
            return dotted
        target = self.module.imports.get(head)
        if target is None:
            return dotted
        return f"{target}.{rest}" if rest else target

    def _resolve_callable(self, func: ast.expr) -> Optional[str]:
        """A call target expression -> function/class qualname."""
        if isinstance(func, ast.Name):
            name = func.id
            if name in self.local_defs:
                return self.local_defs[name]
            if name in self.var_types:
                return None  # calling an instance: __call__, out of scope
            local = self.module.functions.get(name)
            if local is not None:
                return local.qualname
            if name in self.module.classes:
                return self.module.classes[name].qualname
            target = self.module.imports.get(name)
            if target is not None:
                return self._lookup_dotted(target)
            return None
        if isinstance(func, ast.Attribute):
            base = func.value
            # self.method() / cls.method() and self.attr.method()
            if isinstance(base, ast.Name) and base.id in ("self", "cls") \
                    and self.fn.cls is not None:
                method = self.project.lookup_method(self.fn.cls, func.attr)
                return method.qualname if method is not None else None
            if isinstance(base, ast.Attribute) \
                    and isinstance(base.value, ast.Name) \
                    and base.value.id == "self" and self.fn.cls is not None:
                owner = self.project.classes.get(self.fn.cls)
                if owner is not None:
                    attr_cls = owner.attr_types.get(base.attr)
                    if attr_cls is not None:
                        method = self.project.lookup_method(
                            attr_cls, func.attr
                        )
                        if method is not None:
                            return method.qualname
                return None
            # typed local: x.method()
            if isinstance(base, ast.Name) and base.id in self.var_types:
                method = self.project.lookup_method(
                    self.var_types[base.id], func.attr
                )
                return method.qualname if method is not None else None
            # module attribute chains: pkg.mod.func()
            dotted = self._resolved_dotted(func)
            if dotted is not None:
                return self._lookup_dotted(dotted)
        return None

    def _lookup_dotted(self, dotted: str) -> Optional[str]:
        """A fully-resolved dotted target -> project function/class."""
        if dotted in self.project.functions \
                or dotted in self.project.classes:
            return dotted
        # longest module prefix, then attribute walk (module.func or
        # module.Class)
        pieces = dotted.split(".")
        for split in range(len(pieces) - 1, 0, -1):
            mod = ".".join(pieces[:split])
            info = self.project.modules.get(mod)
            if info is None:
                continue
            rest = pieces[split:]
            if len(rest) == 1:
                if rest[0] in info.functions:
                    return info.functions[rest[0]].qualname
                if rest[0] in info.classes:
                    return info.classes[rest[0]].qualname
                # re-exported / aliased inside that module
                onward = info.imports.get(rest[0])
                if onward is not None and onward != dotted:
                    return self._lookup_dotted(onward)
            elif len(rest) == 2 and rest[0] in info.classes:
                method = info.classes[rest[0]].methods.get(rest[1])
                if method is not None:
                    return method.qualname
        return None


def build_project(
    paths: Iterable[str],
    *,
    sources: Optional[dict[str, str]] = None,
) -> Project:
    """Parse a source tree into a resolved :class:`Project`.

    ``sources`` short-circuits disk reads for files already in memory
    (the lint driver reads each file exactly once).
    """
    from repro.audit.lint import _is_hot_path

    project = Project()
    files = collect_python_files(paths)
    modules: list[ModuleInfo] = []
    for path in files:
        if sources is not None and path in sources:
            source = sources[path]
        else:
            with open(path, encoding="utf-8") as handle:
                source = handle.read()
        info = _register_module(project, path, source, _is_hot_path(path))
        if info is not None:
            modules.append(info)
    # Two resolution sweeps: the first populates class attribute types
    # (``self.x = Ctor(...)``), the second resolves the method calls
    # that depend on them.  Edges are rebuilt from scratch in the last
    # sweep so none are duplicated.
    for sweep in range(2):
        project.edges.clear()
        project.blocking_calls.clear()
        for info in modules:
            for fn in project.functions.values():
                if fn.module == info.name:
                    _Resolver(project, info, fn).run()
    return project


# ----------------------------------------------------------------------
# hot-path propagation
# ----------------------------------------------------------------------
def hot_functions(project: Project) -> dict[str, tuple[str, ...]]:
    """Every function reachable from a hot-path seed, mapped to one
    witness call chain ``(seed, ..., function)`` of qualnames."""
    hot: dict[str, tuple[str, ...]] = {}
    queue: deque[str] = deque()
    for qualname, fn in project.functions.items():
        if fn.hot_seed:
            hot[qualname] = (qualname,)
            queue.append(qualname)
    while queue:
        current = queue.popleft()
        chain = hot[current]
        for edge in project.edges.get(current, ()):
            if edge.callee not in hot:
                hot[edge.callee] = chain + (edge.callee,)
                queue.append(edge.callee)
    return hot


def _short_chain(project: Project, chain: Sequence[str]) -> str:
    names = []
    for qualname in chain:
        fn = project.functions.get(qualname)
        names.append(fn.name if fn is not None else qualname)
    return " -> ".join(names)


def hot_path_violations(project: Project) -> list[Violation]:
    """RA105/RA106/RA108 findings in functions that are hot only by
    reachability (defined outside the hot-path directories)."""
    from repro.audit.lint import lint_function_hot

    violations: list[Violation] = []
    seen: set[tuple[str, str]] = set()
    hot = hot_functions(project)
    for qualname, chain in sorted(hot.items()):
        fn = project.functions.get(qualname)
        if fn is None or fn.hot_seed:
            continue  # hot files are covered by the per-file pass
        module = project.modules.get(fn.module)
        if module is None:
            continue
        suffix = f" [hot path via {_short_chain(project, chain)}]"
        for violation in lint_function_hot(fn.node, module.tree, fn.path):
            key = (violation.rule, violation.location)
            if key in seen:
                continue  # nested defs are walked by their parent too
            seen.add(key)
            violations.append(Violation(
                violation.rule,
                violation.message + suffix,
                paper_ref=violation.paper_ref,
                subject=violation.subject,
                location=violation.location,
            ))
    return violations
