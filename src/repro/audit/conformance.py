"""RA301 — wire-protocol conformance across the serve layer.

``serve/protocol.py`` declares the op vocabulary (``OPS``);
``serve/server.py`` dispatches each op to an ``_op_<name>`` method;
``serve/client.py`` encodes each op as a ``self.request("<op>", ...)``
call.  The three must agree:

* an op in ``OPS`` with no ``_op_<name>`` handler is a wire error
  waiting for the first client that sends it;
* an op in ``OPS`` the client never encodes is dead vocabulary (or a
  missing client feature);
* an ``_op_<name>`` handler or client op literal outside ``OPS`` is
  unreachable dead code (the server rejects unknown ops before
  dispatch).

The check is cross-module and purely structural — no imports are
executed.  When the analyzed tree has no ``.serve.protocol`` module
(e.g. fixture corpora) the check is silent.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.audit.callgraph import ModuleInfo, Project
from repro.audit.report import Violation

__all__ = ["conformance_violations"]

_PAPER_REF = "docs/audit.md rule catalogue"


def _find_module(project: Project, suffix: str) -> Optional[ModuleInfo]:
    for name, info in project.modules.items():
        if name == suffix or name.endswith("." + suffix):
            return info
    return None


def _declared_ops(info: ModuleInfo) -> Optional[tuple[list[tuple[str, int, int]], int]]:
    """``OPS`` entries as ``(op, line, col)`` plus the assignment line."""
    for stmt in info.tree.body:
        if isinstance(stmt, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "OPS" for t in stmt.targets
        ) and isinstance(stmt.value, (ast.Tuple, ast.List)):
            entries = [
                (element.value, element.lineno, element.col_offset)
                for element in stmt.value.elts
                if isinstance(element, ast.Constant)
                and isinstance(element.value, str)
            ]
            return entries, stmt.lineno
    return None


def _server_handlers(info: ModuleInfo) -> dict[str, tuple[int, int]]:
    """``op -> (line, col)`` for every ``_op_<name>`` method."""
    handlers: dict[str, tuple[int, int]] = {}
    for node in ast.walk(info.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and node.name.startswith("_op_"):
            handlers[node.name[len("_op_"):]] = (
                node.lineno, node.col_offset,
            )
    return handlers


def _client_ops(info: ModuleInfo) -> dict[str, tuple[int, int]]:
    """``op -> (line, col)`` for every ``...request("<op>", ...)``."""
    ops: dict[str, tuple[int, int]] = {}
    for node in ast.walk(info.tree):
        if isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr == "request" and node.args:
            first = node.args[0]
            if isinstance(first, ast.Constant) \
                    and isinstance(first.value, str):
                ops.setdefault(first.value, (node.lineno, node.col_offset))
    return ops


def conformance_violations(project: Project) -> list[Violation]:
    protocol = _find_module(project, "serve.protocol")
    if protocol is None:
        return []
    declared = _declared_ops(protocol)
    if declared is None:
        return []
    entries, ops_lineno = declared
    ops = {name for name, _l, _c in entries}

    server = _find_module(project, "serve.server")
    client = _find_module(project, "serve.client")
    handlers = _server_handlers(server) if server is not None else {}
    encoders = _client_ops(client) if client is not None else {}

    violations: list[Violation] = []
    for op, lineno, col in entries:
        if server is not None and op not in handlers:
            violations.append(Violation(
                "RA301",
                f"protocol op {op!r} has no _op_{op} handler in "
                f"{server.name} — a client sending it gets a wire error",
                paper_ref=_PAPER_REF,
                subject=op,
                location=f"{protocol.path}:{lineno}:{col}",
            ))
        if client is not None and op not in encoders:
            violations.append(Violation(
                "RA301",
                f"protocol op {op!r} has no client encoder in "
                f"{client.name} (no request({op!r}, ...) call)",
                paper_ref=_PAPER_REF,
                subject=op,
                location=f"{protocol.path}:{lineno}:{col}",
            ))
    for op, (lineno, col) in sorted(handlers.items()):
        if op not in ops:
            violations.append(Violation(
                "RA301",
                f"_op_{op} handles an op missing from {protocol.name}."
                f"OPS — the server rejects unknown ops before dispatch, "
                "so the handler is unreachable",
                paper_ref=_PAPER_REF,
                subject=op,
                location=f"{server.path}:{lineno}:{col}",
            ))
    for op, (lineno, col) in sorted(encoders.items()):
        if op not in ops:
            violations.append(Violation(
                "RA301",
                f"client encodes op {op!r} missing from {protocol.name}."
                "OPS — the server will reject it",
                paper_ref=_PAPER_REF,
                subject=op,
                location=f"{client.path}:{lineno}:{col}",
            ))
    return violations
