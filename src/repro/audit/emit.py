"""Machine-readable emitters for lint findings (JSON and SARIF 2.1.0).

``to_json`` is the compact interchange form (one object, ``violations``
+ ``warnings`` arrays).  ``to_sarif`` produces a minimal SARIF 2.1.0
document — the format CI systems and code-scanning UIs ingest — with
the rule metadata taken from the shared catalogue
(:mod:`repro.audit.rules`), so titles shown in a SARIF viewer match
``--explain`` and ``docs/audit.md`` exactly.
"""

from __future__ import annotations

import json
import os
from typing import Optional, Sequence

from repro.audit.report import Violation
from repro.audit.rules import rule_info

__all__ = ["to_json", "to_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
_TOOL_NAME = "repro-lint"
_TOOL_URI = "docs/audit.md"


def _split_location(violation: Violation) -> tuple[str, int, int]:
    path, line, col = violation.location.rsplit(":", 2)
    return path, int(line), int(col)


def _violation_dict(violation: Violation, *, baselined: bool) -> dict:
    path, line, col = _split_location(violation)
    entry = {
        "rule": violation.rule,
        "message": violation.message,
        "path": path.replace(os.sep, "/"),
        "line": line,
        "column": col,
    }
    if violation.subject:
        entry["subject"] = violation.subject
    if baselined:
        entry["baselined"] = True
    return entry


def to_json(
    violations: Sequence[Violation],
    warnings: Sequence[Violation] = (),
    *,
    grandfathered: Sequence[Violation] = (),
) -> str:
    document = {
        "tool": _TOOL_NAME,
        "violations": [
            _violation_dict(v, baselined=False) for v in violations
        ] + [
            _violation_dict(v, baselined=True) for v in grandfathered
        ],
        "warnings": [
            _violation_dict(v, baselined=False) for v in warnings
        ],
    }
    return json.dumps(document, indent=2) + "\n"


def _sarif_result(violation: Violation, level: str,
                  baselined: Optional[bool]) -> dict:
    path, line, col = _split_location(violation)
    result = {
        "ruleId": violation.rule,
        "level": level,
        "message": {"text": violation.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {
                    "uri": path.replace(os.sep, "/"),
                },
                "region": {
                    "startLine": max(line, 1),
                    "startColumn": col + 1,  # SARIF columns are 1-based
                },
            },
        }],
    }
    if baselined is not None:
        # SARIF's own vocabulary for grandfathered findings
        result["baselineState"] = "unchanged" if baselined else "new"
    return result


def to_sarif(
    violations: Sequence[Violation],
    warnings: Sequence[Violation] = (),
    *,
    grandfathered: Sequence[Violation] = (),
    track_baseline: bool = False,
) -> str:
    """A SARIF 2.1.0 run for the given findings.

    With ``track_baseline`` each result carries ``baselineState``
    (``"new"`` vs ``"unchanged"``) so SARIF viewers can filter to
    exactly what strict mode fails on.
    """
    rule_ids = sorted(
        {v.rule for v in (*violations, *warnings, *grandfathered)}
    )
    rules = []
    for rule_id in rule_ids:
        info = rule_info(rule_id)
        descriptor = {"id": rule_id}
        if info is not None:
            descriptor["shortDescription"] = {"text": info.title}
            descriptor["fullDescription"] = {"text": info.rationale}
            descriptor["defaultConfiguration"] = {
                "level": "warning" if info.kind == "warning" else "error",
            }
        rules.append(descriptor)
    results = [
        _sarif_result(v, "error", False if track_baseline else None)
        for v in violations
    ]
    results.extend(
        _sarif_result(v, "error", True if track_baseline else None)
        for v in grandfathered
    )
    results.extend(
        _sarif_result(v, "warning", None) for v in warnings
    )
    document = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": _TOOL_NAME,
                    "informationUri": _TOOL_URI,
                    "rules": rules,
                },
            },
            "results": results,
        }],
    }
    return json.dumps(document, indent=2) + "\n"
