"""Runtime invariant verifier for the skyband pipeline.

The paper's correctness argument rests on structural invariants that the
code maintains but (before this module) nothing enforced at runtime:

* the PST is a min-heap on ages and a search tree on score split keys
  (§IV-A, Algorithm 1, properties 1-2);
* the skip lists backing the stream manager are sorted with exact width
  bookkeeping (§III-B module 1);
* the K-skyband is a *minimal* candidate set — every member has fewer
  than K dominators (Theorems 1-2);
* the K-staircase is score-ascending with non-increasing age thresholds
  and in sync with the skyband it summarizes (§V-A.1, Algorithm 4);
* continuous answers equal what Algorithm 2 would recompute (§IV-B).

Each ``check_*`` function below is pure: it walks one structure and
returns a list of :class:`~repro.audit.report.Violation` records (empty
when the structure is healthy).  All checkers are ``O(structure size)``
— cheap enough to run every tick on realistic windows.  The only
super-linear check is the brute-force K-skyband recomputation
(:func:`brute_force_skyband`), which :class:`MonitorAuditor` therefore
only runs on explicitly sampled ticks.

The checkers read private attributes of the structures they verify
(``SkipList._head``, ``SkybandMaintainer._by_oldest``, ...).  That is
deliberate: an invariant verifier must see the representation, not the
API the representation is supposed to uphold.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

from repro.audit.report import Violation
from repro.core.pair import Pair, make_pair
from repro.core.query import answer_snapshot
from repro.core.skyband_update import update_skyband_and_staircase
from repro.exceptions import AuditViolationError
from repro.stream.window import CountBasedWindow, TimeBasedWindow

if TYPE_CHECKING:  # imported lazily at runtime to avoid import cycles
    from repro.core.maintenance import SkybandMaintainer
    from repro.core.monitor import TopKPairsMonitor
    from repro.core.staircase import KStaircase
    from repro.stream.manager import StreamManager
    from repro.stream.object import StreamObject
    from repro.structures.pst import PrioritySearchTree
    from repro.structures.skiplist import SkipList

__all__ = [
    "MonitorAuditor",
    "brute_force_skyband",
    "check_maintainer",
    "check_monitor",
    "check_pst",
    "check_skiplist",
    "check_skyband",
    "check_staircase",
    "check_window",
    "cross_check_monitor",
]


# ----------------------------------------------------------------------
# priority search tree (§IV-A)
# ----------------------------------------------------------------------
def check_pst(tree: "PrioritySearchTree", *, location: str = "pst") -> list[Violation]:
    """Verify heap-on-age, split-key partition, size bookkeeping and
    score-key uniqueness of a :class:`PrioritySearchTree`."""
    violations: list[Violation] = []
    root = tree.root
    if root is None:
        return violations
    # One pre-order pass checks the ordered invariants and collects the
    # nodes; a post-order replay then validates the size bookkeeping.
    seen_keys: dict = {}
    preorder: list = []
    stack = [(root, None, None, None)]  # node, min_age_key, lo, hi
    while stack:
        node, min_age_key, lo, hi = stack.pop()
        preorder.append(node)
        point = node.point
        if min_age_key is not None and point.age_key < min_age_key:
            violations.append(Violation(
                "PST-HEAP",
                f"node age_key {point.age_key} is more recent than its "
                f"parent's {min_age_key} (min-heap on ages broken)",
                paper_ref="paper §IV-A property 1, Algorithm 1",
                subject=repr(node),
                location=location,
            ))
        if lo is not None and not point.score_key > lo:
            violations.append(Violation(
                "PST-SPLIT",
                f"score key {point.score_key!r} is not above the left "
                f"bound {lo!r} of its subtree",
                paper_ref="paper §IV-A property 2",
                subject=repr(node),
                location=location,
            ))
        if hi is not None and not point.score_key <= hi:
            violations.append(Violation(
                "PST-SPLIT",
                f"score key {point.score_key!r} exceeds the split bound "
                f"{hi!r} of its subtree",
                paper_ref="paper §IV-A property 2",
                subject=repr(node),
                location=location,
            ))
        if point.score_key in seen_keys:
            violations.append(Violation(
                "PST-DUP",
                f"score key {point.score_key!r} stored twice (footnote-1 "
                "perturbed keys must be unique)",
                paper_ref="paper footnote 1",
                subject=repr(node),
                location=location,
            ))
        seen_keys[point.score_key] = node
        if node.left is not None:
            stack.append((node.left, point.age_key, lo, node.split))
        if node.right is not None:
            stack.append((node.right, point.age_key, node.split, hi))
    # The stack-based pre-order above pushes children after the parent,
    # so iterating the collected list in reverse sees children before
    # parents — sizes can be summed without recursion.
    sizes: dict[int, int] = {}
    for node in reversed(preorder):
        size = 1
        if node.left is not None:
            size += sizes.get(id(node.left), 0)
        if node.right is not None:
            size += sizes.get(id(node.right), 0)
        sizes[id(node)] = size
        if node.size != size:
            violations.append(Violation(
                "PST-SIZE",
                f"cached subtree size {node.size} != actual {size} "
                "(weight-balance bookkeeping broken)",
                paper_ref="scapegoat balancing, docs/algorithms.md",
                subject=repr(node),
                location=location,
            ))
    return violations


# ----------------------------------------------------------------------
# indexable skip list (§III-B module 1)
# ----------------------------------------------------------------------
def check_skiplist(sl: "SkipList", *, location: str = "skiplist") -> list[Violation]:
    """Verify sorted order, width bookkeeping, ``prev`` pointers and the
    size counter of an indexable :class:`SkipList`."""
    violations: list[Violation] = []
    key = sl._key
    head = sl._head
    # Level-0 walk: collect positions, check order / keys / prev.
    positions: dict[int, int] = {id(head): 0}
    node = head.forward[0]
    prev = None
    index = 1
    previous_key = None
    while node is not None:
        positions[id(node)] = index
        actual_key = key(node.value)
        if node.key != actual_key:
            violations.append(Violation(
                "SKIP-KEY",
                f"cached key {node.key!r} != key(value) {actual_key!r}",
                paper_ref="paper §III-B module 1",
                subject=repr(node),
                location=location,
            ))
        if previous_key is not None and not previous_key <= node.key:
            violations.append(Violation(
                "SKIP-ORDER",
                f"key {node.key!r} at rank {index - 1} is below its "
                f"predecessor {previous_key!r} (sorted order broken)",
                paper_ref="paper §III-B module 1",
                subject=repr(node),
                location=location,
            ))
        if node.prev is not prev:
            violations.append(Violation(
                "SKIP-PREV",
                f"prev pointer of rank-{index - 1} node does not point "
                "at its level-0 predecessor",
                paper_ref="paper Fig 6 outward walk",
                subject=repr(node),
                location=location,
            ))
        previous_key = node.key
        prev = node
        index += 1
        node = node.forward[0]
    actual_size = index - 1
    if actual_size != len(sl):
        violations.append(Violation(
            "SKIP-SIZE",
            f"size counter {len(sl)} != level-0 node count {actual_size}",
            subject=repr(sl),
            location=location,
        ))
    # Per-level walk: every forward link must land on a level-0 node and
    # skip exactly ``width`` level-0 links.
    for level in range(sl._level):
        node = head
        while node.forward[level] is not None:
            successor = node.forward[level]
            if id(successor) not in positions:
                violations.append(Violation(
                    "SKIP-LINK",
                    f"level-{level} forward link reaches a node absent "
                    "from level 0",
                    subject=repr(successor),
                    location=location,
                ))
                break
            distance = positions[id(successor)] - positions[id(node)]
            if node.width[level] != distance:
                violations.append(Violation(
                    "SKIP-WIDTH",
                    f"level-{level} width {node.width[level]} != level-0 "
                    f"distance {distance} (rank queries would be wrong)",
                    paper_ref="indexable skip list width augmentation",
                    subject=repr(node),
                    location=location,
                ))
            node = successor
    return violations


# ----------------------------------------------------------------------
# K-staircase (§V-A.1)
# ----------------------------------------------------------------------
def check_staircase(sc: "KStaircase", *, location: str = "staircase") -> list[Violation]:
    """Verify strictly ascending score keys and non-increasing age
    thresholds of a :class:`KStaircase`."""
    violations: list[Violation] = []
    points = sc.points()
    for i in range(1, len(points)):
        (prev_key, prev_age), (cur_key, cur_age) = points[i - 1], points[i]
        if not prev_key < cur_key:
            violations.append(Violation(
                "STAIR-ORDER",
                f"staircase score keys out of order at step {i}: "
                f"{prev_key!r} !< {cur_key!r}",
                paper_ref="paper §V-A.1",
                subject=f"steps {i - 1}..{i}",
                location=location,
            ))
        if not prev_age >= cur_age:
            violations.append(Violation(
                "STAIR-AGE",
                f"staircase age thresholds increase at step {i}: "
                f"{prev_age} < {cur_age} (monotonicity broken)",
                paper_ref="paper §V-A.1",
                subject=f"steps {i - 1}..{i}",
                location=location,
            ))
    return violations


# ----------------------------------------------------------------------
# K-skyband (Theorems 1-2)
# ----------------------------------------------------------------------
def check_skyband(
    pairs: Sequence[Pair],
    K: int,
    window: Optional[Iterable["StreamObject"]] = None,
    *,
    location: str = "skyband",
) -> list[Violation]:
    """Verify a maintained K-skyband: ascending score order, unique
    pairs, minimality (every member has fewer than ``K`` dominators
    within the set — Theorem 2) and, when ``window`` is given, that both
    members of every pair are in-window objects."""
    violations: list[Violation] = []
    seen_uids: set[int] = set()
    window_seqs = {obj.seq for obj in window} if window is not None else None
    # Sweep in stored order; ages of all strictly-smaller-score
    # predecessors accumulate in a sorted list, so the dominator count
    # of each pair is one bisect (dominance: smaller score key AND age
    # at most the dominatee's — repro.core.pair.dominates).
    ages_sorted: list[int] = []
    previous_key = None
    for index, pair in enumerate(pairs):
        if previous_key is not None and not previous_key < pair.score_key:
            violations.append(Violation(
                "SKB-ORDER",
                f"skyband not ascending by score key at index {index}",
                paper_ref="paper Algorithm 4 output order",
                subject=repr(pair),
                location=location,
            ))
        previous_key = pair.score_key
        if pair.uid in seen_uids:
            violations.append(Violation(
                "SKB-DUP",
                f"pair stored twice in the skyband (uid {pair.uid})",
                subject=repr(pair),
                location=location,
            ))
        seen_uids.add(pair.uid)
        dominators = bisect_right(ages_sorted, pair.age_key)
        if dominators >= K:
            violations.append(Violation(
                "SKB-MIN",
                f"pair has {dominators} >= K={K} dominators inside the "
                "skyband — it is dominated out and must not be a member",
                paper_ref="paper Theorems 1-2",
                subject=repr(pair),
                location=location,
            ))
        insort(ages_sorted, pair.age_key)
        if window_seqs is not None:
            for member in pair.objects():
                if member.seq not in window_seqs:
                    violations.append(Violation(
                        "SKB-WINDOW",
                        f"skyband pair references expired object "
                        f"seq={member.seq}",
                        paper_ref="paper §III (pair expiry)",
                        subject=repr(pair),
                        location=location,
                    ))
    return violations


# ----------------------------------------------------------------------
# stream manager / window (§III-B module 1)
# ----------------------------------------------------------------------
def check_window(mgr: "StreamManager", *, location: str = "window") -> list[Violation]:
    """Verify the stream manager: window ordering and capacity, and that
    every attribute skip list is healthy and holds exactly the window."""
    violations: list[Violation] = []
    objects = mgr.objects()
    seqs = [obj.seq for obj in objects]
    for i in range(1, len(seqs)):
        if not seqs[i - 1] < seqs[i]:
            violations.append(Violation(
                "WIN-SEQ",
                f"window objects out of arrival order at position {i}: "
                f"seq {seqs[i - 1]} before {seqs[i]}",
                paper_ref="paper §II-B",
                subject=repr(objects[i]),
                location=location,
            ))
    win = mgr._window
    if isinstance(win, CountBasedWindow) and len(objects) > win.capacity:
        violations.append(Violation(
            "WIN-CAP",
            f"count-based window holds {len(objects)} > capacity "
            f"{win.capacity} objects",
            paper_ref="paper §II-B",
            location=location,
        ))
    if isinstance(win, TimeBasedWindow) and objects:
        newest = objects[-1].timestamp
        oldest = objects[0].timestamp
        if newest is not None and oldest is not None \
                and newest - oldest > win.horizon:
            violations.append(Violation(
                "WIN-TIME",
                f"time-based window spans {newest - oldest} > horizon "
                f"{win.horizon}",
                paper_ref="paper §II-B",
                location=location,
            ))
    window_seqs = set(seqs)
    node_index = mgr._nodes
    if set(node_index) != window_seqs:
        violations.append(Violation(
            "WIN-NODE",
            "skip-node index keys differ from the window's sequence "
            f"numbers ({len(node_index)} indexed vs {len(window_seqs)} "
            "in window)",
            location=location,
        ))
    for attribute in range(mgr.num_attributes):
        sub_location = f"{location}.attribute_list[{attribute}]"
        attr_list = mgr.attribute_list(attribute)
        violations.extend(check_skiplist(attr_list, location=sub_location))
        listed_seqs = {obj.seq for obj in attr_list}
        if listed_seqs != window_seqs:
            missing = window_seqs - listed_seqs
            extra = listed_seqs - window_seqs
            violations.append(Violation(
                "WIN-LIST",
                f"attribute list {attribute} disagrees with the window "
                f"(missing seqs {sorted(missing)[:5]}, stale seqs "
                f"{sorted(extra)[:5]})",
                paper_ref="paper §III-B module 1",
                location=sub_location,
            ))
        for obj in objects:
            nodes = node_index.get(obj.seq)
            if nodes is None:
                continue  # already reported by WIN-NODE
            if nodes[attribute].value is not obj:
                violations.append(Violation(
                    "WIN-NODE",
                    f"indexed node for seq={obj.seq} holds a different "
                    "object",
                    subject=repr(nodes[attribute]),
                    location=sub_location,
                ))
    return violations


# ----------------------------------------------------------------------
# maintainer cross-structure consistency (§V)
# ----------------------------------------------------------------------
def check_maintainer(
    maintainer: "SkybandMaintainer",
    manager: Optional["StreamManager"] = None,
    *,
    location: str = "maintainer",
) -> list[Violation]:
    """Verify one skyband maintainer: its skyband, staircase and PST
    individually, plus their mutual consistency (same membership, fresh
    staircase, exact expiry index)."""
    violations: list[Violation] = []
    skyband = maintainer.skyband
    window = manager.objects() if manager is not None else None
    violations.extend(check_skyband(
        skyband, maintainer.K, window, location=f"{location}.skyband"
    ))
    violations.extend(check_staircase(
        maintainer.staircase, location=f"{location}.staircase"
    ))
    violations.extend(check_pst(maintainer.pst, location=f"{location}.pst"))
    skyband_uids = {p.uid for p in skyband}
    pst_uids = {p.uid for p in maintainer.pst.points()}
    if pst_uids != skyband_uids:
        violations.append(Violation(
            "SKB-PST",
            f"PST holds {len(pst_uids)} pairs but the skyband holds "
            f"{len(skyband_uids)} — the query index is out of sync",
            paper_ref="paper §IV-A",
            location=location,
        ))
    if maintainer._score_keys != [p.score_key for p in skyband]:
        violations.append(Violation(
            "SKB-CACHE",
            "cached score-key list diverged from the skyband",
            location=location,
        ))
    if maintainer._age_keys != [p.age_key for p in skyband]:
        violations.append(Violation(
            "SKB-CACHE",
            "cached age-key list diverged from the skyband",
            location=location,
        ))
    indexed = [
        pair
        for pairs in maintainer._by_oldest.values()
        for pair in pairs
    ]
    if {p.uid for p in indexed} != skyband_uids or \
            len(indexed) != len(skyband_uids):
        violations.append(Violation(
            "SKB-INDEX",
            "expiry index (pairs by oldest member) disagrees with the "
            "skyband — expiry would drop the wrong pairs",
            paper_ref="paper §V expiry handling",
            location=location,
        ))
    for oldest_seq, pairs in maintainer._by_oldest.items():
        for pair in pairs:
            if pair.oldest_seq != oldest_seq:
                violations.append(Violation(
                    "SKB-INDEX",
                    f"pair filed under oldest_seq={oldest_seq} actually "
                    f"expires with seq={pair.oldest_seq}",
                    subject=repr(pair),
                    location=location,
                ))
    # Staircase freshness: Algorithm 4's staircase is a pure function of
    # the kept sequence, so recomputing over the current skyband must
    # reproduce it exactly.  A stale staircase (e.g. one not refreshed
    # after expiry) keeps counting dead dominators and silently prunes
    # live candidates.
    _, expected_staircase = update_skyband_and_staircase(
        skyband, maintainer.K
    )
    if maintainer.staircase.points() != expected_staircase.points():
        violations.append(Violation(
            "STAIR-SYNC",
            "staircase is stale: it differs from the staircase recomputed "
            "over the current skyband",
            paper_ref="paper §V-A.1, Algorithm 4",
            location=f"{location}.staircase",
        ))
    # Algorithm 4 emits one staircase point per kept pair from the K-th
    # on — a size law the incremental prefix/suffix stitching relies on.
    expected_points = max(0, len(skyband) - maintainer.K + 1)
    if len(maintainer.staircase) != expected_points:
        violations.append(Violation(
            "STAIR-COUNT",
            f"staircase has {len(maintainer.staircase)} points, expected "
            f"max(0, |SKB| - K + 1) = {expected_points}",
            paper_ref="paper §V-A.1, Algorithm 4",
            location=f"{location}.staircase",
        ))
    return violations


def check_monitor(monitor: "TopKPairsMonitor") -> list[Violation]:
    """Verify a whole monitor: window, every skyband group and every
    continuous answer (which must equal an Algorithm 2 recomputation)."""
    violations = check_window(monitor.manager)
    now_seq = monitor.manager.now_seq
    for index, group in enumerate(monitor._groups.values()):
        group_location = f"group[{index}:{group.scoring_function.name}]"
        violations.extend(check_maintainer(
            group.maintainer, monitor.manager, location=group_location
        ))
        for handle in group.queries.values():
            state = handle.state
            if state is None:
                continue
            query = handle.query
            expected = answer_snapshot(
                group.maintainer.pst, query.k, query.n, now_seq
            )
            if [p.uid for p in state.answer] != [p.uid for p in expected]:
                violations.append(Violation(
                    "ANS-SNAP",
                    f"continuous answer of query {query.query_id} "
                    f"diverged from the Algorithm 2 snapshot "
                    f"({len(state.answer)} vs {len(expected)} pairs)",
                    paper_ref="paper §IV-B",
                    location=f"{group_location}.query[{query.query_id}]",
                ))
    return violations


# ----------------------------------------------------------------------
# brute-force cross-check (sampled; the only super-linear checker)
# ----------------------------------------------------------------------
def brute_force_skyband(
    objects: Sequence["StreamObject"],
    scoring_function,
    K: int,
    pair_filter=None,
) -> list[Pair]:
    """The exact K-skyband of the given objects' pair set, by an
    implementation independent of Algorithm 4: sort all pairs by score
    key and count each pair's dominators with a bisect over the ages of
    every smaller-score pair.  ``O(P log P)`` for ``P = O(N^2)`` pairs —
    use only on sampled ticks."""
    pairs = [
        make_pair(objects[i], objects[j], scoring_function)
        for i in range(len(objects))
        for j in range(i + 1, len(objects))
        if pair_filter is None or pair_filter(objects[i], objects[j])
    ]
    pairs.sort(key=lambda p: p.score_key)
    ages_sorted: list[int] = []
    members: list[Pair] = []
    for pair in pairs:
        if bisect_right(ages_sorted, pair.age_key) < K:
            members.append(pair)
        insort(ages_sorted, pair.age_key)
    return members


def cross_check_monitor(monitor: "TopKPairsMonitor") -> list[Violation]:
    """Compare every group's maintained K-skyband against a brute-force
    recomputation over the current window (``O(N^2 log N)`` — sampled)."""
    violations: list[Violation] = []
    objects = monitor.manager.objects()
    for index, group in enumerate(monitor._groups.values()):
        expected = brute_force_skyband(
            objects, group.scoring_function, group.K, group.pair_filter
        )
        expected_uids = {p.uid for p in expected}
        actual_uids = {p.uid for p in group.maintainer.skyband}
        if expected_uids != actual_uids:
            missing = expected_uids - actual_uids
            extra = actual_uids - expected_uids
            violations.append(Violation(
                "SKB-BRUTE",
                f"maintained K-skyband diverged from brute force: "
                f"{len(missing)} pairs missing, {len(extra)} spurious",
                paper_ref="paper Theorems 1-2, Algorithms 3-5",
                subject=(
                    f"missing uids {sorted(missing)[:3]}, "
                    f"spurious uids {sorted(extra)[:3]}"
                ),
                location=f"group[{index}:{group.scoring_function.name}]",
            ))
    return violations


# ----------------------------------------------------------------------
# the runtime auditor
# ----------------------------------------------------------------------
class MonitorAuditor:
    """Always-on correctness net for a :class:`TopKPairsMonitor`.

    Created by the monitor itself when constructed with ``audit=True``
    (or with the ``REPRO_AUDIT=1`` environment variable set).  After
    every ``interval``-th stream tick it runs the full structural check
    suite (:func:`check_monitor`, ``O(window + skyband)``), and after
    every ``cross_check_interval``-th tick it additionally recomputes
    each K-skyband by brute force (:func:`cross_check_monitor`,
    ``O(N^2 log N)`` — keep this interval large or 0 under load).

    Violations are accumulated on :attr:`violations`; with
    ``raise_on_violation`` (the default) the offending ``append`` also
    raises :class:`~repro.exceptions.AuditViolationError`, so a broken
    invariant stops the stream at the tick that broke it instead of
    surfacing as a silently wrong answer thousands of ticks later.
    """

    def __init__(
        self,
        monitor: "TopKPairsMonitor",
        *,
        interval: int = 1,
        cross_check_interval: int = 0,
        raise_on_violation: bool = True,
    ) -> None:
        if interval < 1:
            raise ValueError(f"interval must be >= 1, got {interval}")
        if cross_check_interval < 0:
            raise ValueError(
                "cross_check_interval must be >= 0 (0 disables), got "
                f"{cross_check_interval}"
            )
        self.monitor = monitor
        self.interval = interval
        self.cross_check_interval = cross_check_interval
        self.raise_on_violation = raise_on_violation
        self.ticks = 0
        self.checks_run = 0
        self.cross_checks_run = 0
        self.violations: list[Violation] = []

    def after_tick(self) -> list[Violation]:
        """Invoked by the monitor after each ingested object; runs the
        checks due at this tick and returns any new violations."""
        self.ticks += 1
        found: list[Violation] = []
        if self.ticks % self.interval == 0:
            self.checks_run += 1
            found.extend(check_monitor(self.monitor))
        if self.cross_check_interval and \
                self.ticks % self.cross_check_interval == 0:
            self.cross_checks_run += 1
            found.extend(cross_check_monitor(self.monitor))
        if found:
            self.violations.extend(found)
            if self.raise_on_violation:
                raise AuditViolationError(found)
        return found

    def check_now(self, *, cross_check: bool = False) -> list[Violation]:
        """Run the structural checks (and optionally the brute-force
        cross-check) immediately, independent of the sampling schedule."""
        found = check_monitor(self.monitor)
        if cross_check:
            found.extend(cross_check_monitor(self.monitor))
        if found:
            self.violations.extend(found)
            if self.raise_on_violation:
                raise AuditViolationError(found)
        return found

    def __repr__(self) -> str:
        return (
            f"MonitorAuditor(ticks={self.ticks}, interval={self.interval}, "
            f"cross_check_interval={self.cross_check_interval}, "
            f"violations={len(self.violations)})"
        )


