"""Static lint pass with project-specific rules (``python -m repro lint``).

An AST-based checker tuned to the failure modes of this codebase —
dominance bookkeeping over float scores, hot-path data-structure code,
and a public API contract enforced through ``__all__``.  Rule catalogue
(full prose in ``docs/audit.md``):

========  ==============================================================
RA101     ``==`` / ``!=`` on a float score (``score`` / ``local_score``
          operands) outside a tolerance helper.  Equal raw scores are
          perturbed into a total order (paper footnote 1); comparing
          them with ``==`` reintroduces the tie bugs the perturbation
          exists to prevent.
RA102     Mutable default argument (list/dict/set literal or
          constructor call).
RA103     Public module without ``__all__``.
RA104     ``__all__`` entry that names nothing defined or imported in
          the module.
RA105     ``in <list literal>`` membership test inside a loop in a
          hot-path module (``core/``, ``structures/``) — build a set
          once instead.
RA106     ``list.insert(0, ...)`` inside a loop in a hot-path module —
          O(n) per call; use a deque or append+reverse.
RA107     Bare ``except:`` — swallows ``KeyboardInterrupt`` and hides
          the :class:`~repro.exceptions.ReproError` hierarchy.
RA108     ``time.time()`` in a hot-path module — wall-clock time is
          subject to NTP slew and has coarse resolution on some
          platforms; timings feeding the :mod:`repro.obs` metrics must
          use the monotonic ``time.perf_counter()``.
========  ==============================================================

Suppression: append ``# audit: allow[RA105] <reason>`` to the offending
line.  The reason is mandatory — a bare ``allow`` tag does not suppress.
Module-level findings (RA103/RA104 report at their ``__all__`` or at
line 1) are suppressed the same way on that line.

The pass needs nothing beyond the standard library, so it runs in CI and
pre-commit hooks without any third-party tooling; ``[tool.ruff]`` in
``pyproject.toml`` keeps external linters aligned with the same rules.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from typing import Iterable, Optional, Sequence

from dataclasses import dataclass, field

from repro.audit.report import Violation
from repro.audit.rules import RULES

__all__ = [
    "AnalysisResult",
    "HOT_PATH_PARTS",
    "RULES",
    "analyze_paths",
    "lint_file",
    "lint_function_hot",
    "lint_paths",
    "lint_source",
]

#: directory names whose modules get the hot-path rules
#: (RA105/RA106/RA108)
HOT_PATH_PARTS = frozenset({"core", "structures", "stream", "obs", "serve"})

#: identifiers treated as raw float scores by RA101 (``score_key`` and
#: friends are perturbed total-order tuples and compare exactly)
_SCORE_NAMES = frozenset({"score", "local_score", "raw_score"})

#: a function whose name matches this is a tolerance helper — the one
#: legitimate home for exact float comparisons
_TOLERANCE_RE = re.compile(r"approx|close|tolerance|almost|exact", re.I)

_MUTABLE_CALLS = frozenset({
    "list", "dict", "set", "bytearray",
    "defaultdict", "deque", "Counter", "OrderedDict",
})

_ALLOW_RE = re.compile(
    r"#\s*audit:\s*allow\[(?P<rules>[A-Z]+\d+(?:\s*,\s*[A-Z]+\d+)*)\]"
    r"\s*(?P<reason>\S.*)?$"
)


def _suppressions(source: str) -> dict[int, set[str]]:
    """Per-line suppressed rule ids (only ``allow`` tags with a reason).

    Tags are recognized in real comment tokens only — an ``allow[...]``
    quoted inside a docstring or string literal (rule documentation,
    fixture text) neither suppresses nor counts as stale for RA109.
    Unparseable files fall back to a plain line scan so a suppression
    next to a syntax error still behaves predictably.
    """
    suppressed: dict[int, set[str]] = {}

    def record(lineno: int, text: str) -> None:
        match = _ALLOW_RE.search(text)
        if match is None or not match.group("reason"):
            return
        rules = {r.strip() for r in match.group("rules").split(",")}
        suppressed.setdefault(lineno, set()).update(rules)

    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                record(token.start[0], token.string)
    except (tokenize.TokenError, SyntaxError, IndentationError):
        suppressed.clear()
        for lineno, line in enumerate(source.splitlines(), start=1):
            record(lineno, line)
    return suppressed


def _mentions_score(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return node.id in _SCORE_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in _SCORE_NAMES
    return False


def _is_mutable_literal(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set,
                         ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        return name in _MUTABLE_CALLS
    return False


def _module_bindings(body: Sequence[ast.stmt]) -> set[str]:
    """Names bound at module top level (recursing into if/try blocks)."""
    bound: set[str] = set()
    for stmt in body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            bound.add(stmt.name)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                bound.update(_target_names(target))
        elif isinstance(stmt, ast.AnnAssign):
            bound.update(_target_names(stmt.target))
        elif isinstance(stmt, ast.AugAssign):
            bound.update(_target_names(stmt.target))
        elif isinstance(stmt, ast.Import):
            for alias in stmt.names:
                bound.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(stmt, ast.ImportFrom):
            for alias in stmt.names:
                bound.add(alias.asname or alias.name)
        elif isinstance(stmt, ast.If):
            bound.update(_module_bindings(stmt.body))
            bound.update(_module_bindings(stmt.orelse))
        elif isinstance(stmt, ast.Try):
            bound.update(_module_bindings(stmt.body))
            bound.update(_module_bindings(stmt.orelse))
            bound.update(_module_bindings(stmt.finalbody))
            for handler in stmt.handlers:
                bound.update(_module_bindings(handler.body))
        elif isinstance(stmt, (ast.For, ast.While, ast.With)):
            if isinstance(stmt, ast.For):
                bound.update(_target_names(stmt.target))
            if isinstance(stmt, ast.With):
                for item in stmt.items:
                    if item.optional_vars is not None:
                        bound.update(_target_names(item.optional_vars))
            bound.update(_module_bindings(stmt.body))
    return bound


def _target_names(target: ast.expr) -> set[str]:
    if isinstance(target, ast.Name):
        return {target.id}
    if isinstance(target, (ast.Tuple, ast.List)):
        names: set[str] = set()
        for element in target.elts:
            names.update(_target_names(element))
        return names
    if isinstance(target, ast.Starred):
        return _target_names(target.value)
    return set()


def _exported_names(
    body: Sequence[ast.stmt],
) -> Optional[list[tuple[str, int, int]]]:
    """``(name, line, col)`` for every ``__all__`` entry, following
    list/tuple assignments plus ``+=`` / ``.append`` / ``.extend``
    augments; ``None`` when the module never assigns ``__all__``."""
    entries: Optional[list[tuple[str, int, int]]] = None

    def collect(value: ast.expr) -> None:
        if isinstance(value, (ast.List, ast.Tuple)):
            for element in value.elts:
                if isinstance(element, ast.Constant) \
                        and isinstance(element.value, str):
                    entries.append(
                        (element.value, element.lineno, element.col_offset)
                    )

    for stmt in body:
        if isinstance(stmt, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "__all__"
            for t in stmt.targets
        ):
            entries = [] if entries is None else entries
            collect(stmt.value)
        elif isinstance(stmt, ast.AugAssign) \
                and isinstance(stmt.target, ast.Name) \
                and stmt.target.id == "__all__":
            entries = [] if entries is None else entries
            collect(stmt.value)
        elif isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            call = stmt.value
            func = call.func
            if isinstance(func, ast.Attribute) \
                    and isinstance(func.value, ast.Name) \
                    and func.value.id == "__all__" \
                    and func.attr in ("append", "extend") and call.args:
                entries = [] if entries is None else entries
                argument = call.args[0]
                if func.attr == "append":
                    if isinstance(argument, ast.Constant) \
                            and isinstance(argument.value, str):
                        entries.append((
                            argument.value, argument.lineno,
                            argument.col_offset,
                        ))
                else:
                    collect(argument)
    return entries


class _Linter:
    """Walks one module's AST, carrying function / loop context."""

    def __init__(self, path: str, hot_path: bool) -> None:
        self.path = path
        self.hot_path = hot_path
        self.violations: list[Violation] = []
        self._function_stack: list[str] = []
        self._loop_depth = 0
        # Names the ``time`` module / function is visible under, fed by
        # the import statements seen so far (RA108).
        self._time_module_aliases: set[str] = set()
        self._time_func_aliases: set[str] = set()

    # -- reporting ------------------------------------------------------
    def report(self, rule: str, node: ast.AST, message: str) -> None:
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        self.violations.append(Violation(
            rule,
            message,
            paper_ref="docs/audit.md rule catalogue",
            location=f"{self.path}:{lineno}:{col}",
        ))

    # -- dispatch -------------------------------------------------------
    def walk(self, node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            self.visit(child)

    def visit(self, node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._check_defaults(node.args)
            self._function_stack.append(node.name)
            self.walk(node)
            self._function_stack.pop()
            return
        if isinstance(node, ast.Lambda):
            self._check_defaults(node.args)
            self.walk(node)
            return
        if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
            self._loop_depth += 1
            self.walk(node)
            self._loop_depth -= 1
            return
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "time":
                    self._time_module_aliases.add(alias.asname or "time")
        elif isinstance(node, ast.ImportFrom):
            if node.module == "time":
                for alias in node.names:
                    if alias.name == "time":
                        self._time_func_aliases.add(
                            alias.asname or alias.name
                        )
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            self.report(
                "RA107",
                node,
                "bare 'except:' also catches KeyboardInterrupt/SystemExit;"
                " catch ReproError or a concrete exception",
            )
        elif isinstance(node, ast.Compare):
            self._check_compare(node)
        elif isinstance(node, ast.Call):
            self._check_insert_front(node)
            self._check_wall_clock(node)
        self.walk(node)

    # -- individual rules ----------------------------------------------
    def _check_defaults(self, args: ast.arguments) -> None:
        defaults = list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]
        for default in defaults:
            if _is_mutable_literal(default):
                self.report(
                    "RA102",
                    default,
                    "mutable default argument is shared across calls; "
                    "default to None (or an immutable value) instead",
                )

    def _in_tolerance_helper(self) -> bool:
        return any(
            _TOLERANCE_RE.search(name) for name in self._function_stack
        )

    def _check_compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if isinstance(op, (ast.Eq, ast.NotEq)):
                if (_mentions_score(left) or _mentions_score(right)) \
                        and not self._in_tolerance_helper():
                    self.report(
                        "RA101",
                        node,
                        "raw float scores must not be compared with "
                        "== / != — compare score_key tuples or use a "
                        "tolerance helper (math.isclose / approx_equal)",
                    )
            elif isinstance(op, (ast.In, ast.NotIn)) and self.hot_path \
                    and self._loop_depth > 0 \
                    and isinstance(right, ast.List):
                self.report(
                    "RA105",
                    node,
                    "O(n) list membership inside a hot-path loop; "
                    "use a set (or frozenset constant)",
                )

    def _check_insert_front(self, node: ast.Call) -> None:
        if not (self.hot_path and self._loop_depth > 0):
            return
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "insert" \
                and len(node.args) >= 2 \
                and isinstance(node.args[0], ast.Constant) \
                and node.args[0].value == 0:
            self.report(
                "RA106",
                node,
                "list.insert(0, ...) is O(n) per call inside a hot-path "
                "loop; use collections.deque.appendleft or append then "
                "reverse",
            )

    def _check_wall_clock(self, node: ast.Call) -> None:
        if not self.hot_path:
            return
        func = node.func
        is_wall_clock = (
            isinstance(func, ast.Attribute)
            and func.attr == "time"
            and isinstance(func.value, ast.Name)
            and func.value.id in self._time_module_aliases
        ) or (
            isinstance(func, ast.Name)
            and func.id in self._time_func_aliases
        )
        if is_wall_clock:
            self.report(
                "RA108",
                node,
                "time.time() is wall-clock (NTP-slewed, coarse on some "
                "platforms); hot-path timings must use the monotonic "
                "time.perf_counter()",
            )


def _is_public_module(path: str) -> bool:
    stem = os.path.splitext(os.path.basename(path))[0]
    return not stem.startswith("_") or stem == "__init__"


def _is_hot_path(path: str) -> bool:
    parts = os.path.normpath(path).split(os.sep)
    return any(part in HOT_PATH_PARTS for part in parts[:-1])


def lint_source_raw(
    source: str,
    path: str = "<string>",
    *,
    hot_path: Optional[bool] = None,
) -> list[Violation]:
    """Like :func:`lint_source` but *without* applying ``allow``
    suppressions — the project driver (:func:`analyze_paths`) applies
    them itself so it can also detect stale ones (RA109)."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Violation(
            "RA100",
            f"file does not parse: {exc.msg}",
            location=f"{path}:{exc.lineno or 1}:{exc.offset or 0}",
        )]
    if hot_path is None:
        hot_path = _is_hot_path(path)
    linter = _Linter(path, hot_path)
    linter.walk(tree)

    exported = _exported_names(tree.body)
    if exported is None:
        if _is_public_module(path):
            linter.violations.append(Violation(
                "RA103",
                "public module must declare its API with __all__",
                paper_ref="docs/audit.md rule catalogue",
                location=f"{path}:1:0",
            ))
    else:
        bound = _module_bindings(tree.body)
        for name, lineno, col in exported:
            if name not in bound:
                linter.violations.append(Violation(
                    "RA104",
                    f"__all__ exports {name!r} but the module never "
                    "defines or imports it",
                    paper_ref="docs/audit.md rule catalogue",
                    location=f"{path}:{lineno}:{col}",
                ))
    return linter.violations


def _apply_suppressions(
    violations: Iterable[Violation],
    suppressed: dict[int, set[str]],
) -> list[Violation]:
    kept: list[Violation] = []
    for violation in violations:
        lineno = int(violation.location.rsplit(":", 2)[-2])
        if violation.rule in suppressed.get(lineno, ()):
            continue
        kept.append(violation)
    return kept


def lint_source(
    source: str,
    path: str = "<string>",
    *,
    hot_path: Optional[bool] = None,
) -> list[Violation]:
    """Lint one module's source text; returns its violations.

    ``hot_path`` forces the RA105/RA106/RA108 rules on or off; by
    default they apply when the file lives under one of the
    :data:`HOT_PATH_PARTS` directories (``core/``, ``structures/``,
    ``stream/``, ``obs/``, ``serve/``).
    """
    violations = lint_source_raw(source, path, hot_path=hot_path)
    suppressed = _suppressions(source)
    if not suppressed:
        return violations
    return _apply_suppressions(violations, suppressed)


#: the rules the project-wide hot-path propagation re-runs on
#: hot-reachable functions (everything else stays per-file).
_HOT_RULES = frozenset({"RA105", "RA106", "RA108"})


def lint_function_hot(
    node: ast.AST,
    module_tree: ast.Module,
    path: str,
) -> list[Violation]:
    """The hot-path rules (RA105/RA106/RA108) applied to one function
    node as if its file were on the hot-path list.

    ``module_tree`` supplies the surrounding module so RA108 sees
    ``import time as t`` / ``from time import time`` aliases declared
    outside the function body.
    """
    linter = _Linter(path, hot_path=True)
    for stmt in ast.walk(module_tree):
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                if alias.name == "time":
                    linter._time_module_aliases.add(alias.asname or "time")
        elif isinstance(stmt, ast.ImportFrom) and stmt.module == "time":
            for alias in stmt.names:
                if alias.name == "time":
                    linter._time_func_aliases.add(alias.asname or alias.name)
    linter.visit(node)
    return [v for v in linter.violations if v.rule in _HOT_RULES]


@dataclass
class AnalysisResult:
    """The outcome of a full project analysis.

    ``violations`` fail the lint; ``warnings`` (stale suppressions,
    RA109) are reported but never fail.
    """

    violations: list[Violation] = field(default_factory=list)
    warnings: list[Violation] = field(default_factory=list)


def _location_sort_key(violation: Violation) -> tuple:
    path, line, col = violation.location.rsplit(":", 2)
    return (path, int(line), int(col), violation.rule)


def analyze_paths(
    paths: Iterable[str],
    *,
    project: bool = True,
) -> AnalysisResult:
    """The full analysis: per-file rules plus (when ``project`` is
    true) the cross-module passes — call-graph hot-path propagation
    (RA105/106/108 in hot-*reachable* functions), the async-safety
    family (RA201–RA205) and protocol conformance (RA301).

    ``allow`` suppressions apply uniformly to every family, and any
    suppression that matches no finding becomes an RA109 warning.
    """
    from repro.audit.asynccheck import async_violations
    from repro.audit.callgraph import (
        build_project,
        collect_python_files,
        hot_path_violations,
    )
    from repro.audit.conformance import conformance_violations

    files = collect_python_files(paths)
    sources: dict[str, str] = {}
    raw: list[Violation] = []
    suppressions: dict[str, dict[int, set[str]]] = {}
    for path in files:
        with open(path, encoding="utf-8") as handle:
            source = handle.read()
        sources[path] = source
        raw.extend(lint_source_raw(source, path))
        marks = _suppressions(source)
        if marks:
            suppressions[path] = marks

    if project:
        graph = build_project(files, sources=sources)
        raw.extend(hot_path_violations(graph))
        raw.extend(async_violations(graph))
        raw.extend(conformance_violations(graph))

    used: set[tuple[str, int, str]] = set()
    kept: list[Violation] = []
    for violation in raw:
        path, line, _col = violation.location.rsplit(":", 2)
        lineno = int(line)
        if violation.rule in suppressions.get(path, {}).get(lineno, ()):
            used.add((path, lineno, violation.rule))
            continue
        kept.append(violation)

    warnings: list[Violation] = []
    for path, marks in suppressions.items():
        for lineno, rules in marks.items():
            for rule in sorted(rules):
                if (path, lineno, rule) not in used:
                    warnings.append(Violation(
                        "RA109",
                        f"stale suppression: allow[{rule}] matches no "
                        "finding on this line — delete it or narrow the "
                        "rule list",
                        paper_ref="docs/audit.md rule catalogue",
                        location=f"{path}:{lineno}:0",
                    ))

    kept.sort(key=_location_sort_key)
    warnings.sort(key=_location_sort_key)
    return AnalysisResult(kept, warnings)


def lint_file(path: str) -> list[Violation]:
    """Lint one ``.py`` file from disk."""
    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    return lint_source(source, path)


def lint_paths(paths: Iterable[str]) -> list[Violation]:
    """Lint files and directory trees; directories are walked for
    ``*.py`` files (skipping ``__pycache__``).  Violations come back
    sorted by location for stable output."""
    files: list[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d != "__pycache__"
                )
                files.extend(
                    os.path.join(dirpath, name)
                    for name in sorted(filenames)
                    if name.endswith(".py")
                )
        else:
            files.append(path)
    violations: list[Violation] = []
    for path in files:
        violations.extend(lint_file(path))
    return violations
