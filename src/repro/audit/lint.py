"""Static lint pass with project-specific rules (``python -m repro lint``).

An AST-based checker tuned to the failure modes of this codebase —
dominance bookkeeping over float scores, hot-path data-structure code,
and a public API contract enforced through ``__all__``.  Rule catalogue
(full prose in ``docs/audit.md``):

========  ==============================================================
RA101     ``==`` / ``!=`` on a float score (``score`` / ``local_score``
          operands) outside a tolerance helper.  Equal raw scores are
          perturbed into a total order (paper footnote 1); comparing
          them with ``==`` reintroduces the tie bugs the perturbation
          exists to prevent.
RA102     Mutable default argument (list/dict/set literal or
          constructor call).
RA103     Public module without ``__all__``.
RA104     ``__all__`` entry that names nothing defined or imported in
          the module.
RA105     ``in <list literal>`` membership test inside a loop in a
          hot-path module (``core/``, ``structures/``) — build a set
          once instead.
RA106     ``list.insert(0, ...)`` inside a loop in a hot-path module —
          O(n) per call; use a deque or append+reverse.
RA107     Bare ``except:`` — swallows ``KeyboardInterrupt`` and hides
          the :class:`~repro.exceptions.ReproError` hierarchy.
RA108     ``time.time()`` in a hot-path module — wall-clock time is
          subject to NTP slew and has coarse resolution on some
          platforms; timings feeding the :mod:`repro.obs` metrics must
          use the monotonic ``time.perf_counter()``.
========  ==============================================================

Suppression: append ``# audit: allow[RA105] <reason>`` to the offending
line.  The reason is mandatory — a bare ``allow`` tag does not suppress.
Module-level findings (RA103/RA104 report at their ``__all__`` or at
line 1) are suppressed the same way on that line.

The pass needs nothing beyond the standard library, so it runs in CI and
pre-commit hooks without any third-party tooling; ``[tool.ruff]`` in
``pyproject.toml`` keeps external linters aligned with the same rules.
"""

from __future__ import annotations

import ast
import os
import re
from typing import Iterable, Optional, Sequence

from repro.audit.report import Violation

__all__ = [
    "HOT_PATH_PARTS",
    "RULES",
    "lint_file",
    "lint_paths",
    "lint_source",
]

RULES = {
    "RA100": "file does not parse",
    "RA101": "float score compared with == / != outside a tolerance helper",
    "RA102": "mutable default argument",
    "RA103": "public module does not define __all__",
    "RA104": "__all__ names an undefined attribute",
    "RA105": "list-literal membership test inside a hot-path loop",
    "RA106": "list.insert(0, ...) inside a hot-path loop",
    "RA107": "bare except:",
    "RA108": "time.time() in a hot-path module (use time.perf_counter)",
}

#: directory names whose modules get the hot-path rules
#: (RA105/RA106/RA108)
HOT_PATH_PARTS = frozenset({"core", "structures", "stream", "obs", "serve"})

#: identifiers treated as raw float scores by RA101 (``score_key`` and
#: friends are perturbed total-order tuples and compare exactly)
_SCORE_NAMES = frozenset({"score", "local_score", "raw_score"})

#: a function whose name matches this is a tolerance helper — the one
#: legitimate home for exact float comparisons
_TOLERANCE_RE = re.compile(r"approx|close|tolerance|almost|exact", re.I)

_MUTABLE_CALLS = frozenset({
    "list", "dict", "set", "bytearray",
    "defaultdict", "deque", "Counter", "OrderedDict",
})

_ALLOW_RE = re.compile(
    r"#\s*audit:\s*allow\[(?P<rules>[A-Z]+\d+(?:\s*,\s*[A-Z]+\d+)*)\]"
    r"\s*(?P<reason>\S.*)?$"
)


def _suppressions(source: str) -> dict[int, set[str]]:
    """Per-line suppressed rule ids (only ``allow`` tags with a reason)."""
    suppressed: dict[int, set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _ALLOW_RE.search(line)
        if match is None or not match.group("reason"):
            continue
        rules = {r.strip() for r in match.group("rules").split(",")}
        suppressed.setdefault(lineno, set()).update(rules)
    return suppressed


def _mentions_score(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return node.id in _SCORE_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in _SCORE_NAMES
    return False


def _is_mutable_literal(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set,
                         ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        return name in _MUTABLE_CALLS
    return False


def _module_bindings(body: Sequence[ast.stmt]) -> set[str]:
    """Names bound at module top level (recursing into if/try blocks)."""
    bound: set[str] = set()
    for stmt in body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            bound.add(stmt.name)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                bound.update(_target_names(target))
        elif isinstance(stmt, ast.AnnAssign):
            bound.update(_target_names(stmt.target))
        elif isinstance(stmt, ast.AugAssign):
            bound.update(_target_names(stmt.target))
        elif isinstance(stmt, ast.Import):
            for alias in stmt.names:
                bound.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(stmt, ast.ImportFrom):
            for alias in stmt.names:
                bound.add(alias.asname or alias.name)
        elif isinstance(stmt, ast.If):
            bound.update(_module_bindings(stmt.body))
            bound.update(_module_bindings(stmt.orelse))
        elif isinstance(stmt, ast.Try):
            bound.update(_module_bindings(stmt.body))
            bound.update(_module_bindings(stmt.orelse))
            bound.update(_module_bindings(stmt.finalbody))
            for handler in stmt.handlers:
                bound.update(_module_bindings(handler.body))
        elif isinstance(stmt, (ast.For, ast.While, ast.With)):
            if isinstance(stmt, ast.For):
                bound.update(_target_names(stmt.target))
            if isinstance(stmt, ast.With):
                for item in stmt.items:
                    if item.optional_vars is not None:
                        bound.update(_target_names(item.optional_vars))
            bound.update(_module_bindings(stmt.body))
    return bound


def _target_names(target: ast.expr) -> set[str]:
    if isinstance(target, ast.Name):
        return {target.id}
    if isinstance(target, (ast.Tuple, ast.List)):
        names: set[str] = set()
        for element in target.elts:
            names.update(_target_names(element))
        return names
    if isinstance(target, ast.Starred):
        return _target_names(target.value)
    return set()


def _exported_names(
    body: Sequence[ast.stmt],
) -> Optional[list[tuple[str, int, int]]]:
    """``(name, line, col)`` for every ``__all__`` entry, following
    list/tuple assignments plus ``+=`` / ``.append`` / ``.extend``
    augments; ``None`` when the module never assigns ``__all__``."""
    entries: Optional[list[tuple[str, int, int]]] = None

    def collect(value: ast.expr) -> None:
        if isinstance(value, (ast.List, ast.Tuple)):
            for element in value.elts:
                if isinstance(element, ast.Constant) \
                        and isinstance(element.value, str):
                    entries.append(
                        (element.value, element.lineno, element.col_offset)
                    )

    for stmt in body:
        if isinstance(stmt, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "__all__"
            for t in stmt.targets
        ):
            entries = [] if entries is None else entries
            collect(stmt.value)
        elif isinstance(stmt, ast.AugAssign) \
                and isinstance(stmt.target, ast.Name) \
                and stmt.target.id == "__all__":
            entries = [] if entries is None else entries
            collect(stmt.value)
        elif isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            call = stmt.value
            func = call.func
            if isinstance(func, ast.Attribute) \
                    and isinstance(func.value, ast.Name) \
                    and func.value.id == "__all__" \
                    and func.attr in ("append", "extend") and call.args:
                entries = [] if entries is None else entries
                argument = call.args[0]
                if func.attr == "append":
                    if isinstance(argument, ast.Constant) \
                            and isinstance(argument.value, str):
                        entries.append((
                            argument.value, argument.lineno,
                            argument.col_offset,
                        ))
                else:
                    collect(argument)
    return entries


class _Linter:
    """Walks one module's AST, carrying function / loop context."""

    def __init__(self, path: str, hot_path: bool) -> None:
        self.path = path
        self.hot_path = hot_path
        self.violations: list[Violation] = []
        self._function_stack: list[str] = []
        self._loop_depth = 0
        # Names the ``time`` module / function is visible under, fed by
        # the import statements seen so far (RA108).
        self._time_module_aliases: set[str] = set()
        self._time_func_aliases: set[str] = set()

    # -- reporting ------------------------------------------------------
    def report(self, rule: str, node: ast.AST, message: str) -> None:
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        self.violations.append(Violation(
            rule,
            message,
            paper_ref="docs/audit.md rule catalogue",
            location=f"{self.path}:{lineno}:{col}",
        ))

    # -- dispatch -------------------------------------------------------
    def walk(self, node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            self.visit(child)

    def visit(self, node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._check_defaults(node.args)
            self._function_stack.append(node.name)
            self.walk(node)
            self._function_stack.pop()
            return
        if isinstance(node, ast.Lambda):
            self._check_defaults(node.args)
            self.walk(node)
            return
        if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
            self._loop_depth += 1
            self.walk(node)
            self._loop_depth -= 1
            return
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "time":
                    self._time_module_aliases.add(alias.asname or "time")
        elif isinstance(node, ast.ImportFrom):
            if node.module == "time":
                for alias in node.names:
                    if alias.name == "time":
                        self._time_func_aliases.add(
                            alias.asname or alias.name
                        )
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            self.report(
                "RA107",
                node,
                "bare 'except:' also catches KeyboardInterrupt/SystemExit;"
                " catch ReproError or a concrete exception",
            )
        elif isinstance(node, ast.Compare):
            self._check_compare(node)
        elif isinstance(node, ast.Call):
            self._check_insert_front(node)
            self._check_wall_clock(node)
        self.walk(node)

    # -- individual rules ----------------------------------------------
    def _check_defaults(self, args: ast.arguments) -> None:
        defaults = list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]
        for default in defaults:
            if _is_mutable_literal(default):
                self.report(
                    "RA102",
                    default,
                    "mutable default argument is shared across calls; "
                    "default to None (or an immutable value) instead",
                )

    def _in_tolerance_helper(self) -> bool:
        return any(
            _TOLERANCE_RE.search(name) for name in self._function_stack
        )

    def _check_compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if isinstance(op, (ast.Eq, ast.NotEq)):
                if (_mentions_score(left) or _mentions_score(right)) \
                        and not self._in_tolerance_helper():
                    self.report(
                        "RA101",
                        node,
                        "raw float scores must not be compared with "
                        "== / != — compare score_key tuples or use a "
                        "tolerance helper (math.isclose / approx_equal)",
                    )
            elif isinstance(op, (ast.In, ast.NotIn)) and self.hot_path \
                    and self._loop_depth > 0 \
                    and isinstance(right, ast.List):
                self.report(
                    "RA105",
                    node,
                    "O(n) list membership inside a hot-path loop; "
                    "use a set (or frozenset constant)",
                )

    def _check_insert_front(self, node: ast.Call) -> None:
        if not (self.hot_path and self._loop_depth > 0):
            return
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "insert" \
                and len(node.args) >= 2 \
                and isinstance(node.args[0], ast.Constant) \
                and node.args[0].value == 0:
            self.report(
                "RA106",
                node,
                "list.insert(0, ...) is O(n) per call inside a hot-path "
                "loop; use collections.deque.appendleft or append then "
                "reverse",
            )

    def _check_wall_clock(self, node: ast.Call) -> None:
        if not self.hot_path:
            return
        func = node.func
        is_wall_clock = (
            isinstance(func, ast.Attribute)
            and func.attr == "time"
            and isinstance(func.value, ast.Name)
            and func.value.id in self._time_module_aliases
        ) or (
            isinstance(func, ast.Name)
            and func.id in self._time_func_aliases
        )
        if is_wall_clock:
            self.report(
                "RA108",
                node,
                "time.time() is wall-clock (NTP-slewed, coarse on some "
                "platforms); hot-path timings must use the monotonic "
                "time.perf_counter()",
            )


def _is_public_module(path: str) -> bool:
    stem = os.path.splitext(os.path.basename(path))[0]
    return not stem.startswith("_") or stem == "__init__"


def _is_hot_path(path: str) -> bool:
    parts = os.path.normpath(path).split(os.sep)
    return any(part in HOT_PATH_PARTS for part in parts[:-1])


def lint_source(
    source: str,
    path: str = "<string>",
    *,
    hot_path: Optional[bool] = None,
) -> list[Violation]:
    """Lint one module's source text; returns its violations.

    ``hot_path`` forces the RA105/RA106/RA108 rules on or off; by
    default they apply when the file lives under one of the
    :data:`HOT_PATH_PARTS` directories (``core/``, ``structures/``,
    ``stream/``, ``obs/``, ``serve/``).
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Violation(
            "RA100",
            f"file does not parse: {exc.msg}",
            location=f"{path}:{exc.lineno or 1}:{exc.offset or 0}",
        )]
    if hot_path is None:
        hot_path = _is_hot_path(path)
    linter = _Linter(path, hot_path)
    linter.walk(tree)

    exported = _exported_names(tree.body)
    if exported is None:
        if _is_public_module(path):
            linter.violations.append(Violation(
                "RA103",
                "public module must declare its API with __all__",
                paper_ref="docs/audit.md rule catalogue",
                location=f"{path}:1:0",
            ))
    else:
        bound = _module_bindings(tree.body)
        for name, lineno, col in exported:
            if name not in bound:
                linter.violations.append(Violation(
                    "RA104",
                    f"__all__ exports {name!r} but the module never "
                    "defines or imports it",
                    paper_ref="docs/audit.md rule catalogue",
                    location=f"{path}:{lineno}:{col}",
                ))

    suppressed = _suppressions(source)
    if not suppressed:
        return linter.violations
    kept: list[Violation] = []
    for violation in linter.violations:
        lineno = int(violation.location.rsplit(":", 2)[-2])
        if violation.rule in suppressed.get(lineno, ()):
            continue
        kept.append(violation)
    return kept


def lint_file(path: str) -> list[Violation]:
    """Lint one ``.py`` file from disk."""
    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    return lint_source(source, path)


def lint_paths(paths: Iterable[str]) -> list[Violation]:
    """Lint files and directory trees; directories are walked for
    ``*.py`` files (skipping ``__pycache__``).  Violations come back
    sorted by location for stable output."""
    files: list[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d != "__pycache__"
                )
                files.extend(
                    os.path.join(dirpath, name)
                    for name in sorted(filenames)
                    if name.endswith(".py")
                )
        else:
            files.append(path)
    violations: list[Violation] = []
    for path in files:
        violations.extend(lint_file(path))
    return violations
