"""Structured audit findings.

Both halves of :mod:`repro.audit` — the runtime invariant verifier
(:mod:`repro.audit.invariants`) and the static lint pass
(:mod:`repro.audit.lint`) — report their findings as :class:`Violation`
records instead of raising on first failure.  A record names the rule or
invariant that broke, cites the paper section the invariant comes from
(runtime checks) or the rule catalogue entry (lint checks, see
``docs/audit.md``), points at the offending node / pair / source line,
and carries a human-readable message.  Collecting *all* findings in one
pass makes the checkers usable both as hard assertions (raise when the
list is non-empty) and as diagnostics (print the full report).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = ["Violation", "format_violations", "summarize"]


@dataclass(frozen=True)
class Violation:
    """One broken invariant or lint rule.

    Attributes
    ----------
    rule:
        Stable identifier — ``"PST-HEAP"``-style for runtime invariants,
        ``"RA1xx"`` for lint rules (catalogue in ``docs/audit.md``).
    message:
        What is wrong, in one sentence.
    paper_ref:
        The paper section / theorem the invariant realizes (empty for
        lint findings).
    subject:
        ``repr`` of the offending node, pair or structure (runtime), or
        the offending source snippet (lint).
    location:
        Where: ``path:line:col`` for lint findings, a structure path
        (e.g. ``"pst"``, ``"attribute_list[2]"``) for runtime findings.
    """

    rule: str
    message: str
    paper_ref: str = ""
    subject: str = ""
    location: str = ""

    def __str__(self) -> str:
        parts = []
        if self.location:
            parts.append(f"{self.location}:")
        parts.append(self.rule)
        parts.append(self.message)
        text = " ".join(parts)
        extras = []
        if self.paper_ref:
            extras.append(self.paper_ref)
        if self.subject:
            extras.append(f"subject: {self.subject}")
        if extras:
            text += f" ({'; '.join(extras)})"
        return text


def format_violations(violations: Iterable[Violation]) -> str:
    """One violation per line, ready for terminal output."""
    return "\n".join(str(v) for v in violations)


def summarize(violations: Sequence[Violation]) -> str:
    """A one-line summary: total count plus per-rule breakdown."""
    if not violations:
        return "no violations"
    by_rule: dict[str, int] = {}
    for violation in violations:
        by_rule[violation.rule] = by_rule.get(violation.rule, 0) + 1
    breakdown = ", ".join(
        f"{rule} x{count}" for rule, count in sorted(by_rule.items())
    )
    noun = "violation" if len(violations) == 1 else "violations"
    return f"{len(violations)} {noun} ({breakdown})"
