"""The lint rule catalogue — one source of truth for every consumer.

Every static rule the audit subsystem can fire is described once, here,
as a :class:`RuleInfo` record: identifier, one-line title, the rationale
(why the pattern is a bug in *this* codebase), a minimal triggering
example and the idiomatic fix.  Three consumers render the same records:

* ``python -m repro lint --explain RAxxx`` (:func:`explain_rule`),
* the generated catalogue block in ``docs/audit.md``
  (:func:`render_markdown`; a regression test pins the docs to this
  output, so the two can never drift), and
* the SARIF emitter (:mod:`repro.audit.emit`), which ships the titles
  as SARIF rule metadata.

Rule families:

* **RA1xx** — per-file rules (:mod:`repro.audit.lint`): float-score
  equality, mutable defaults, ``__all__`` hygiene, hot-path
  anti-patterns, bare ``except``, wall-clock timings, stale
  suppressions.
* **RA2xx** — async-safety rules (:mod:`repro.audit.asynccheck`) over a
  per-function CFG with await-point segmentation, powered by the
  project-wide call graph (:mod:`repro.audit.callgraph`).
* **RA3xx** — cross-module protocol conformance
  (:mod:`repro.audit.conformance`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = [
    "CATALOG",
    "RULES",
    "RuleInfo",
    "explain_rule",
    "render_markdown",
    "rule_info",
]


@dataclass(frozen=True)
class RuleInfo:
    """One catalogued rule.

    Attributes
    ----------
    id:
        Stable identifier (``"RA105"``).
    title:
        One-line summary (what fires).
    rationale:
        Why the pattern is a defect in this codebase.
    example:
        A minimal triggering snippet (used verbatim by fixture tests).
    fix:
        The idiomatic correction.
    kind:
        ``"error"`` (fails the lint) or ``"warning"`` (reported, never
        fails).
    scope:
        ``"file"`` for single-module rules, ``"project"`` for rules
        needing the cross-module analyzer.
    """

    id: str
    title: str
    rationale: str
    example: str
    fix: str
    kind: str = "error"
    scope: str = "file"


CATALOG: tuple[RuleInfo, ...] = (
    RuleInfo(
        "RA100",
        "file does not parse",
        "Every other rule needs an AST; a syntax error masks all of "
        "them, so it is reported as its own finding.",
        "def broken(:\n    pass\n",
        "Fix the syntax error.",
    ),
    RuleInfo(
        "RA101",
        "float score compared with == / != outside a tolerance helper",
        "Equal raw scores are perturbed into a total order (paper "
        "footnote 1); comparing `score`/`local_score`/`raw_score` "
        "operands with `==` reintroduces exactly the tie bugs the "
        "perturbation exists to prevent.",
        "def same(pair, other):\n    return pair.score == other.score\n",
        "Compare `score_key` tuples, or use a tolerance helper "
        "(`math.isclose`, a function named `approx*`/`*close*`).",
    ),
    RuleInfo(
        "RA102",
        "mutable default argument",
        "A list/dict/set default is evaluated once and shared across "
        "every call — a classic silent-corruption source.",
        "def push(item, out=[]):\n    out.append(item)\n    return out\n",
        "Default to `None` (or an immutable value) and allocate inside "
        "the function.",
    ),
    RuleInfo(
        "RA103",
        "public module does not define __all__",
        "The API surface is a tested contract "
        "(`tests/test_public_api.py`); a module without `__all__` "
        "leaks internals through `from module import *`.",
        "def api():\n    return 1\n",
        "Declare `__all__` listing the public names.",
    ),
    RuleInfo(
        "RA104",
        "__all__ names an undefined attribute",
        "A stale export breaks `from repro import *` and the public "
        "API tests.",
        '__all__ = ["missing"]\n',
        "Remove the stale entry or define/import the name.",
    ),
    RuleInfo(
        "RA105",
        "list-literal membership test inside a hot-path loop",
        "`x in [a, b, c]` is O(n) per evaluation; inside a hot-path "
        "loop that multiplies into the per-tick budget.",
        "def scan(items):\n"
        "    for item in items:\n"
        "        if item in [1, 2, 3]:\n"
        "            return item\n",
        "Build a `set`/`frozenset` constant once and test against it.",
    ),
    RuleInfo(
        "RA106",
        "list.insert(0, ...) inside a hot-path loop",
        "Front-insertion shifts the whole list — O(n) per call, O(n²) "
        "per loop.",
        "def rev(items, out):\n"
        "    for item in items:\n"
        "        out.insert(0, item)\n",
        "Use `collections.deque.appendleft`, or append then reverse "
        "once.",
    ),
    RuleInfo(
        "RA107",
        "bare except:",
        "A bare `except:` swallows `KeyboardInterrupt`/`SystemExit` "
        "and hides the `ReproError` hierarchy.",
        "def f():\n    try:\n        return 1\n    except:\n"
        "        return 2\n",
        "Catch `ReproError` or a concrete exception type.",
    ),
    RuleInfo(
        "RA108",
        "time.time() in a hot-path module (use time.perf_counter)",
        "Wall-clock time is NTP-slewed and coarse on some platforms; "
        "timings feeding the `repro.obs` metrics must use the "
        "monotonic `time.perf_counter()`.  Any import alias is "
        "caught, including `from time import time`.",
        "import time\n\ndef stamp():\n    return time.time()\n",
        "Use `time.perf_counter()` (or suppress with a reason when a "
        "real epoch timestamp is required, e.g. file metadata).",
    ),
    RuleInfo(
        "RA109",
        "stale suppression: allow tag matches no finding",
        "An `# audit: allow[...]` comment whose rule no longer fires "
        "on that line is dead weight — it hides nothing today but "
        "will silently swallow a future regression on that line.",
        "x = 1  # audit: allow[RA105] once suppressed a real finding\n",
        "Delete the stale tag (or narrow its rule list).",
        kind="warning",
    ),
    RuleInfo(
        "RA201",
        "blocking call inside async def",
        "A blocking call (`time.sleep`, sync file/socket I/O, "
        "`subprocess`) on the event loop stalls *every* connection — "
        "the many-subscribers-one-stream shape multiplies one blocked "
        "handler into global head-of-line blocking.  The call graph "
        "propagates through sync helpers, so blocking I/O buried two "
        "calls deep is still reported at the async frame that "
        "reaches it.",
        "import time\n\nasync def handler():\n    time.sleep(1.0)\n",
        "Use the async equivalent (`asyncio.sleep`, stream APIs), or "
        "push the blocking section through "
        "`loop.run_in_executor(...)`.",
        scope="project",
    ),
    RuleInfo(
        "RA202",
        "shared state mutated on both sides of an await without a lock",
        "An `await` is a scheduling point: another handler can run and "
        "observe (or race) the half-updated `self.`/module-level "
        "state.  The paper's structures (skyband, staircase, PST) "
        "assume a single writer per tick — interleaved mutation "
        "violates that silently.",
        "async def update(self, item):\n"
        "    self.pending.append(item)\n"
        "    await self.flush()\n"
        "    self.pending.pop()\n",
        "Finish all shared-state mutation before the first await (or "
        "hold an `asyncio.Lock` across the critical section).",
        scope="project",
    ),
    RuleInfo(
        "RA203",
        "fire-and-forget task: create_task/ensure_future result dropped",
        "A task whose reference is discarded can be garbage-collected "
        "mid-flight, and its exception is never retrieved — failures "
        "vanish into 'Task exception was never retrieved' log spam "
        "(or silence).",
        "import asyncio\n\nasync def kick(coro):\n"
        "    asyncio.ensure_future(coro)\n",
        "Keep a reference (e.g. add to a task set with a done-callback "
        "that retrieves the exception), or await the task.",
        scope="project",
    ),
    RuleInfo(
        "RA204",
        "lock held across await of an unbounded operation",
        "Awaiting an unbounded operation (queue put/get, socket "
        "read/drain, bare wait) while holding a lock turns one slow "
        "peer into a deadlock for every other handler queued on the "
        "lock.",
        "async def deliver(self, item):\n"
        "    async with self.lock:\n"
        "        await self.queue.put(item)\n",
        "Shrink the critical section: copy the state under the lock, "
        "release it, then await the slow operation.",
        scope="project",
    ),
    RuleInfo(
        "RA205",
        "coroutine called but never awaited",
        "Calling an `async def` without awaiting it creates a "
        "coroutine object and throws it away — the body never runs "
        "and Python only warns at garbage-collection time, far from "
        "the bug.",
        "async def step():\n    ...\n\n"
        "async def tick():\n    step()\n",
        "Add `await` (or wrap in `asyncio.create_task(...)` and keep "
        "the reference).",
        scope="project",
    ),
    RuleInfo(
        "RA301",
        "protocol frame type without server handler and client encoder",
        "Every op declared in `serve/protocol.py` must have a matching "
        "`_op_<name>` server handler and a client-side encoder — a "
        "declared-but-unhandled frame is a wire error waiting for the "
        "first client that sends it, and an undeclared handler is "
        "unreachable dead code.",
        'OPS = ("ingest", "ghost")\n'
        "# server defines _op_ingest only; no client sends \"ghost\"\n",
        "Add the missing `_op_<name>` handler / client encoder, or "
        "drop the op from `OPS`.",
        scope="project",
    ),
)

_BY_ID = {rule.id: rule for rule in CATALOG}

#: backward-compatible ``id -> title`` mapping (the shape the original
#: per-file pass exposed as ``repro.audit.lint.RULES``).
RULES = {rule.id: rule.title for rule in CATALOG}


def rule_info(rule_id: str) -> Optional[RuleInfo]:
    """The catalogue record for ``rule_id`` (``None`` when unknown)."""
    return _BY_ID.get(rule_id.strip().upper())


def explain_rule(rule_id: str) -> Optional[str]:
    """The ``--explain`` text for one rule (``None`` when unknown)."""
    rule = rule_info(rule_id)
    if rule is None:
        return None
    lines = [
        f"{rule.id}: {rule.title}",
        f"severity: {rule.kind} · scope: {rule.scope}",
        "",
        "Why:",
        f"  {rule.rationale}",
        "",
        "Example (fires):",
    ]
    lines.extend(f"  {line}" for line in rule.example.rstrip("\n").split("\n"))
    lines.extend(["", "Fix:", f"  {rule.fix}"])
    return "\n".join(lines)


def render_markdown() -> str:
    """The full catalogue as markdown — the exact block embedded in
    ``docs/audit.md`` between the ``RULES:BEGIN``/``RULES:END`` markers
    (a test diffs the two, so the docs can never drift from the code).
    """
    out: list[str] = []
    for rule in CATALOG:
        out.append(f"### `{rule.id}` — {rule.title}")
        out.append("")
        out.append(f"*{rule.kind}, {rule.scope} scope.* {rule.rationale}")
        out.append("")
        out.append("```python")
        out.extend(rule.example.rstrip("\n").split("\n"))
        out.append("```")
        out.append("")
        out.append(f"**Fix:** {rule.fix}")
        out.append("")
    return "\n".join(out).rstrip("\n") + "\n"
