"""The paper's competitor algorithms: naive/naive++ (§VI-B),
supreme/supreme++ (§VI-B), linear query answering (§VI-C) and the basic
no-staircase maintainer (§VI-D), plus the brute-force test reference."""

from repro.baselines.basic import BasicMaintainer
from repro.baselines.brute import BruteForceReference
from repro.baselines.linear import linear_top_k
from repro.baselines.naive import NaiveAlgorithm
from repro.baselines.supreme import SupremeAlgorithm

__all__ = [
    "BasicMaintainer",
    "BruteForceReference",
    "NaiveAlgorithm",
    "SupremeAlgorithm",
    "linear_top_k",
]
