"""The "basic" maintenance competitor (paper §VI-D).

Algorithm 3 *without* the K-staircase: every new pair is dominance-checked
by counting its dominators directly against the current K-skyband.  The
paper embeds "all applicable optimizations (e.g., dominance counter)" of
the earlier k-skyband stream techniques [8], [12]; here that means:

* only skyband pairs with a strictly smaller score key can dominate, so
  the scan covers just the score-sorted prefix up to the new pair's score
  (located by binary search), and
* the scan early-exits as soon as K dominators are found.

Worst-case cost per pair is ``O(|SKB|)`` versus the staircase's
``O(log |SKB|)`` — the gap Fig 12 measures.
"""

from __future__ import annotations

from bisect import bisect_left

from repro.core.maintenance import SkybandMaintainer
from repro.core.pair import Pair, make_pair
from repro.stream.manager import StreamManager
from repro.stream.object import StreamObject

__all__ = ["BasicMaintainer"]


class BasicMaintainer(SkybandMaintainer):
    """Skyband maintenance by direct dominance counting."""

    def _collect_candidates(
        self, manager: StreamManager, new_obj: StreamObject
    ) -> list[Pair]:
        candidates: list[Pair] = []
        keep = self.pair_filter
        for partner in manager:
            if partner.seq >= new_obj.seq:
                continue  # intra-batch pairs belong to their newer member
            if keep is not None and not keep(new_obj, partner):
                continue
            pair = make_pair(new_obj, partner, self.scoring_function,
                             self.counters)
            if self.counters is not None:
                self.counters.pairs_considered += 1
            if not self._dominated_by_skyband(pair):
                candidates.append(pair)
                if self.counters is not None:
                    self.counters.candidate_pairs += 1
        return candidates

    def _dominated_by_skyband(self, pair: Pair) -> bool:
        """Count skyband dominators of ``pair``, early-exiting at K."""
        prefix_end = bisect_left(self._score_keys, pair.score_key)
        dominators = 0
        counters = self.counters
        for i in range(prefix_end):
            if counters is not None:
                counters.dominance_checks += 1
            if self._skyband[i].age_key <= pair.age_key:
                dominators += 1
                if dominators >= self.K:
                    return True
        return False
