"""Brute-force reference implementation.

Keeps every window object and answers queries by scoring *all*
``O(n^2)`` in-window pairs.  This is the ground truth the test suite
checks every other algorithm against, and the starting point the paper's
§VI-B dismisses ("maintain all O(N^2) pairs ... too slow").
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

from repro.core.pair import Pair
from repro.scoring.base import ScoringFunction
from repro.stream.object import StreamObject

__all__ = ["BruteForceReference"]


class BruteForceReference:
    """Ground-truth top-k pairs over a count-based window."""

    def __init__(self, scoring_function: ScoringFunction, window_size: int,
                 *, pair_filter=None) -> None:
        self.scoring_function = scoring_function
        self.window_size = window_size
        self.pair_filter = pair_filter
        self._window: deque[StreamObject] = deque()
        self._next_seq = 1

    @property
    def now_seq(self) -> int:
        return self._next_seq - 1

    def append(self, values: Sequence[float]) -> StreamObject:
        obj = StreamObject(self._next_seq, values)
        self._next_seq += 1
        self._window.append(obj)
        while len(self._window) > self.window_size:
            self._window.popleft()
        return obj

    def all_pairs(self, n: int | None = None) -> list[Pair]:
        """Every in-window pair, scored, in ascending score order."""
        n = self.window_size if n is None else n
        objects = [
            o for o in self._window if o.age(self.now_seq) <= n
        ]
        # Pairs must also satisfy the *pair* age bound, which equals the
        # older member's age — already enforced by filtering objects.
        keep = self.pair_filter
        pairs = [
            Pair(a, b, self.scoring_function.score(a, b))
            for i, a in enumerate(objects)
            for b in objects[i + 1:]
            if keep is None or keep(a, b)
        ]
        pairs.sort(key=lambda p: p.score_key)
        return pairs

    def top_k(self, k: int, n: int | None = None) -> list[Pair]:
        """The exact top-k pairs in the window of size ``n``."""
        return self.all_pairs(n)[:k]

    def skyband(self, K: int) -> list[Pair]:
        """The exact K-skyband by O(P^2) dominance counting."""
        pairs = self.all_pairs()
        members: list[Pair] = []
        for p in pairs:
            dominators = sum(
                1
                for q in pairs
                if q.score_key < p.score_key and q.age_key <= p.age_key
            )
            if dominators < K:
                members.append(p)
        return members
