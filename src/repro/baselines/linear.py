"""The "linear" query answering competitor (paper §VI-C.1).

Scans the K-skyband in ascending score order, skipping pairs outside the
query window, and stops after ``k`` hits — ``O(|SKB|)`` worst case versus
Algorithm 2's ``O(log |SKB| + k)``.  When ``n`` is close to ``N`` almost
every scanned pair is a hit, so this scan degenerates to ``O(k)`` and can
even beat the PST traversal (paper Fig 10(d)); the benchmarks reproduce
that crossover.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.cost_model import Counters
from repro.core.pair import Pair

__all__ = ["linear_top_k"]


def linear_top_k(
    skyband_by_score: Sequence[Pair],
    k: int,
    n: int,
    now_seq: int,
    *,
    counters: Optional[Counters] = None,
) -> list[Pair]:
    """Top-``k`` in-window pairs by a linear scan of the skyband."""
    answer: list[Pair] = []
    for pair in skyband_by_score:
        if counters is not None:
            counters.answer_scans += 1
        if pair.in_window(now_seq, n):
            answer.append(pair)
            if len(answer) == k:
                break
    return answer
