"""The "naive" competitor (paper §VI-B).

The first naive idea — keep all ``O(N^2)`` pairs sorted — is dismissed by
the paper as too slow and too large.  The evaluated naive uses ``O(KN)``
space instead:

* for each newly arrived object, compute its K best pairs over the older
  window partners and keep them (every globally top-``k<=K`` pair is among
  the K best pairs of its *newer* member, so this is exact for ``n = N``);
* keep all stored pairs in one global score-sorted list for queries;
* when an object expires, delete its pairs; every unexpired object whose
  best-list referenced it must then *recompute* its K best pairs from
  scratch — the ``O(N)`` rescans that make naive orders of magnitude
  slower than the skyband approach.

``naive++`` (paper Fig 9) is this same algorithm instantiated per query
with ``K = k`` and ``window_size = n`` — see :meth:`NaiveAlgorithm.plus_plus`.

Exactness caveat (documented in DESIGN.md §3): the stored per-object
best-lists are computed against the *full* window, so answers are exact
for ``n = N`` (and for naive++, which is built with ``N = n``); the paper
uses the same construction.
"""

from __future__ import annotations

from collections import deque
from typing import Optional, Sequence

from repro.analysis.cost_model import Counters
from repro.core.pair import Pair, make_pair
from repro.scoring.base import ScoringFunction
from repro.stream.object import StreamObject
from repro.structures.selection import quickselect_smallest
from repro.structures.skiplist import SkipList

__all__ = ["NaiveAlgorithm"]


class NaiveAlgorithm:
    """O(KN)-space naive top-k pairs monitoring."""

    def __init__(
        self,
        scoring_function: ScoringFunction,
        K: int,
        window_size: int,
        *,
        counters: Optional[Counters] = None,
    ) -> None:
        self.scoring_function = scoring_function
        self.K = K
        self.window_size = window_size
        self.counters = counters
        self._window: deque[StreamObject] = deque()
        self._best: dict[int, list[Pair]] = {}
        self._global = SkipList(key=lambda p: p.score_key)
        self._next_seq = 1

    @classmethod
    def plus_plus(
        cls,
        scoring_function: ScoringFunction,
        k: int,
        n: int,
        *,
        counters: Optional[Counters] = None,
    ) -> "NaiveAlgorithm":
        """The paper's naive++: built for one known query ``(k, n)``."""
        return cls(scoring_function, k, n, counters=counters)

    # ------------------------------------------------------------------
    @property
    def now_seq(self) -> int:
        return self._next_seq - 1

    @property
    def stored_pairs(self) -> int:
        return len(self._global)

    def append(self, values: Sequence[float]) -> StreamObject:
        """Admit one object: expire, then store the newcomer's K best."""
        obj = StreamObject(self._next_seq, values)
        self._next_seq += 1
        self._window.append(obj)
        while len(self._window) > self.window_size:
            self._expire(self._window.popleft())
        self._best[obj.seq] = []
        self._recompute_best(obj)
        return obj

    def _recompute_best(self, obj: StreamObject) -> None:
        """Set ``obj``'s best-list to its K smallest pairs over the older
        window partners, updating the global list accordingly."""
        for stale in self._best[obj.seq]:
            self._global.remove(stale)
        older = [p for p in self._window if p.seq < obj.seq]
        pairs = [
            make_pair(obj, partner, self.scoring_function, self.counters)
            for partner in older
        ]
        best = quickselect_smallest(pairs, self.K, key=lambda p: p.score_key)
        self._best[obj.seq] = best
        for pair in best:
            self._global.insert(pair)

    def _expire(self, gone: StreamObject) -> None:
        """Drop the expired object's pairs and refill damaged best-lists."""
        for pair in self._best.pop(gone.seq, []):
            self._global.remove(pair)
        # Pairs referencing `gone` as the older member live in the
        # best-lists of newer objects; those lists must be recomputed.
        damaged = [
            seq
            for seq, best in self._best.items()
            if any(pair.older.seq == gone.seq for pair in best)
        ]
        for seq in damaged:
            owner = next(o for o in self._window if o.seq == seq)
            self._recompute_best(owner)

    # ------------------------------------------------------------------
    def top_k(self, k: int, n: Optional[int] = None) -> list[Pair]:
        """Scan the global score-sorted list for the k best in-window
        pairs.  Exact for ``n = window_size`` (see module docstring)."""
        n = self.window_size if n is None else n
        answer: list[Pair] = []
        now = self.now_seq
        for pair in self._global:
            if self.counters is not None:
                self.counters.answer_scans += 1
            if pair.in_window(now, n):
                answer.append(pair)
                if len(answer) == k:
                    break
        return answer

    def check_invariants(self) -> None:
        """Every stored pair appears exactly once in the global list."""
        stored = [p for best in self._best.values() for p in best]
        assert len(stored) == len(self._global)
        assert {p.uid for p in stored} == {p.uid for p in self._global}
        window_seqs = {o.seq for o in self._window}
        for pair in stored:
            assert pair.older.seq in window_seqs
            assert pair.newer.seq in window_seqs
