"""The "supreme" lower-bound competitor (paper §VI-B).

The supreme algorithm assumes an oracle that answers questions in zero
time, letting it meet the cost lower bounds:

* **maintenance** — on every arrival it must still compute the score and
  age of each new pair (Algorithm 3 lines 2-3; Theorem-4-style arguments
  make ``O(N)`` unavoidable for arbitrary scoring functions), but all
  skyband bookkeeping is done by the oracle for free;
* **snapshot answering** — the oracle hands over the window-filtered,
  score-sorted skyband; supreme reads the first ``k`` pairs: ``O(k)``;
* **continuous answering** — the oracle notifies it of every change to
  the answer; supreme merely applies the diff.

Here the "oracle" is a real :class:`~repro.core.maintenance.SCaseMaintainer`
(so supreme stays exact), and the *chargeable* work is isolated: it is
timed into :attr:`chargeable_seconds` and counted into the supplied
:class:`~repro.analysis.cost_model.Counters`, while oracle work is neither.
Benchmarks report only the chargeable cost, mirroring the paper's
accounting.  ``supreme++`` (Fig 9) is the same algorithm instantiated per
query with ``K = k`` and ``window_size = n``.
"""

from __future__ import annotations

from time import perf_counter
from typing import Optional, Sequence

from repro.analysis.cost_model import Counters
from repro.core.maintenance import SCaseMaintainer
from repro.core.pair import Pair
from repro.scoring.base import ScoringFunction
from repro.stream.manager import StreamManager

__all__ = ["SupremeAlgorithm"]


class SupremeAlgorithm:
    """Oracle-assisted lower-bound top-k pairs monitoring."""

    def __init__(
        self,
        scoring_function: ScoringFunction,
        K: int,
        window_size: int,
        num_attributes: int,
        *,
        counters: Optional[Counters] = None,
    ) -> None:
        self.scoring_function = scoring_function
        self.K = K
        self.window_size = window_size
        self.counters = counters
        #: accumulated wall time of all chargeable work
        self.chargeable_seconds = 0.0
        #: the query-answering share of :attr:`chargeable_seconds`
        self.chargeable_query_seconds = 0.0
        self._manager = StreamManager(window_size, num_attributes)
        # The oracle: a full maintainer that does the real bookkeeping.
        # Its work is deliberately *not* timed or counted.
        self.oracle = SCaseMaintainer(scoring_function, K)
        self._answers: dict[int, list[Pair]] = {}
        self._query_params: dict[int, tuple[int, int]] = {}

    @classmethod
    def plus_plus(
        cls,
        scoring_function: ScoringFunction,
        k: int,
        n: int,
        num_attributes: int,
        *,
        counters: Optional[Counters] = None,
    ) -> "SupremeAlgorithm":
        """The paper's supreme++: built for one known query ``(k, n)``."""
        return cls(scoring_function, k, n, num_attributes, counters=counters)

    # ------------------------------------------------------------------
    @property
    def now_seq(self) -> int:
        return self._manager.now_seq

    def append(self, values: Sequence[float]) -> None:
        """One stream tick: chargeable score/age pass, then oracle work."""
        # -- chargeable: lines 2-3 of Algorithm 3 ------------------------
        start = perf_counter()
        event = self._manager.append(values)
        new = event.new
        scoring = self.scoring_function.score
        scores = [
            scoring(new, partner)
            for partner in self._manager
            if partner.seq != new.seq
        ]
        self.chargeable_seconds += perf_counter() - start
        if self.counters is not None:
            self.counters.score_evaluations += len(scores)
            self.counters.pairs_considered += len(scores)
        # -- oracle: everything else, free -------------------------------
        self.oracle.on_tick(self._manager, new, event.expired)
        for query_id in list(self._answers):
            k, n = self._query_params[query_id]
            new_answer = self._oracle_top_k(k, n)
            self._apply_diff(query_id, new_answer)

    # ------------------------------------------------------------------
    # snapshot answering
    # ------------------------------------------------------------------
    def top_k(self, k: int, n: Optional[int] = None) -> list[Pair]:
        """Chargeable ``O(k)`` read of the oracle-prepared answer list."""
        n = self.window_size if n is None else n
        prepared = self._oracle_prepared_list(n)  # oracle work, free
        start = perf_counter()
        answer = prepared[:k]
        elapsed = perf_counter() - start
        self.chargeable_seconds += elapsed
        self.chargeable_query_seconds += elapsed
        if self.counters is not None:
            self.counters.answer_scans += len(answer)
        return answer

    def _oracle_prepared_list(self, n: int) -> list[Pair]:
        """Oracle: window-filtered, score-sorted skyband (free)."""
        now = self._manager.now_seq
        return [p for p in self.oracle.skyband if p.in_window(now, n)]

    def _oracle_top_k(self, k: int, n: int) -> list[Pair]:
        return self._oracle_prepared_list(n)[:k]

    # ------------------------------------------------------------------
    # continuous answering
    # ------------------------------------------------------------------
    def register_continuous(self, query_id: int, k: int, n: int) -> None:
        """Track a continuous query; the oracle pushes answer diffs."""
        self._query_params[query_id] = (k, n)
        self._answers[query_id] = self._oracle_top_k(k, n)

    def answer(self, query_id: int) -> list[Pair]:
        return list(self._answers[query_id])

    def _apply_diff(self, query_id: int, new_answer: list[Pair]) -> None:
        """Chargeable: apply the oracle's notified changes to the answer."""
        old = self._answers[query_id]
        old_uids = {p.uid for p in old}
        new_uids = {p.uid for p in new_answer}
        additions = [p for p in new_answer if p.uid not in old_uids]
        deletions = [p for p in old if p.uid not in new_uids]
        start = perf_counter()
        if additions or deletions:
            self._answers[query_id] = new_answer
        elapsed = perf_counter() - start
        self.chargeable_seconds += elapsed
        self.chargeable_query_seconds += elapsed
        if self.counters is not None:
            self.counters.answer_scans += len(additions) + len(deletions)
