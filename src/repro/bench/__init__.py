"""Benchmark harness helpers: Table-I parameters, stream drivers, cost
accounting and figure-shaped reporting."""

from repro.bench.harness import (
    SCALE,
    PaperParameters,
    drive_monitor,
    sensor_rows,
    synthetic_rows,
    take,
    time_monitor,
    time_naive,
    time_supreme,
    us_per,
)
from repro.bench.reporting import format_figure, print_figure

__all__ = [
    "SCALE",
    "PaperParameters",
    "drive_monitor",
    "format_figure",
    "print_figure",
    "sensor_rows",
    "synthetic_rows",
    "take",
    "time_monitor",
    "time_naive",
    "time_supreme",
    "us_per",
]
