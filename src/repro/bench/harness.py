"""Benchmark harness: paper parameters (Table I), scaling, and drivers.

The paper's testbed is compiled code sweeping windows up to N = 1,000,000;
a pure-Python reproduction sweeps the same parameter *ratios* at laptop
scale.  ``REPRO_BENCH_SCALE`` (default 1.0) multiplies every window size,
so ``REPRO_BENCH_SCALE=5 pytest benchmarks/ --benchmark-only`` runs a 5x
larger sweep when more time is available.

Cost accounting mirrors §VI: each algorithm's cost is wall time per object
update (or per query), except the supreme algorithm, which is charged only
its oracle-exempt work via ``SupremeAlgorithm.chargeable_seconds``.

Observability hook: when ``REPRO_BENCH_METRICS`` names a directory,
:func:`bench_recorder` hands benchmarks a live
:class:`~repro.obs.MetricsRecorder` and :func:`persist_metrics` writes
each benchmark's registry snapshot there as ``<name>.metrics.json``
(both are no-ops otherwise, so timing runs stay uninstrumented).
"""

from __future__ import annotations

import itertools
import os
import time
from typing import Callable, Iterable, Iterator, Sequence

from repro.baselines.naive import NaiveAlgorithm
from repro.baselines.supreme import SupremeAlgorithm
from repro.core.monitor import TopKPairsMonitor
from repro.datasets.sensor import SensorStreamSimulator
from repro.datasets.synthetic import make_stream
from repro.scoring.library import paper_scoring_functions

__all__ = [
    "SCALE",
    "PaperParameters",
    "bench_recorder",
    "take",
    "sensor_rows",
    "synthetic_rows",
    "drive_monitor",
    "persist_metrics",
    "time_monitor",
    "time_naive",
    "time_supreme",
    "us_per",
]


def _read_scale() -> float:
    try:
        return max(0.05, float(os.environ.get("REPRO_BENCH_SCALE", "1")))
    except ValueError:
        return 1.0


SCALE = _read_scale()


def _scaled(base: int) -> int:
    return max(10, int(base * SCALE))


class PaperParameters:
    """Table I, scaled for a pure-Python run.

    Paper values in comments; bold defaults of the paper become the
    defaults here.
    """

    # Paper: N in {10k, 50k, 100k, 500k, 1M}, default 10k.
    N_SWEEP = [_scaled(n) for n in (150, 300, 600, 1200)]
    N_DEFAULT = _scaled(600)
    # Paper: K in {1, 5, 10, 20, 50, 100}, default 20.
    K_SWEEP = [1, 5, 20, 50]
    K_DEFAULT = 20
    # Paper: d in {2, 3, 4, 5, 6}, default 3.
    D_SWEEP = [2, 3, 4, 5, 6]
    D_DEFAULT = 3
    # Distributions of §VI-A plus the simulated sensor data.
    DISTRIBUTIONS = ["uniform", "correlated", "anticorrelated"]
    # Measured stream length per configuration (after warm-up).
    TICKS = _scaled(150)


def take(stream: Iterator, count: int) -> list:
    return list(itertools.islice(stream, count))


def synthetic_rows(
    count: int, d: int, *, distribution: str = "uniform", seed: int = 0
) -> list[tuple[float, ...]]:
    return take(make_stream(distribution, d, seed=seed), count)


def sensor_rows(count: int, *, seed: int = 0) -> list[tuple[float, ...]]:
    """(time, temperature, humidity) rows from the simulated Intel lab."""
    sim = SensorStreamSimulator(seed=seed, anomaly_rate=0.01)
    return [values[:3] for values in take(sim.value_rows(), count)]


def drive_monitor(monitor: TopKPairsMonitor, rows: Iterable) -> None:
    for row in rows:
        monitor.append(row)


def time_monitor(monitor: TopKPairsMonitor, rows: Sequence) -> float:
    """Wall seconds to stream ``rows`` through a monitor."""
    start = time.perf_counter()
    for row in rows:
        monitor.append(row)
    return time.perf_counter() - start


def time_naive(naive: NaiveAlgorithm, rows: Sequence) -> float:
    start = time.perf_counter()
    for row in rows:
        naive.append(row)
    return time.perf_counter() - start


def time_supreme(supreme: SupremeAlgorithm, rows: Sequence) -> float:
    """Chargeable seconds only (the oracle works off the clock)."""
    before = supreme.chargeable_seconds
    for row in rows:
        supreme.append(row)
    return supreme.chargeable_seconds - before


def us_per(seconds: float, count: int) -> float:
    """Microseconds per unit of work."""
    return seconds * 1e6 / max(1, count)


def default_scoring_functions(d: int):
    """The four §VI-A functions s1..s4 over ``d`` attributes."""
    return paper_scoring_functions(d)


def time_callable(fn: Callable[[], object], repeats: int) -> float:
    """Wall seconds for ``repeats`` invocations of ``fn``."""
    start = time.perf_counter()
    for _ in range(repeats):
        fn()
    return time.perf_counter() - start


def _metrics_dir() -> str:
    return os.environ.get("REPRO_BENCH_METRICS", "")


def bench_recorder():
    """A :class:`~repro.obs.MetricsRecorder` when ``REPRO_BENCH_METRICS``
    is set, else ``None`` (pass straight to ``TopKPairsMonitor``: ``None``
    selects the zero-overhead NullRecorder, keeping timings honest)."""
    if not _metrics_dir():
        return None
    from repro.obs import MetricsRecorder

    return MetricsRecorder(trace=False)


def persist_metrics(name: str, recorder, extra=None) -> str:
    """Write ``recorder``'s registry snapshot to
    ``$REPRO_BENCH_METRICS/<name>.metrics.json``; returns the path
    (empty string when disabled or ``recorder`` is ``None``)."""
    directory = _metrics_dir()
    if not directory or recorder is None or recorder.registry is None:
        return ""
    from repro.obs import write_metrics_json

    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{name}.metrics.json")
    payload_extra = {"benchmark": name, "scale": SCALE}
    if extra:
        payload_extra.update(extra)
    write_metrics_json(recorder.registry, path, extra=payload_extra)
    return path
