"""Reporting helpers for the benchmark harness: text figures and the
``BENCH_*.json`` provenance stamp.

Each benchmark regenerates one of the paper's figures as a series table:
one row per x-value, one column per algorithm, values in the figure's unit
(typically microseconds per object update or per query).  The tables are
printed to stdout so ``pytest benchmarks/ --benchmark-only -s`` shows the
paper-shaped output next to pytest-benchmark's own timing table.

Every ``BENCH_*.json`` writer also funnels through :func:`stamp_result`,
which records a ``schema_version`` and the emitting git revision — the
two fields that make benchmark trajectories comparable across PRs (a
number that moved means the code moved, not the file format).
"""

from __future__ import annotations

import subprocess
from typing import Mapping, Optional, Sequence

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "format_figure",
    "git_revision",
    "print_figure",
    "stamp_result",
]

#: bumped whenever the shape of any BENCH_*.json payload changes
#: incompatibly; trend tooling refuses to diff across versions.
BENCH_SCHEMA_VERSION = 1


def git_revision() -> Optional[str]:
    """The short git revision of the working tree, or ``None`` when git
    (or a repository) is unavailable — results must still be writable
    from a tarball checkout or an installed wheel."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10.0, check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    revision = proc.stdout.strip()
    return revision if proc.returncode == 0 and revision else None


def stamp_result(result: dict, *, suite: str) -> dict:
    """Attach the provenance stamp to one benchmark payload (in place;
    returned for chaining).

    Adds ``schema_version``, ``suite`` and ``git_revision`` (``None``
    outside a git checkout).  Existing keys are overwritten — a stale
    stamp inherited from a loaded baseline would be worse than none.
    """
    result["schema_version"] = BENCH_SCHEMA_VERSION
    result["suite"] = suite
    result["git_revision"] = git_revision()
    return result


def format_figure(
    title: str,
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[float]],
    *,
    unit: str = "us/update",
    precision: int = 2,
) -> str:
    """Render one figure as an aligned text table."""
    for name, values in series.items():
        if len(values) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(values)} values for "
                f"{len(x_values)} x-values"
            )
    names = list(series)
    header = [x_label] + [f"{name} [{unit}]" for name in names]
    rows = [
        [str(x)] + [f"{series[name][i]:.{precision}f}" for name in names]
        for i, x in enumerate(x_values)
    ]
    widths = [
        max(len(header[c]), *(len(row[c]) for row in rows)) if rows
        else len(header[c])
        for c in range(len(header))
    ]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.rjust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def print_figure(
    title: str,
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[float]],
    *,
    unit: str = "us/update",
    precision: int = 2,
) -> None:
    print()
    print(
        format_figure(
            title, x_label, x_values, series, unit=unit, precision=precision
        )
    )
