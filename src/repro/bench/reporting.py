"""Plain-text figure reporting for the benchmark harness.

Each benchmark regenerates one of the paper's figures as a series table:
one row per x-value, one column per algorithm, values in the figure's unit
(typically microseconds per object update or per query).  The tables are
printed to stdout so ``pytest benchmarks/ --benchmark-only -s`` shows the
paper-shaped output next to pytest-benchmark's own timing table.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["format_figure", "print_figure"]


def format_figure(
    title: str,
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[float]],
    *,
    unit: str = "us/update",
    precision: int = 2,
) -> str:
    """Render one figure as an aligned text table."""
    for name, values in series.items():
        if len(values) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(values)} values for "
                f"{len(x_values)} x-values"
            )
    names = list(series)
    header = [x_label] + [f"{name} [{unit}]" for name in names]
    rows = [
        [str(x)] + [f"{series[name][i]:.{precision}f}" for name in names]
        for i, x in enumerate(x_values)
    ]
    widths = [
        max(len(header[c]), *(len(row[c]) for row in rows)) if rows
        else len(header[c])
        for c in range(len(header))
    ]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.rjust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def print_figure(
    title: str,
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[float]],
    *,
    unit: str = "us/update",
    precision: int = 2,
) -> None:
    print()
    print(
        format_figure(
            title, x_label, x_values, series, unit=unit, precision=precision
        )
    )
