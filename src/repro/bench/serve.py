"""Serving-layer benchmark: the suite behind ``repro bench serve`` and
``benchmarks/bench_serve.py``.

Boots a real :class:`~repro.serve.server.ServeServer` on a loopback TCP
socket (via :class:`~repro.serve.server.BackgroundServer`) and drives it
with the synchronous :class:`~repro.serve.client.ServeClient`, so every
number includes the full protocol cost — JSON framing, the socket round
trip and the event-loop hop:

* **ingest throughput** — acknowledged rows/sec for batched ingest
  round trips (send a batch, wait for the precise-count ack);
* **subscribe delta latency** — one subscriber, then single-row ingests;
  latency is measured from sending the ingest request to receiving the
  tick's delta event (p50/p99/max), over the ticks that changed the
  answer;
* **checkpoint** — save round trip plus two offline restores into fresh
  sessions: ``replay`` (re-ingest the window; the oracle) and
  ``structural`` (bulk-load the serialized skybands) — the ratio is the
  v2 format's payoff;
* **standby** — bootstrap a warm standby off the live primary
  (``replicate`` + shipped checkpoint), measure replication apply lag
  per ingested batch (primary ack to the standby reporting the seq),
  then promote it;
* **multi_tenant** — one server hosting N namespaces, one authenticated
  client per namespace ingesting concurrently through the fair
  multiplexer; reports aggregate rows/sec as a fraction of the
  single-tenant ingest number plus per-namespace delta latency.

Results go to ``BENCH_serve.json``; ``REPRO_BENCH_SCALE`` shrinks or
grows the streams (CI runs a reduced smoke pass).
"""

from __future__ import annotations

import json
import threading
from time import perf_counter

from repro.bench.harness import SCALE, synthetic_rows
from repro.bench.reporting import stamp_result
from repro.serve.checkpoint import restore_server_monitor, save_checkpoint
from repro.serve.client import ServeClient, apply_delta
from repro.serve.server import BackgroundServer
from repro.serve.session import ServerMonitor

__all__ = ["DEFAULT_OUTPUT", "run_serve_bench", "write_serve_json"]

DEFAULT_OUTPUT = "BENCH_serve.json"


def _scaled(base: int) -> int:
    return max(10, int(base * SCALE))


def _percentile(sorted_values: list[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1,
                int(fraction * (len(sorted_values) - 1) + 0.5))
    return sorted_values[index]


def _bench_ingest(client: ServeClient, rows, batch: int) -> dict:
    start = perf_counter()
    acknowledged = 0
    for offset in range(0, len(rows), batch):
        ack = client.ingest(rows[offset:offset + batch])
        acknowledged += ack["ingested"]
    elapsed = perf_counter() - start
    return {
        "rows": acknowledged,
        "batch": batch,
        "seconds": elapsed,
        "rows_per_sec": acknowledged / elapsed if elapsed else 0.0,
    }


def _bench_deltas(client: ServeClient, rows, k: int) -> dict:
    query = client.register("closest", k=k)
    answer = client.subscribe(query)
    latencies: list[float] = []
    delta_events = 0
    for row in rows:
        start = perf_counter()
        ack = client.ingest([row])
        tick = ack["now_seq"]
        # The ack reports how many delta events were enqueued; under the
        # block policy they were queued before the ack, so wait for
        # exactly that many — no blind polling.
        for _ in range(ack["deltas"]):
            event = client.next_event(timeout=5.0)
            if event is None or event.get("event") != "delta":
                continue
            apply_delta(answer, event)
            delta_events += 1
            if event.get("query") == query and event.get("tick") == tick:
                latencies.append(perf_counter() - start)
    latencies.sort()
    polled = client.snapshot(query=query)
    replay_consistent = sorted(answer) == sorted(
        (pair["older"], pair["newer"]) for pair in polled
    )
    client.unsubscribe(query)
    client.unregister(query)
    return {
        "ticks": len(rows),
        "delta_events": delta_events,
        "replay_consistent": replay_consistent,
        # "samples" is the percentile population size: latencies are
        # only collected on ticks that changed the subscriber's answer,
        # so it is usually far below "ticks" — p99 over a handful of
        # samples degenerates to the max (the reason delta_ticks
        # defaults high enough for hundreds of samples at scale 1).
        "latency_us": {
            "samples": len(latencies),
            "p50": _percentile(latencies, 0.50) * 1e6,
            "p99": _percentile(latencies, 0.99) * 1e6,
            "max": (latencies[-1] if latencies else 0.0) * 1e6,
        },
    }


def _bench_checkpoint(client: ServeClient, path: str, k: int) -> dict:
    client.register("closest", k=k)
    client.register("furthest", k=k)
    meta = client.checkpoint(path)
    # Replay re-ingests the window through the engine (the restore
    # oracle, and the only option for v1 documents); structural
    # bulk-loads the serialized skybands and skiplists.  The gap between
    # the two numbers is what the v2 format buys.
    start = perf_counter()
    restored = restore_server_monitor(path, mode="replay")
    restore_seconds = perf_counter() - start
    start = perf_counter()
    structural = restore_server_monitor(path, mode="structural")
    restore_seconds_structural = perf_counter() - start
    return {
        "save_seconds": meta["seconds"],
        "restore_seconds": restore_seconds,
        "restore_seconds_structural": restore_seconds_structural,
        "structural_speedup": (restore_seconds / restore_seconds_structural
                               if restore_seconds_structural else 0.0),
        "bytes": meta["bytes"],
        "objects": meta["objects"],
        "restored_queries": len(restored.queries()),
        "structural_queries": len(structural.queries()),
    }


def _bench_standby(primary_port: int, rows, batch: int) -> dict:
    """Boot a warm standby off the live primary, measure replication
    apply lag (ingest ack on the primary -> standby reports the seq),
    then promote it."""
    from repro.serve.standby import connect_standby

    start = perf_counter()
    session, tailer = connect_standby("127.0.0.1", primary_port)
    bootstrap_seconds = perf_counter() - start
    bootstrap_objects = len(session.monitor.manager)
    lags: list[float] = []
    caught_up = True
    replicated = 0
    with BackgroundServer(session, role="standby",
                          standby=tailer) as standby:
        with ServeClient(port=primary_port) as producer, \
                ServeClient(port=standby.port) as probe:
            for offset in range(0, len(rows), batch):
                ack = producer.ingest(rows[offset:offset + batch])
                target = ack["now_seq"]
                start = perf_counter()
                while probe.epoch()["now_seq"] < target:
                    if perf_counter() - start > 10.0:
                        caught_up = False
                        break
                if not caught_up:
                    break
                lags.append(perf_counter() - start)
                replicated += ack["ingested"]
            start = perf_counter()
            promote = probe.promote()
            promote_seconds = perf_counter() - start
    lags.sort()
    return {
        "bootstrap_seconds": bootstrap_seconds,
        "bootstrap_objects": bootstrap_objects,
        "batches": len(lags),
        "rows": replicated,
        "caught_up": caught_up,
        # Lag includes one epoch-op round trip per poll, so the floor is
        # a protocol round trip, not zero.
        "apply_lag_us": {
            "samples": len(lags),
            "p50": _percentile(lags, 0.50) * 1e6,
            "p99": _percentile(lags, 0.99) * 1e6,
            "max": (lags[-1] if lags else 0.0) * 1e6,
        },
        "promote_seconds": promote_seconds,
        "promoted_epoch": promote["epoch"],
    }


def _bench_multi_tenant(
    rows,
    batch: int,
    window: int,
    d: int,
    k: int,
    namespaces: int,
    delta_ticks: int,
    baseline_rows_per_sec: float,
    repeats: int = 3,
) -> dict:
    """One server, ``namespaces`` tenants, one client thread each.

    Every thread authenticates into its own namespace, the threads
    rendezvous on a barrier, then ingest their slice concurrently —
    aggregate throughput is total admitted rows over the slowest
    thread's wall time, reported as a fraction of the single-tenant
    ingest number.  A second synchronized phase measures per-namespace
    delta latency with one subscriber per tenant, so the number includes
    whatever head-of-line blocking the multiplexer failed to prevent.

    The whole phase runs ``repeats`` times against fresh servers and the
    best aggregate wins: with ``namespaces + 1`` threads contending for
    the host's cores, a single run's wall time is dominated by scheduler
    luck, and the best run is the one that measures the server rather
    than the machine.
    """
    best = None
    for _ in range(max(1, repeats)):
        result = _multi_tenant_once(
            rows, batch, window, d, k, namespaces, delta_ticks,
            baseline_rows_per_sec,
        )
        if best is None or (result["aggregate_rows_per_sec"]
                            > best["aggregate_rows_per_sec"]):
            best = result
    best["repeats"] = max(1, repeats)
    return best


def _multi_tenant_once(
    rows,
    batch: int,
    window: int,
    d: int,
    k: int,
    namespaces: int,
    delta_ticks: int,
    baseline_rows_per_sec: float,
) -> dict:
    from repro.serve.tenancy import NamespaceRegistry, TenantSpec

    names = [f"tenant{index}" for index in range(namespaces)]
    tokens = {name: f"{name}-bench-token" for name in names}
    registry = NamespaceRegistry(
        {name: TenantSpec(name, tokens[name]) for name in names},
        lambda name, spec: ServerMonitor(window, d),
    )
    share = len(rows) // namespaces
    ingest_share = max(1, share - delta_ticks)
    slices = {
        name: rows[index * share:(index + 1) * share]
        for index, name in enumerate(names)
    }
    start_barrier = threading.Barrier(namespaces)
    register_barrier = threading.Barrier(namespaces)
    delta_barrier = threading.Barrier(namespaces)
    per_namespace: dict = {}
    errors: list[BaseException] = []
    lock = threading.Lock()

    def worker(port: int, name: str) -> None:
        try:
            with ServeClient(port=port) as client:
                client.auth(name, tokens[name])
                head = slices[name][:ingest_share]
                tail = slices[name][ingest_share:]
                start_barrier.wait()
                start = perf_counter()
                acknowledged = 0
                for offset in range(0, len(head), batch):
                    ack = client.ingest(head[offset:offset + batch])
                    acknowledged += ack["ingested"]
                elapsed = perf_counter() - start
                # Registering over a populated window computes a full
                # skyband on the event loop (hundreds of ms at window
                # 512) — rendezvous first so no tenant's register storm
                # lands inside another tenant's timed ingest, and again
                # before the latency loop so it cannot pollute the
                # delta numbers either.
                register_barrier.wait()
                query = client.register("closest", k=k)
                client.subscribe(query)
                latencies: list[float] = []
                delta_barrier.wait()
                for row in tail:
                    start = perf_counter()
                    ack = client.ingest([row])
                    for _ in range(ack["deltas"]):
                        event = client.next_event(timeout=5.0)
                        if event is None or event.get("event") != "delta":
                            continue
                        if event.get("tick") == ack["now_seq"]:
                            latencies.append(perf_counter() - start)
                latencies.sort()
                with lock:
                    per_namespace[name] = {
                        "rows": acknowledged,
                        "seconds": elapsed,
                        "rows_per_sec": (acknowledged / elapsed
                                         if elapsed else 0.0),
                        "delta_samples": len(latencies),
                        "delta_p99_us": _percentile(latencies, 0.99) * 1e6,
                    }
        except BaseException as exc:  # surface, don't deadlock
            with lock:
                errors.append(exc)
            start_barrier.abort()
            register_barrier.abort()
            delta_barrier.abort()

    with BackgroundServer(None, tenants=registry) as background:
        threads = [
            threading.Thread(target=worker, args=(background.port, name))
            for name in names
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    if errors:
        raise errors[0]
    total_rows = sum(entry["rows"] for entry in per_namespace.values())
    wall = max(entry["seconds"] for entry in per_namespace.values())
    aggregate = total_rows / wall if wall else 0.0
    # Only tenants whose ticks actually changed their answer have a
    # latency distribution; with few delta ticks that is a subset.
    samples = sorted(
        entry["delta_p99_us"] for entry in per_namespace.values()
        if entry["delta_samples"]
    )
    return {
        "namespaces": namespaces,
        "rows": total_rows,
        "batch": batch,
        "seconds": wall,
        "aggregate_rows_per_sec": aggregate,
        "single_tenant_rows_per_sec": baseline_rows_per_sec,
        "single_tenant_fraction": (aggregate / baseline_rows_per_sec
                                   if baseline_rows_per_sec else 0.0),
        "delta_p99_us": {
            "tenants_with_samples": len(samples),
            "min": samples[0] if samples else 0.0,
            "median": _percentile(samples, 0.50),
            "max": samples[-1] if samples else 0.0,
        },
        "per_namespace": per_namespace,
    }


def run_serve_bench(
    *,
    window: int | None = None,
    k: int | None = None,
    d: int = 2,
    ingest_rows: int | None = None,
    batch: int = 64,
    delta_ticks: int | None = None,
    standby_rows: int | None = None,
    tenant_namespaces: int = 8,
    tenant_rows: int | None = None,
    tenant_delta_ticks: int = 16,
    checkpoint_path: str = "BENCH_serve.ckpt.json",
) -> dict:
    """Run the serving benchmark; returns the BENCH_serve.json payload."""
    window = _scaled(512) if window is None else window
    k = 5 if k is None else k
    ingest_rows = _scaled(4096) if ingest_rows is None else ingest_rows
    # ~150 answer-changing deltas at scale 1 (the rate decays as the
    # window saturates); the old 512 ticks produced ~20 samples,
    # collapsing p99 into max.
    delta_ticks = _scaled(4096) if delta_ticks is None else delta_ticks
    standby_rows = _scaled(1024) if standby_rows is None else standby_rows
    if tenant_rows is None:
        # Scale down like everything else, but keep >= 8 ingest batches
        # per tenant — with only a couple of round trips each, thread
        # startup skew dominates the aggregate and the single-tenant
        # fraction turns into noise.
        tenant_rows = max(
            tenant_namespaces * (8 * batch + tenant_delta_ticks),
            _scaled(4096),
        )
    rows = synthetic_rows(ingest_rows + delta_ticks + standby_rows, d,
                          seed=13)
    session = ServerMonitor(window, d)
    with BackgroundServer(session) as background:
        with ServeClient(port=background.port) as client:
            ingest = _bench_ingest(client, rows[:ingest_rows], batch)
            deltas = _bench_deltas(
                client, rows[ingest_rows:ingest_rows + delta_ticks], k,
            )
            checkpoint = _bench_checkpoint(client, checkpoint_path, k)
            standby = _bench_standby(
                background.port,
                rows[ingest_rows + delta_ticks:], batch,
            )
            client.shutdown()
    multi_tenant = _bench_multi_tenant(
        synthetic_rows(tenant_rows, d, seed=17),
        batch, window, d, k,
        tenant_namespaces, tenant_delta_ticks,
        ingest["rows_per_sec"],
    )
    return {
        "scale": SCALE,
        "params": {
            "window": window,
            "k": k,
            "d": d,
            "ingest_rows": ingest_rows,
            "batch": batch,
            "delta_ticks": delta_ticks,
            "standby_rows": standby_rows,
            "tenant_namespaces": tenant_namespaces,
            "tenant_rows": tenant_rows,
            "tenant_delta_ticks": tenant_delta_ticks,
        },
        "ingest": ingest,
        "deltas": deltas,
        "checkpoint": checkpoint,
        "standby": standby,
        "multi_tenant": multi_tenant,
    }


def write_serve_json(result: dict, path: str = DEFAULT_OUTPUT) -> str:
    stamp_result(result, suite="serve")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
