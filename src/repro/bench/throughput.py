"""Per-tick maintenance throughput: the bench behind ``repro bench
throughput`` and ``benchmarks/bench_throughput.py``.

Measures the incremental fast path (coalesced expiry + seeded suffix
re-sweep, ``fast_path=True``, the default) against the legacy
rebuild-per-expiry / full-sweep path (``fast_path=False``) on identical
synthetic streams:

* the three §VI-A distributions (uniform / correlated / anticorrelated)
  over a count-based window — one expiry per tick, the paper's steady
  state;
* an **expiry-heavy** workload over a time-based window whose timestamps
  periodically jump, so a single tick evicts a whole burst of objects —
  the case where the legacy path pays one full Algorithm 4 rebuild *per
  expired object* and the fast path pays a single staircase refresh.

Each workload reports uninstrumented ticks/sec for both paths (the
speedup ratio is the number the ≥2× acceptance gate reads) plus p50/p99
tick latency and a per-phase time breakdown from an instrumented
fast-path run (:class:`~repro.obs.MetricsRecorder` tick trace).

Results go to ``BENCH_throughput.json``; see docs/performance.md for how
to read them.  ``REPRO_BENCH_SCALE`` shrinks or grows every stream (CI
runs a reduced smoke pass).
"""

from __future__ import annotations

import json
from time import perf_counter

from repro.bench.harness import SCALE, PaperParameters, synthetic_rows
from repro.bench.reporting import stamp_result
from repro.core.monitor import TopKPairsMonitor
from repro.obs import MetricsRecorder
from repro.scoring.library import k_closest_pairs

__all__ = [
    "DEFAULT_OUTPUT",
    "DISTRIBUTIONS",
    "expiry_heavy_rows",
    "run_throughput",
    "write_throughput_json",
]

DEFAULT_OUTPUT = "BENCH_throughput.json"
DISTRIBUTIONS = ("uniform", "correlated", "anticorrelated")

#: expiry-heavy workload shape: every ``_BURST_EVERY`` ticks the stream
#: time jumps far enough to expire the objects of one whole burst cycle.
_BURST_EVERY = 48


def expiry_heavy_rows(
    count: int,
    d: int,
    *,
    horizon: float,
    burst_every: int = _BURST_EVERY,
    seed: int = 11,
) -> list[tuple[tuple[float, ...], float]]:
    """``(values, timestamp)`` rows whose timestamps advance by 1 per
    tick, plus a jump of ``horizon / 4`` every ``burst_every`` ticks —
    so most ticks expire nothing and burst ticks expire dozens of
    objects at once from the time-based window."""
    values = synthetic_rows(count, d, seed=seed)
    rows = []
    now = 0.0
    for index, row in enumerate(values):
        now += horizon / 4 if index and index % burst_every == 0 else 1.0
        rows.append((row, now))
    return rows


def _build_monitor(k: int, d: int, *, window, horizon, fast_path,
                   recorder=None) -> tuple[TopKPairsMonitor, object]:
    monitor = TopKPairsMonitor(
        window, d, time_horizon=horizon, recorder=recorder,
        fast_path=fast_path,
    )
    handle = monitor.register_query(k_closest_pairs(d), k=k)
    return monitor, handle


def _timed_run(rows, k, d, *, window, horizon, fast_path) -> float:
    """Wall seconds to stream ``rows`` (uninstrumented monitor)."""
    monitor, handle = _build_monitor(
        k, d, window=window, horizon=horizon, fast_path=fast_path
    )
    start = perf_counter()
    monitor.extend(rows)
    elapsed = perf_counter() - start
    assert monitor.results(handle) is not None
    return elapsed


def _percentile(sorted_values: list[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1,
                int(fraction * (len(sorted_values) - 1) + 0.5))
    return sorted_values[index]


def _instrumented_stats(rows, k, d, *, window, horizon) -> dict:
    """p50/p99 tick latency and per-phase µs/tick from a fast-path run."""
    recorder = MetricsRecorder()
    monitor, handle = _build_monitor(
        k, d, window=window, horizon=horizon, fast_path=True,
        recorder=recorder,
    )
    monitor.extend(rows)
    monitor.results(handle)
    events = list(recorder.events)
    latencies = sorted(event.seconds for event in events)
    phase_totals: dict[str, float] = {}
    for event in events:
        for name, seconds in event.phases.items():
            phase_totals[name] = phase_totals.get(name, 0.0) + seconds
    ticks = max(1, len(events))
    registry = recorder.registry
    return {
        "latency_us": {
            "p50": _percentile(latencies, 0.50) * 1e6,
            "p99": _percentile(latencies, 0.99) * 1e6,
            "max": (latencies[-1] if latencies else 0.0) * 1e6,
        },
        "phase_us_per_tick": {
            name: total * 1e6 / ticks
            for name, total in sorted(phase_totals.items())
        },
        "evictions": registry.value("repro_evictions_total"),
        "sweeps": registry.value("repro_sweeps_total"),
        "apply_paths": {
            "incremental": registry.value(
                "repro_apply_path_total", "incremental"
            ),
            "sweep": registry.value("repro_apply_path_total", "sweep"),
        },
    }


def _bench_workload(name: str, rows, k, d, *, window, horizon,
                    repeats: int) -> dict:
    fast = min(
        _timed_run(rows, k, d, window=window, horizon=horizon,
                   fast_path=True)
        for _ in range(repeats)
    )
    legacy = min(
        _timed_run(rows, k, d, window=window, horizon=horizon,
                   fast_path=False)
        for _ in range(repeats)
    )
    ticks = len(rows)
    result = {
        "ticks": ticks,
        "fast": {
            "seconds": fast,
            "ticks_per_sec": ticks / fast if fast else 0.0,
        },
        "legacy": {
            "seconds": legacy,
            "ticks_per_sec": ticks / legacy if legacy else 0.0,
        },
        "speedup": legacy / fast if fast else 0.0,
    }
    result.update(
        _instrumented_stats(rows, k, d, window=window, horizon=horizon)
    )
    return result


def run_throughput(*, repeats: int = 3, k: int | None = None,
                   window: int | None = None,
                   ticks: int | None = None) -> dict:
    """Run every workload; returns the BENCH_throughput.json payload."""
    d = 2
    k = PaperParameters.K_DEFAULT if k is None else k
    window = PaperParameters.N_DEFAULT if window is None else window
    ticks = 4 * PaperParameters.TICKS if ticks is None else ticks
    workloads: dict[str, dict] = {}
    for distribution in DISTRIBUTIONS:
        rows = synthetic_rows(window + ticks, d, distribution=distribution,
                              seed=7)
        workloads[distribution] = _bench_workload(
            distribution, rows, k, d, window=window, horizon=None,
            repeats=repeats,
        )
    # Time-based window: occupancy is governed by the horizon; the
    # count-based cap is set high enough to never bind.  K = 50 (a paper
    # K-sweep value) so the skyband the legacy path rebuilds per expired
    # object is deep enough to expose the coalescing win.
    heavy_k = max(k, 50)
    horizon = float(window)
    heavy_rows = expiry_heavy_rows(window + ticks, d, horizon=horizon)
    workloads["expiry_heavy"] = _bench_workload(
        "expiry_heavy", heavy_rows, heavy_k, d, window=4 * window,
        horizon=horizon, repeats=repeats,
    )
    return {
        "scale": SCALE,
        "params": {
            "k": k,
            "k_expiry_heavy": max(k, 50),
            "d": d,
            "window": window,
            "ticks": ticks,
            "repeats": repeats,
            "burst_every": _BURST_EVERY,
        },
        "workloads": workloads,
    }


def write_throughput_json(result: dict, path: str = DEFAULT_OUTPUT) -> str:
    stamp_result(result, suite="throughput")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
