"""Command-line interface: monitor top-k pairs over a CSV stream, plus
the ``lint`` / ``audit`` correctness subcommands, the ``obs``
observability subcommand, the ``bench`` benchmark runner and the
``serve`` / ``client`` network serving pair (repro.serve).

The default invocation feeds rows from a CSV file (or stdin) through a
:class:`~repro.core.monitor.TopKPairsMonitor` and periodically prints the
current top-k pairs — a ready-made tool for trying the library on real
data without writing code.

Usage examples::

    # 3 closest pairs over the last 1000 rows of a 2-column CSV
    python -m repro --columns 2 --scoring closest --k 3 --window 1000 data.csv

    # most dissimilar pairs, report every 500 rows, stream from stdin
    cat data.csv | python -m repro --columns 4 --scoring dissimilar \
        --k 5 --window 2000 --report-every 500

    # static lint pass over a source tree (exit 1 on findings)
    python -m repro lint src

    # run a synthetic stream under the runtime invariant verifier
    python -m repro audit --dataset uniform --steps 500

    # stream with full instrumentation, dump Prometheus text metrics
    python -m repro obs --dataset synthetic --steps 1000 --format prometheus

    # fast-path vs legacy maintenance throughput -> BENCH_throughput.json
    python -m repro bench throughput

    # serve the monitor over TCP (NDJSON protocol, docs/serving.md),
    # with the telemetry HTTP sidecar on port 7808
    python -m repro serve --window 1000 --columns 2 --port 7807 \
        --obs-port 7808

    # talk to it: ingest a CSV, then watch a top-3 closest query live
    python -m repro client ingest --port 7807 --columns 2 data.csv
    python -m repro client watch --port 7807 --scoring closest --k 3

    # pretty-print the server's live ingest ticks off the sidecar
    python -m repro obs tail --port 7808

    # multi-tenant serving: mint two tenants, serve them isolated
    python -m repro tenants create alpha --file tenants.json
    python -m repro tenants create beta --file tenants.json
    python -m repro serve --columns 2 --tenants tenants.json
    python -m repro client ingest --port 7807 --columns 2 \
        --namespace alpha --token <alpha-token> data.csv

Scoring functions: ``closest`` (s1), ``furthest`` (s2), ``similar`` (s3),
``dissimilar`` (s4), each over all ``--columns`` attributes.
"""

from __future__ import annotations

import argparse
import csv
import itertools
import os
import sys
from typing import Iterator, Optional, Sequence, TextIO

from repro.core.monitor import TopKPairsMonitor
from repro.scoring.library import (
    k_closest_pairs,
    k_furthest_pairs,
    top_k_dissimilar_pairs,
    top_k_similar_pairs,
)

__all__ = [
    "main",
    "build_parser",
    "build_audit_parser",
    "build_bench_parser",
    "build_client_parser",
    "build_lint_parser",
    "build_obs_parser",
    "build_obs_tail_parser",
    "build_serve_parser",
    "build_tenants_parser",
    "run_audit",
    "run_bench",
    "run_client",
    "run_lint",
    "run_obs",
    "run_obs_tail",
    "run_serve",
    "run_tenants",
]

_SCORING_FACTORIES = {
    "closest": k_closest_pairs,
    "furthest": k_furthest_pairs,
    "similar": top_k_similar_pairs,
    "dissimilar": top_k_dissimilar_pairs,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Continuously monitor top-k pairs over a CSV stream "
        "(Shen et al., ICDE 2012).",
    )
    parser.add_argument(
        "csv_file", nargs="?", default="-",
        help="CSV input ('-' or omitted: read stdin)",
    )
    parser.add_argument(
        "--columns", type=int, required=True,
        help="number of leading numeric columns to use as attributes",
    )
    parser.add_argument(
        "--scoring", choices=sorted(_SCORING_FACTORIES), default="closest",
        help="scoring function over the attributes (default: closest)",
    )
    parser.add_argument("--k", type=int, default=5, help="pairs to report")
    parser.add_argument(
        "--window", type=int, default=1000,
        help="sliding window size N (count-based)",
    )
    parser.add_argument(
        "--n", type=int, default=None,
        help="query window n <= N (default: N)",
    )
    parser.add_argument(
        "--report-every", type=int, default=1000,
        help="print the current top-k after this many rows",
    )
    parser.add_argument(
        "--skip-header", action="store_true",
        help="ignore the first CSV row",
    )
    parser.add_argument(
        "--strategy", choices=["auto", "scase", "ta", "basic"],
        default="auto", help="skyband maintenance strategy",
    )
    return parser


def _rows(handle: TextIO, columns: int, skip_header: bool) -> Iterator[tuple]:
    reader = csv.reader(handle)
    for index, row in enumerate(reader):
        if index == 0 and skip_header:
            continue
        if len(row) < columns:
            raise SystemExit(
                f"row {index + 1} has {len(row)} columns, "
                f"need at least {columns}"
            )
        try:
            yield tuple(float(cell) for cell in row[:columns])
        except ValueError as exc:
            raise SystemExit(f"row {index + 1}: {exc}") from exc


def _print_report(monitor: TopKPairsMonitor, handle, tick: int,
                  out: TextIO) -> None:
    print(f"-- after {tick} rows: top-{handle.query.k} pairs "
          f"(window n={handle.query.n}) --", file=out)
    results = monitor.results(handle)
    if not results:
        print("   (no pairs in the window yet)", file=out)
    for rank, pair in enumerate(results, start=1):
        print(
            f"   #{rank}: rows {pair.older.seq} & {pair.newer.seq}  "
            f"score={pair.score:.6g}  "
            f"values {pair.older.values} / {pair.newer.values}",
            file=out,
        )


def build_lint_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Project static analysis: per-file rules "
        "(RA100-RA108), call-graph hot-path propagation, async-safety "
        "rules (RA201-RA205) and protocol conformance (RA301); see "
        "docs/audit.md.  Exits 1 on findings (with --strict: on "
        "findings not in the baseline).",
    )
    parser.add_argument(
        "paths", nargs="*", default=None,
        help="files or directory trees to lint "
        "(default: the installed repro package)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="baseline-aware gating: fail only on findings not listed "
        "in the baseline file (the count can only ratchet down)",
    )
    parser.add_argument(
        "--format", choices=["text", "json", "sarif"], default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the report to FILE instead of stdout "
        "(a one-line summary still prints)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="baseline file of grandfathered findings (default: "
        ".audit-baseline.json in the working directory, when present)",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--no-project", action="store_true",
        help="per-file rules only; skip the cross-module passes "
        "(call graph, RA2xx, RA301)",
    )
    parser.add_argument(
        "--explain", default=None, metavar="RULE",
        help="print one rule's rationale, example and fix, then exit "
        "(e.g. --explain RA202)",
    )
    return parser


def run_lint(argv: Sequence[str],
             stdout: Optional[TextIO] = None) -> int:
    """``python -m repro lint [paths]`` — exit 1 when rules fire."""
    from repro.audit.baseline import (
        BASELINE_NAME,
        load_baseline,
        partition_violations,
        render_baseline,
    )
    from repro.audit.emit import to_json, to_sarif
    from repro.audit.lint import analyze_paths
    from repro.audit.report import summarize
    from repro.audit.rules import explain_rule

    stdout = stdout if stdout is not None else sys.stdout
    args = build_lint_parser().parse_args(argv)
    if args.explain is not None:
        text = explain_rule(args.explain)
        if text is None:
            raise SystemExit(
                f"repro lint: unknown rule {args.explain!r}; "
                "see docs/audit.md for the catalogue"
            )
        print(text, file=stdout)
        return 0
    paths = args.paths
    if not paths:
        paths = [os.path.dirname(os.path.abspath(__file__))]
    missing = [path for path in paths if not os.path.exists(path)]
    if missing:
        raise SystemExit(
            "repro lint: no such file or directory: "
            + ", ".join(missing)
        )
    result = analyze_paths(paths, project=not args.no_project)
    violations, warnings = result.violations, result.warnings

    baseline_path = args.baseline
    if baseline_path is None and os.path.exists(BASELINE_NAME):
        baseline_path = BASELINE_NAME

    if args.write_baseline:
        target = baseline_path if baseline_path is not None \
            else BASELINE_NAME
        with open(target, "w", encoding="utf-8") as handle:
            handle.write(render_baseline(violations))
        print(
            f"baseline: {len(violations)} finding(s) written to {target}",
            file=stdout,
        )
        return 0

    grandfathered: list = []
    unused: list = []
    if args.strict:
        keys = load_baseline(baseline_path) if baseline_path else set()
        new, grandfathered, unused = partition_violations(violations, keys)
    else:
        new = violations

    summary = f"lint: {summarize(new)}"
    if args.strict:
        summary += (
            f" (strict: {len(grandfathered)} baselined, "
            f"{len(warnings)} warning(s))"
        )
    if args.format == "text":
        lines = [str(violation) for violation in new]
        lines.extend(f"{violation} [baselined]" for violation in grandfathered)
        lines.extend(f"warning: {warning}" for warning in warnings)
        lines.extend(
            f"warning: stale baseline entry matches no finding: "
            f"[{rule}] {path}: {message}"
            for rule, path, message in unused
        )
        if args.out is not None:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write("\n".join([*lines, summary]) + "\n")
            print(f"{summary} -> {args.out}", file=stdout)
        else:
            for line in lines:
                print(line, file=stdout)
            print(summary, file=stdout)
    else:
        if args.format == "json":
            document = to_json(new, warnings, grandfathered=grandfathered)
        else:
            document = to_sarif(new, warnings,
                                grandfathered=grandfathered,
                                track_baseline=args.strict)
        if args.out is not None:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(document)
            print(f"{summary} -> {args.out}", file=stdout)
        else:
            stdout.write(document)
    return 1 if new else 0


def build_audit_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro audit",
        description="Run a synthetic stream under the runtime invariant "
        "verifier (structural checks every tick plus sampled brute-force "
        "K-skyband cross-checks); exits 1 on violations.",
    )
    parser.add_argument(
        "--dataset", default="synthetic",
        choices=["synthetic", "uniform", "correlated", "anticorrelated"],
        help="synthetic distribution ('synthetic' = uniform)",
    )
    parser.add_argument("--steps", type=int, default=500,
                        help="objects to stream (default 500)")
    parser.add_argument("--window", type=int, default=128,
                        help="sliding window size N (default 128)")
    parser.add_argument("--columns", type=int, default=2,
                        help="number of attributes (default 2)")
    parser.add_argument("--k", type=int, default=5,
                        help="query depth k (default 5)")
    parser.add_argument(
        "--scoring", choices=sorted(_SCORING_FACTORIES), default="closest",
        help="scoring function (default: closest)",
    )
    parser.add_argument(
        "--strategy", choices=["auto", "scase", "ta", "basic"],
        default="auto", help="skyband maintenance strategy",
    )
    parser.add_argument("--interval", type=int, default=1,
                        help="run structural checks every this many "
                        "ticks (default 1)")
    parser.add_argument("--cross-check-every", type=int, default=64,
                        help="brute-force K-skyband cross-check every "
                        "this many ticks; 0 disables (default 64)")
    parser.add_argument("--seed", type=int, default=0,
                        help="stream seed (default 0)")
    parser.add_argument("--metrics", default=None, metavar="OUT.json",
                        help="also collect repro.obs metrics and write a "
                        "registry snapshot to this JSON file")
    parser.add_argument("--lint", action="store_true",
                        help="after the runtime checks, run the static "
                        "analyzer in strict mode (repro lint --strict) "
                        "over the installed package and merge exit codes")
    return parser


def run_audit(argv: Sequence[str],
              stdout: Optional[TextIO] = None) -> int:
    """``python -m repro audit`` — exit 1 on invariant violations."""
    from repro.audit.report import format_violations, summarize
    from repro.datasets.synthetic import make_stream

    stdout = stdout if stdout is not None else sys.stdout
    args = build_audit_parser().parse_args(argv)
    if args.steps < 1 or args.window < 2 or args.columns < 1 or args.k < 1:
        raise SystemExit(
            "--steps >= 1, --window >= 2, --columns >= 1 and --k >= 1 "
            "required"
        )
    distribution = "uniform" if args.dataset == "synthetic" else args.dataset
    recorder = None
    if args.metrics is not None:
        from repro.obs import MetricsRecorder

        recorder = MetricsRecorder()
    monitor = TopKPairsMonitor(
        args.window, args.columns, strategy=args.strategy,
        audit=True, audit_interval=args.interval,
        audit_cross_check_interval=args.cross_check_every,
        recorder=recorder,
    )
    # Collect every violation instead of stopping at the first tick.
    monitor.auditor.raise_on_violation = False
    scoring = _SCORING_FACTORIES[args.scoring](args.columns)
    handle = monitor.register_query(scoring, k=args.k, continuous=True)
    stream = make_stream(distribution, args.columns, seed=args.seed)
    for values in itertools.islice(stream, args.steps):
        monitor.append(values)
    auditor = monitor.auditor
    if auditor.violations:
        print(format_violations(auditor.violations), file=stdout)
    print(
        f"audit: {args.steps} objects, {auditor.checks_run} structural "
        f"checks, {auditor.cross_checks_run} brute-force cross-checks, "
        f"final answer {len(monitor.results(handle))} pairs — "
        f"{summarize(auditor.violations)}",
        file=stdout,
    )
    if recorder is not None:
        from repro.obs import write_metrics_json

        write_metrics_json(
            recorder.registry, args.metrics,
            extra={"command": "audit", "steps": args.steps},
        )
        print(f"metrics written to {args.metrics}", file=stdout)
    exit_code = 1 if auditor.violations else 0
    if args.lint:
        lint_code = run_lint(["--strict"], stdout)
        exit_code = exit_code or lint_code
    return exit_code


def build_bench_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="Run a benchmark suite and write its BENCH_*.json "
        "result file (scaled by REPRO_BENCH_SCALE).",
    )
    parser.add_argument(
        "suite", choices=["throughput", "serve"],
        help="benchmark suite to run",
    )
    parser.add_argument("--out", default=None, metavar="OUT.json",
                        help="result file (default: the suite's "
                        "BENCH_*.json in the working directory)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repetitions per arm, best-of "
                        "(default 3)")
    parser.add_argument("--ticks", type=int, default=None,
                        help="measured stream length (default: "
                        "4x the harness TICKS)")
    parser.add_argument("--window", type=int, default=None,
                        help="window size N (default: harness N_DEFAULT)")
    parser.add_argument("--k", type=int, default=None,
                        help="query depth k (default: harness K_DEFAULT)")
    return parser


def run_bench(argv: Sequence[str],
              stdout: Optional[TextIO] = None) -> int:
    """``python -m repro bench <suite>`` — run + write BENCH json."""
    stdout = stdout if stdout is not None else sys.stdout
    args = build_bench_parser().parse_args(argv)
    if args.repeats < 1:
        raise SystemExit("--repeats >= 1 required")
    if args.suite == "serve":
        from repro.bench.serve import (
            DEFAULT_OUTPUT as SERVE_OUTPUT,
            run_serve_bench,
            write_serve_json,
        )

        result = run_serve_bench(window=args.window, k=args.k)
        path = write_serve_json(
            result, args.out if args.out is not None else SERVE_OUTPUT
        )
        ingest = result["ingest"]
        deltas = result["deltas"]
        print(
            f"serve: ingest {ingest['rows_per_sec']:.0f} rows/sec "
            f"(batch {ingest['batch']}), delta latency p50 "
            f"{deltas['latency_us']['p50']:.0f} us / p99 "
            f"{deltas['latency_us']['p99']:.0f} us over "
            f"{deltas['delta_events']} events, replay "
            f"{'consistent' if deltas['replay_consistent'] else 'BROKEN'}, "
            f"checkpoint save "
            f"{result['checkpoint']['save_seconds'] * 1e3:.1f} ms / restore "
            f"{result['checkpoint']['restore_seconds'] * 1e3:.1f} ms replay "
            f"/ {result['checkpoint']['restore_seconds_structural'] * 1e3:.1f}"
            f" ms structural "
            f"({result['checkpoint']['structural_speedup']:.0f}x)",
            file=stdout,
        )
        standby = result["standby"]
        print(
            f"standby: bootstrap {standby['bootstrap_seconds'] * 1e3:.1f} ms "
            f"({standby['bootstrap_objects']} objects), apply lag p50 "
            f"{standby['apply_lag_us']['p50']:.0f} us / p99 "
            f"{standby['apply_lag_us']['p99']:.0f} us over "
            f"{standby['rows']} replicated rows, promote "
            f"{standby['promote_seconds'] * 1e3:.1f} ms to epoch "
            f"{standby['promoted_epoch']}"
            + ("" if standby["caught_up"] else " [NOT CAUGHT UP]"),
            file=stdout,
        )
        tenants = result["multi_tenant"]
        print(
            f"multi-tenant: {tenants['namespaces']} namespaces aggregate "
            f"{tenants['aggregate_rows_per_sec']:.0f} rows/sec "
            f"({tenants['single_tenant_fraction']:.2f}x single-tenant), "
            f"delta p99 median {tenants['delta_p99_us']['median']:.0f} us / "
            f"worst {tenants['delta_p99_us']['max']:.0f} us across tenants",
            file=stdout,
        )
        print(f"written to {path}", file=stdout)
        ok = (deltas["replay_consistent"] and standby["caught_up"]
              and tenants["single_tenant_fraction"] >= 0.8)
        return 0 if ok else 1
    from repro.bench.throughput import (
        DEFAULT_OUTPUT,
        run_throughput,
        write_throughput_json,
    )

    result = run_throughput(
        repeats=args.repeats, k=args.k, window=args.window, ticks=args.ticks
    )
    path = write_throughput_json(
        result, args.out if args.out is not None else DEFAULT_OUTPUT
    )
    for name, workload in result["workloads"].items():
        print(
            f"{name}: {workload['fast']['ticks_per_sec']:.0f} ticks/sec "
            f"fast, {workload['legacy']['ticks_per_sec']:.0f} legacy "
            f"({workload['speedup']:.2f}x), p99 "
            f"{workload['latency_us']['p99']:.0f} us",
            file=stdout,
        )
    print(f"written to {path}", file=stdout)
    return 0


def build_obs_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro obs",
        description="Stream a synthetic dataset through a fully "
        "instrumented monitor (repro.obs) and export the collected "
        "metrics / per-tick trace.",
    )
    parser.add_argument(
        "--dataset", default="synthetic",
        choices=["synthetic", "uniform", "correlated", "anticorrelated"],
        help="synthetic distribution ('synthetic' = uniform)",
    )
    parser.add_argument("--steps", type=int, default=1000,
                        help="objects to stream (default 1000)")
    parser.add_argument("--window", type=int, default=256,
                        help="sliding window size N (default 256)")
    parser.add_argument("--columns", type=int, default=2,
                        help="number of attributes (default 2)")
    parser.add_argument("--k", type=int, default=5,
                        help="query depth k (default 5)")
    parser.add_argument(
        "--scoring", choices=sorted(_SCORING_FACTORIES), default="closest",
        help="scoring function (default: closest)",
    )
    parser.add_argument(
        "--strategy", choices=["auto", "scase", "ta", "basic"],
        default="auto", help="skyband maintenance strategy",
    )
    parser.add_argument("--batch-size", type=int, default=None,
                        help="ingest in batches of this size "
                        "(default: one tick per object)")
    parser.add_argument("--seed", type=int, default=0,
                        help="stream seed (default 0)")
    parser.add_argument(
        "--format", choices=["summary", "prometheus", "json", "jsonl", "csv"],
        default="summary",
        help="output format: human summary, Prometheus text exposition, "
        "JSON registry snapshot, or the per-tick trace as JSON-lines / "
        "CSV (default: summary)",
    )
    parser.add_argument("--out", default="-", metavar="FILE",
                        help="write the formatted output here "
                        "(default '-': stdout)")
    parser.add_argument("--metrics", default=None, metavar="OUT.json",
                        help="additionally write a JSON registry snapshot "
                        "to this file (any --format)")
    return parser


def build_obs_tail_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro obs tail",
        description="Attach to a running server's telemetry sidecar "
        "(repro serve --obs-port) and pretty-print its live ingest "
        "ticks from the /ticks NDJSON stream.",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="sidecar address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, required=True,
                        help="sidecar port (the --obs-port value)")
    parser.add_argument("--backlog", type=int, default=0,
                        help="replay up to this many retained ticks "
                        "before going live (default 0)")
    parser.add_argument("--limit", type=int, default=None,
                        help="exit after this many ticks "
                        "(default: run until the server stops)")
    parser.add_argument("--raw", action="store_true",
                        help="print the NDJSON records verbatim instead "
                        "of the human one-liners")
    parser.add_argument("--timeout", type=float, default=10.0,
                        help="connect timeout in seconds (default 10)")
    return parser


def _format_tick(record: dict) -> str:
    parts = [
        f"tick {record.get('tick', '?')}:",
        f"rows={record.get('rows', '?')}",
        f"deltas={record.get('deltas', '?')}",
    ]
    seconds = record.get("seconds")
    if isinstance(seconds, (int, float)):
        parts.append(f"{seconds * 1e3:.2f}ms")
    trace = record.get("trace")
    if trace:
        parts.append(f"trace={trace}")
    return " ".join(parts)


def run_obs_tail(argv: Sequence[str],
                 stdout: Optional[TextIO] = None) -> int:
    """``python -m repro obs tail`` — live tick stream off the sidecar."""
    import json
    import socket

    stdout = stdout if stdout is not None else sys.stdout
    args = build_obs_tail_parser().parse_args(argv)
    target = f"/ticks?backlog={max(0, args.backlog)}"
    if args.limit is not None:
        target += f"&limit={args.limit}"
    try:
        sock = socket.create_connection((args.host, args.port),
                                        timeout=args.timeout)
    except OSError as exc:
        raise SystemExit(
            f"repro obs tail: cannot reach {args.host}:{args.port} "
            f"({exc}); is the server running with --obs-port?"
        ) from exc
    seen = 0
    try:
        sock.sendall(
            f"GET {target} HTTP/1.0\r\nHost: {args.host}\r\n\r\n"
            .encode("latin-1")
        )
        # Live tailing blocks indefinitely between ticks by design; the
        # timeout only guards the connect + handshake above.
        sock.settimeout(None)
        handle = sock.makefile("r", encoding="utf-8")
        status = handle.readline().split()
        if len(status) < 2 or status[1] != "200":
            raise SystemExit(
                f"repro obs tail: sidecar answered "
                f"{' '.join(status) or 'nothing'}"
            )
        for line in handle:  # drain response headers
            if line in ("\r\n", "\n"):
                break
        try:
            for line in handle:
                if not line.strip():
                    continue
                if args.raw:
                    print(line.rstrip("\n"), file=stdout, flush=True)
                else:
                    print(_format_tick(json.loads(line)), file=stdout,
                          flush=True)
                seen += 1
        except KeyboardInterrupt:
            pass
    finally:
        sock.close()
    print(f"tailed {seen} tick(s)", file=stdout)
    return 0


def run_obs(argv: Sequence[str],
            stdout: Optional[TextIO] = None) -> int:
    """``python -m repro obs`` — instrumented synthetic run + export
    (``obs tail`` attaches to a live sidecar instead)."""
    if argv and argv[0] == "tail":
        return run_obs_tail(list(argv[1:]), stdout)
    from repro.datasets.synthetic import make_stream
    from repro.obs import (
        MetricsRecorder,
        to_prometheus,
        write_metrics_json,
        write_tick_csv,
        write_tick_jsonl,
    )

    stdout = stdout if stdout is not None else sys.stdout
    args = build_obs_parser().parse_args(argv)
    if args.steps < 1 or args.window < 2 or args.columns < 1 or args.k < 1:
        raise SystemExit(
            "--steps >= 1, --window >= 2, --columns >= 1 and --k >= 1 "
            "required"
        )
    distribution = "uniform" if args.dataset == "synthetic" else args.dataset
    recorder = MetricsRecorder()
    monitor = TopKPairsMonitor(
        args.window, args.columns, strategy=args.strategy, recorder=recorder,
    )
    scoring = _SCORING_FACTORIES[args.scoring](args.columns)
    handle = monitor.register_query(scoring, k=args.k, continuous=True)
    stream = make_stream(distribution, args.columns, seed=args.seed)
    rows = list(itertools.islice(stream, args.steps))
    monitor.extend(rows, batch_size=args.batch_size)
    monitor.results(handle)

    registry = recorder.registry
    if args.out == "-":
        out, close = stdout, False
    else:
        out, close = open(args.out, "w", encoding="utf-8"), True
    try:
        if args.format == "prometheus":
            out.write(to_prometheus(registry))
        elif args.format == "json":
            write_metrics_json(registry, out,
                               extra={"command": "obs", "steps": args.steps})
        elif args.format == "jsonl":
            write_tick_jsonl(recorder.events, out)
        elif args.format == "csv":
            write_tick_csv(recorder.events, out)
        else:
            ticks = registry.value("repro_ticks_total")
            append = registry.get("repro_append_seconds").solo
            mean_us = append.mean() * 1e6 if append.count else 0.0
            print(
                f"obs: {args.steps} objects in {ticks:g} ticks, "
                f"mean append {mean_us:.1f} us, "
                f"skyband size {registry.value('repro_skyband_size'):g}, "
                f"PST rebuilds "
                f"{registry.value('repro_pst_rebuilds_total'):g}, "
                f"{len(registry)} metric families",
                file=out,
            )
    finally:
        if close:
            out.close()
    if args.metrics is not None:
        write_metrics_json(registry, args.metrics,
                           extra={"command": "obs", "steps": args.steps})
        print(f"metrics written to {args.metrics}", file=stdout)
    return 0


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Serve a monitor over TCP: NDJSON request/response "
        "protocol with pub/sub answer deltas and checkpoint/restore "
        "(docs/serving.md).  Runs until SIGINT/SIGTERM or a client's "
        "shutdown op, then drains gracefully.",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=7807,
                        help="TCP port; 0 picks a free port and announces "
                        "it (default 7807)")
    parser.add_argument("--window", type=int, default=1000,
                        help="sliding window size N (default 1000)")
    parser.add_argument("--columns", type=int, required=True,
                        help="number of attributes per row")
    parser.add_argument("--horizon", type=float, default=None,
                        help="time horizon T for time-based expiry "
                        "(default: count-based window only)")
    parser.add_argument(
        "--strategy", choices=["auto", "scase", "ta", "basic"],
        default="auto", help="skyband maintenance strategy",
    )
    parser.add_argument(
        "--backpressure", choices=["block", "drop"], default="block",
        help="full-subscriber-queue policy: 'block' delays ingest acks, "
        "'drop' discards the delta and marks the subscriber lagged "
        "(default block)",
    )
    parser.add_argument("--queue-depth", type=int, default=64,
                        help="per-subscriber event queue bound (default 64)")
    parser.add_argument(
        "--tenants", default=None, metavar="TENANTS.toml",
        help="serve many isolated namespaces from this tenants file "
        "(TOML or JSON: bearer tokens + quotas per tenant; manage it "
        "with 'repro tenants'); clients bind a namespace with the auth "
        "op, SIGHUP hot-reloads the file (docs/serving.md)",
    )
    parser.add_argument("--mux-pending", type=int, default=4,
                        help="per-namespace ingest queue bound in the "
                        "fair multiplexer (multi-tenant only, default 4)")
    parser.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                        help="resolve relative checkpoint paths here "
                        "(per-namespace <ns>.ckpt files land here on a "
                        "multi-tenant server)")
    parser.add_argument("--restore", default=None, metavar="CKPT.json",
                        help="warm-start from this checkpoint before "
                        "serving (with --tenants: a directory of "
                        "per-namespace <ns>.ckpt files)")
    parser.add_argument(
        "--restore-mode", choices=["structural", "replay"],
        default="structural",
        help="how --restore rebuilds engine state: 'structural' "
        "bulk-loads the serialized skybands (fast), 'replay' re-ingests "
        "the window through the engine (slow oracle; also the v1 "
        "fallback) (default structural)",
    )
    parser.add_argument(
        "--standby", default=None, metavar="HOST:PORT",
        help="run as a warm standby of the primary at HOST:PORT: "
        "bootstrap from a shipped checkpoint, tail its replication "
        "feed, reject ingest until promoted ('repro client promote')",
    )
    parser.add_argument(
        "--standby-delta-log", default=None, metavar="OUT.jsonl",
        help="journal every replicated answer delta to this JSONL file "
        "(standby mode only)",
    )
    parser.add_argument("--checkpoint-on-exit", default=None,
                        metavar="CKPT.json",
                        help="write a final checkpoint during shutdown")
    parser.add_argument("--audit", action="store_true",
                        help="run the engine under the runtime invariant "
                        "verifier (slow; for debugging)")
    parser.add_argument("--metrics", default=None, metavar="OUT.json",
                        help="write a metrics registry snapshot on exit")
    parser.add_argument("--obs-port", type=int, default=None,
                        help="also serve the telemetry HTTP sidecar "
                        "(/metrics, /healthz, /varz, /tracez, /ticks) on "
                        "this port; 0 picks a free port and announces it "
                        "(default: no sidecar)")
    parser.add_argument("--obs-host", default="127.0.0.1",
                        help="sidecar bind address (default 127.0.0.1)")
    parser.add_argument("--trace-capacity", type=int, default=512,
                        help="finished spans kept for /tracez; 0 disables "
                        "request tracing entirely (default 512)")
    parser.add_argument("--flight-dir", default=".", metavar="DIR",
                        help="directory for flight-recorder JSONL dumps "
                        "(default: working directory)")
    parser.add_argument("--slow-tick-ms", type=float, default=None,
                        help="dump the flight recorder when an ingest "
                        "tick exceeds this many milliseconds "
                        "(default: disabled)")
    return parser


def run_serve(argv: Sequence[str],
              stdout: Optional[TextIO] = None) -> int:
    """``python -m repro serve`` — run the server on the main thread."""
    import asyncio

    from repro.exceptions import TenantConfigError
    from repro.obs.flight import FlightRecorder
    from repro.obs.spans import NULL_SPANS, SpanRecorder
    from repro.serve.checkpoint import (
        restore_namespace_checkpoints,
        restore_server_monitor,
        save_checkpoint,
    )
    from repro.serve.server import ServeServer
    from repro.serve.session import ServerMonitor
    from repro.serve.standby import connect_standby
    from repro.serve.tenancy import NamespaceRegistry

    stdout = stdout if stdout is not None else sys.stdout
    args = build_serve_parser().parse_args(argv)
    if args.window < 2 or args.columns < 1 or args.queue_depth < 1:
        raise SystemExit(
            "--window >= 2, --columns >= 1 and --queue-depth >= 1 required"
        )
    if args.trace_capacity < 0:
        raise SystemExit("--trace-capacity >= 0 required")
    if args.mux_pending < 1:
        raise SystemExit("--mux-pending >= 1 required")
    if args.standby is not None and args.restore is not None:
        raise SystemExit("--standby and --restore are mutually exclusive "
                         "(a standby bootstraps from the primary)")
    if args.standby_delta_log is not None and args.standby is None:
        raise SystemExit("--standby-delta-log requires --standby")
    spans = (SpanRecorder(args.trace_capacity)
             if args.trace_capacity > 0 else NULL_SPANS)
    flight = FlightRecorder(
        dump_dir=args.flight_dir,
        slow_tick_seconds=(args.slow_tick_ms / 1e3
                           if args.slow_tick_ms is not None else None),
    )
    # Finished spans tee into the flight recorder so post-mortem dumps
    # carry the request story, not just tick summaries.
    if spans is not NULL_SPANS:
        spans.sink = flight.record_span
    registry: Optional[NamespaceRegistry] = None
    if args.tenants is not None:
        def factory(name, spec):
            # Each tenant gets its own engine; a max_window_objects
            # quota caps the window below the server-wide default.
            window = args.window
            if spec.quotas.max_window_objects is not None:
                window = min(window, spec.quotas.max_window_objects)
            return ServerMonitor(
                window, args.columns, time_horizon=args.horizon,
                strategy=args.strategy, audit=args.audit, spans=spans,
            )
        try:
            registry = NamespaceRegistry.from_file(args.tenants, factory)
        except TenantConfigError as exc:
            raise SystemExit(f"repro serve: {exc}") from exc
    tailer = None
    session = None
    if args.standby is not None:
        host, _, port_text = args.standby.rpartition(":")
        if not host or not port_text.isdigit():
            raise SystemExit(
                f"--standby needs HOST:PORT, got {args.standby!r}"
            )
        restored, tailer = connect_standby(
            host, int(port_text), mode=args.restore_mode,
            audit=args.audit, delta_log=args.standby_delta_log,
            registry=registry,
        )
        if registry is None:
            session = restored
            session.spans = spans
        else:
            for namespace in registry.namespaces():
                namespace.session.spans = spans
    elif args.restore is not None:
        if registry is not None:
            restored_sessions = restore_namespace_checkpoints(
                args.restore, mode=args.restore_mode, audit=args.audit,
            )
            for name, restored in restored_sessions.items():
                restored.spans = spans
                registry.install(name, restored)
        else:
            session = restore_server_monitor(args.restore,
                                             mode=args.restore_mode,
                                             audit=args.audit)
            session.spans = spans
    elif registry is None:
        session = ServerMonitor(
            args.window, args.columns, time_horizon=args.horizon,
            strategy=args.strategy, audit=args.audit, spans=spans,
        )
    if session is not None \
            and (args.restore is not None or args.standby is not None):
        if session.config["num_attributes"] != args.columns:
            raise SystemExit(
                f"--columns {args.columns} does not match the checkpoint's "
                f"{session.config['num_attributes']} attributes"
            )
    server = ServeServer(
        session, host=args.host, port=args.port,
        backpressure=args.backpressure, queue_depth=args.queue_depth,
        checkpoint_dir=args.checkpoint_dir,
        spans=spans,
        flight=flight, obs_port=args.obs_port, obs_host=args.obs_host,
        role="standby" if tailer is not None else "primary",
        standby=tailer,
        tenants=registry,
        mux_pending=args.mux_pending,
    )

    async def serve() -> None:
        await server.start()
        server.install_signal_handlers()
        # Announce the resolved port (flushed: subprocess harnesses wait
        # for this line before connecting).
        print(f"repro serve: listening on {server.host}:{server.port}",
              file=stdout, flush=True)
        if registry is not None:
            print(f"repro serve: {len(registry.specs)} tenant(s) from "
                  f"{args.tenants} (SIGHUP reloads)",
                  file=stdout, flush=True)
        if tailer is not None:
            if session is not None:
                print(f"repro serve: standby of {tailer.primary} at seq "
                      f"{session.monitor.manager.now_seq} "
                      f"(epoch {session.epoch})",
                      file=stdout, flush=True)
            else:
                print(f"repro serve: standby of {tailer.primary} tailing "
                      f"{len(registry)} namespace(s)",
                      file=stdout, flush=True)
        if server.obs is not None:
            print(f"repro serve: telemetry on "
                  f"http://{server.obs.host}:{server.obs.port}",
                  file=stdout, flush=True)
        await server.serve_until_stopped()

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        pass  # loops without signal-handler support: exit the drain path
    if args.checkpoint_on_exit is not None:
        if registry is not None:
            # Multi-tenant: the value is a directory of <ns>.ckpt files
            # (the layout restore_namespace_checkpoints reads back).
            os.makedirs(args.checkpoint_on_exit, exist_ok=True)
            for namespace in registry.namespaces():
                target = os.path.join(args.checkpoint_on_exit,
                                      f"{namespace.name}.ckpt")
                meta = save_checkpoint(namespace.session, target)
                print(
                    f"repro serve: checkpoint {meta['path']} "
                    f"({meta['objects']} objects, "
                    f"{meta['queries']} queries)",
                    file=stdout, flush=True,
                )
        else:
            meta = save_checkpoint(session, args.checkpoint_on_exit)
            print(
                f"repro serve: checkpoint {meta['path']} "
                f"({meta['objects']} objects, {meta['queries']} queries)",
                file=stdout, flush=True,
            )
    if args.metrics is not None:
        from repro.obs import write_metrics_json

        write_metrics_json(server.registry, args.metrics,
                           extra={"command": "serve"})
        print(f"metrics written to {args.metrics}", file=stdout, flush=True)
    return 0


def build_client_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro client",
        description="Talk to a running 'repro serve' instance: ingest "
        "CSV rows, take snapshots, watch a query's live deltas, or "
        "manage the server.",
    )
    parser.add_argument(
        "action",
        choices=["ingest", "snapshot", "watch", "stats", "checkpoint",
                 "promote", "epoch", "shutdown"],
        help="what to do",
    )
    parser.add_argument("csv_file", nargs="?", default="-",
                        help="CSV input for 'ingest' ('-': stdin)")
    parser.add_argument("--host", default="127.0.0.1",
                        help="server address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, required=True,
                        help="server port")
    parser.add_argument("--namespace", default=None, metavar="NS",
                        help="authenticate into this namespace first "
                        "(multi-tenant servers; needs --token)")
    parser.add_argument("--token", default=None,
                        help="bearer token for --namespace (or the admin "
                        "token with --admin)")
    parser.add_argument("--admin", action="store_true",
                        help="authenticate --token as the admin token "
                        "(checkpoint --all, promote, shutdown on "
                        "multi-tenant servers)")
    parser.add_argument("--all", action="store_true",
                        help="'checkpoint' every namespace (scope \"all\"; "
                        "admin only on multi-tenant servers)")
    parser.add_argument("--columns", type=int, default=None,
                        help="attribute columns (required for 'ingest')")
    parser.add_argument("--scoring", choices=sorted(_SCORING_FACTORIES),
                        default="closest",
                        help="scoring function for snapshot/watch "
                        "(default closest)")
    parser.add_argument("--k", type=int, default=5,
                        help="pairs to report (default 5)")
    parser.add_argument("--n", type=int, default=None,
                        help="query window n <= N (default: N)")
    parser.add_argument("--batch", type=int, default=256,
                        help="ingest batch size (default 256)")
    parser.add_argument("--skip-header", action="store_true",
                        help="ignore the first CSV row on ingest")
    parser.add_argument("--events", type=int, default=None,
                        help="stop 'watch' after this many delta events "
                        "(default: run until the server says bye)")
    parser.add_argument("--path", default="checkpoint.json",
                        help="checkpoint path for 'checkpoint' "
                        "(default checkpoint.json)")
    parser.add_argument("--timeout", type=float, default=10.0,
                        help="request timeout in seconds (default 10)")
    return parser


def _client_print_answer(answer, tick: int, out: TextIO) -> None:
    print(f"-- tick {tick}: {len(answer)} pairs --", file=out)
    for rank, pair in enumerate(answer, start=1):
        print(
            f"   #{rank}: rows {pair['older']} & {pair['newer']}  "
            f"score={pair['score']:.6g}",
            file=out,
        )


def run_client(argv: Sequence[str],
               stdin: Optional[TextIO] = None,
               stdout: Optional[TextIO] = None) -> int:
    """``python -m repro client <action>`` — one request (or a watch)."""
    import json

    from repro.serve.client import ServeClient, apply_delta

    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    # intermixed: the csv_file positional may follow the option flags
    args = build_client_parser().parse_intermixed_args(argv)
    if args.namespace is not None and args.admin:
        raise SystemExit("--namespace and --admin are mutually exclusive "
                         "(one connection, one principal)")
    with ServeClient(args.host, args.port, timeout=args.timeout) as client:
        if args.admin:
            client.auth(token=args.token, admin=True)
        elif args.namespace is not None:
            client.auth(args.namespace, args.token)
        if args.action == "ingest":
            if args.columns is None or args.columns < 1:
                raise SystemExit("'ingest' requires --columns >= 1")
            if args.csv_file == "-":
                source, close = stdin, False
            else:
                source = open(args.csv_file, newline="")
                close = True
            total = now_seq = 0
            try:
                rows = _rows(source, args.columns, args.skip_header)
                while True:
                    batch = list(itertools.islice(rows, args.batch))
                    if not batch:
                        break
                    ack = client.ingest(batch)
                    total += ack["ingested"]
                    now_seq = ack["now_seq"]
            finally:
                if close:
                    source.close()
            print(f"ingested {total} rows (stream is at seq {now_seq})",
                  file=stdout)
        elif args.action == "snapshot":
            response = client.request(
                "snapshot", scoring=args.scoring, k=args.k, n=args.n,
            )
            _client_print_answer(response["answer"], response["tick"],
                                 stdout)
        elif args.action == "watch":
            query = client.register(args.scoring, args.k, args.n)
            answer = client.subscribe(query)
            print(f"watching {query} ({args.scoring}, k={args.k}); "
                  f"Ctrl-C to stop", file=stdout, flush=True)
            seen = 0
            try:
                while args.events is None or seen < args.events:
                    event = client.next_event(timeout=None)
                    if event is None or event.get("event") == "bye":
                        break
                    if event.get("event") != "delta" \
                            or event.get("query") != query:
                        continue
                    apply_delta(answer, event)
                    seen += 1
                    ranked = sorted(answer.values(),
                                    key=lambda p: p["score"])
                    _client_print_answer(ranked, event["tick"], stdout)
            except KeyboardInterrupt:
                pass
            print(f"watched {seen} delta events", file=stdout)
        elif args.action == "stats":
            json.dump(client.stats(metrics=True), stdout, indent=2,
                      sort_keys=True)
            stdout.write("\n")
        elif args.action == "checkpoint":
            if args.all:
                meta = client.checkpoint(scope="all")
                names = ", ".join(meta["namespaces"]) or "(none)"
                print(
                    f"checkpointed namespaces {names} in "
                    f"{meta['seconds'] * 1e3:.1f} ms",
                    file=stdout,
                )
            else:
                meta = client.checkpoint(args.path)
                print(
                    f"checkpoint {meta['path']}: {meta['objects']} objects, "
                    f"{meta['queries']} queries, {meta['bytes']} bytes in "
                    f"{meta['seconds'] * 1e3:.1f} ms",
                    file=stdout,
                )
        elif args.action == "promote":
            ack = client.promote()
            if "namespaces" in ack:
                detail = ", ".join(
                    f"{name} at epoch {entry['epoch']}"
                    for name, entry in sorted(ack["namespaces"].items())
                ) or "(no namespaces)"
                print(f"promoted to primary: {detail}", file=stdout)
            else:
                print(
                    f"promoted to primary at epoch {ack['epoch']} "
                    f"(stream is at seq {ack['now_seq']})",
                    file=stdout,
                )
        elif args.action == "epoch":
            ack = client.epoch()
            json.dump({key: ack[key] for key in ack
                       if key not in ("ok", "op", "id")},
                      stdout, indent=2, sort_keys=True)
            stdout.write("\n")
        else:  # shutdown
            client.shutdown()
            print("server is shutting down", file=stdout)
    return 0


def build_tenants_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro tenants",
        description="Manage a multi-tenant server's tenants file "
        "(repro serve --tenants): list tenants, create one (minting its "
        "bearer token), or revoke one.  Writes are JSON-only (TOML "
        "files are hand-edited so comments survive); a running server "
        "picks changes up on SIGHUP.",
    )
    parser.add_argument("action", choices=["list", "create", "revoke"],
                        help="what to do")
    parser.add_argument("name", nargs="?", default=None,
                        help="namespace name (create/revoke)")
    parser.add_argument("--file", required=True, metavar="TENANTS.json",
                        help="the tenants file ('create' starts a new one "
                        "when it does not exist yet, minting an admin "
                        "token)")
    parser.add_argument("--token", default=None,
                        help="bearer token for 'create' (default: a "
                        "freshly minted random token, printed once)")
    parser.add_argument(
        "--quota", action="append", default=[], metavar="FIELD=VALUE",
        help="quota for 'create' (repeatable): max_window_objects, "
        "max_queries, max_subscribers, ingest_rows_per_sec, burst_rows",
    )
    return parser


def run_tenants(argv: Sequence[str],
                stdout: Optional[TextIO] = None) -> int:
    """``python -m repro tenants`` — edit/inspect a tenants file."""
    import json
    import secrets

    from repro.exceptions import TenantConfigError
    from repro.serve.tenancy import (
        TenantQuotas,
        TenantSpec,
        load_tenants_file,
        save_tenants_file,
        valid_namespace,
    )

    stdout = stdout if stdout is not None else sys.stdout
    args = build_tenants_parser().parse_args(argv)
    new_file = not os.path.exists(args.file)
    if new_file:
        if args.action != "create":
            raise SystemExit(
                f"repro tenants: no such tenants file {args.file!r}"
            )
        specs, admin_token = {}, None
    else:
        try:
            specs, admin_token = load_tenants_file(args.file)
        except TenantConfigError as exc:
            raise SystemExit(f"repro tenants: {exc}") from exc

    if args.action == "list":
        for name in sorted(specs):
            spec = specs[name]
            quotas = spec.quotas.spec()
            quota_text = ", ".join(
                f"{field}={value}"
                for field, value in sorted(quotas.items())
            ) or "unlimited"
            flag = "  [revoked]" if spec.revoked else ""
            print(f"{name}: token sha256:{spec.fingerprint()}  "
                  f"quotas: {quota_text}{flag}", file=stdout)
        print(
            f"{len(specs)} tenant(s) in {args.file}"
            + (", admin token set" if admin_token else ", no admin token"),
            file=stdout,
        )
        return 0

    if args.name is None or not valid_namespace(args.name):
        raise SystemExit(
            f"repro tenants: '{args.action}' needs a valid namespace "
            f"name, got {args.name!r}"
        )
    if args.action == "create":
        if args.name in specs:
            raise SystemExit(
                f"repro tenants: tenant {args.name!r} already exists in "
                f"{args.file}"
            )
        quota_spec: dict = {}
        for item in args.quota:
            field, eq, value = item.partition("=")
            if not eq:
                raise SystemExit(
                    f"repro tenants: --quota needs FIELD=VALUE, "
                    f"got {item!r}"
                )
            try:
                quota_spec[field] = json.loads(value)
            except ValueError as exc:
                raise SystemExit(
                    f"repro tenants: --quota {field} value {value!r} is "
                    f"not a number"
                ) from exc
        token = args.token if args.token is not None \
            else secrets.token_hex(16)
        try:
            spec = TenantSpec(args.name, token,
                              TenantQuotas.from_spec(quota_spec))
            if new_file:
                admin_token = secrets.token_hex(16)
            specs[args.name] = spec
            save_tenants_file(args.file, specs, admin_token)
        except TenantConfigError as exc:
            raise SystemExit(f"repro tenants: {exc}") from exc
        print(f"created tenant {args.name!r} in {args.file}", file=stdout)
        if args.token is None:
            # The token is only recoverable from the file itself from
            # now on; 'list' shows fingerprints, never secrets.
            print(f"token: {token}", file=stdout)
        if new_file:
            print(f"admin token: {admin_token}", file=stdout)
        return 0

    # revoke
    spec = specs.get(args.name)
    if spec is None:
        raise SystemExit(
            f"repro tenants: no tenant {args.name!r} in {args.file}"
        )
    spec.revoked = True
    try:
        save_tenants_file(args.file, specs, admin_token)
    except TenantConfigError as exc:
        raise SystemExit(f"repro tenants: {exc}") from exc
    print(
        f"revoked tenant {args.name!r}; a running server drops its "
        f"connections on the next SIGHUP reload",
        file=stdout,
    )
    return 0


def main(argv: Optional[Sequence[str]] = None, *,
         stdin: Optional[TextIO] = None,
         stdout: Optional[TextIO] = None) -> int:
    """Entry point; returns the process exit code.

    Dispatches the ``lint``, ``audit``, ``obs``, ``bench``, ``serve``,
    ``client`` and ``tenants`` subcommands; any other invocation is the CSV
    monitoring tool (whose ``csv_file`` positional can never collide
    with the subcommand names — CSV input named ``lint`` must be passed
    as ``./lint``).
    """
    argv = list(argv) if argv is not None else sys.argv[1:]
    if argv and argv[0] in ("--version", "-V"):
        from repro import __version__

        print(f"repro {__version__}",
              file=stdout if stdout is not None else sys.stdout)
        return 0
    if argv and argv[0] == "lint":
        return run_lint(argv[1:], stdout)
    if argv and argv[0] == "audit":
        return run_audit(argv[1:], stdout)
    if argv and argv[0] == "bench":
        return run_bench(argv[1:], stdout)
    if argv and argv[0] == "obs":
        return run_obs(argv[1:], stdout)
    if argv and argv[0] == "serve":
        return run_serve(argv[1:], stdout)
    if argv and argv[0] == "client":
        from repro.exceptions import ServeError

        try:
            return run_client(argv[1:], stdin, stdout)
        except ServeError as exc:
            raise SystemExit(f"repro client: {exc}") from exc
    if argv and argv[0] == "tenants":
        return run_tenants(argv[1:], stdout)
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    args = build_parser().parse_args(argv)
    if args.k < 1 or args.window < 2 or args.columns < 1:
        raise SystemExit("--k >= 1, --window >= 2 and --columns >= 1 required")

    scoring = _SCORING_FACTORIES[args.scoring](args.columns)
    monitor = TopKPairsMonitor(
        args.window, args.columns, strategy=args.strategy
    )
    handle = monitor.register_query(
        scoring, k=args.k, n=args.n, continuous=True
    )

    if args.csv_file == "-":
        source = stdin
        close = False
    else:
        source = open(args.csv_file, newline="")
        close = True
    try:
        tick = 0
        for values in _rows(source, args.columns, args.skip_header):
            monitor.append(values)
            tick += 1
            if tick % args.report_every == 0:
                _print_report(monitor, handle, tick, stdout)
        if tick % args.report_every != 0 or tick == 0:
            _print_report(monitor, handle, tick, stdout)
        print(
            f"-- done: {tick} rows, skyband size "
            f"{monitor.skyband_size(scoring)} --", file=stdout,
        )
    finally:
        if close:
            source.close()
    return 0
