"""Command-line interface: monitor top-k pairs over a CSV stream.

Feeds rows from a CSV file (or stdin) through a
:class:`~repro.core.monitor.TopKPairsMonitor` and periodically prints the
current top-k pairs — a ready-made tool for trying the library on real
data without writing code.

Usage examples::

    # 3 closest pairs over the last 1000 rows of a 2-column CSV
    python -m repro --columns 2 --scoring closest --k 3 --window 1000 data.csv

    # most dissimilar pairs, report every 500 rows, stream from stdin
    cat data.csv | python -m repro --columns 4 --scoring dissimilar \
        --k 5 --window 2000 --report-every 500

Scoring functions: ``closest`` (s1), ``furthest`` (s2), ``similar`` (s3),
``dissimilar`` (s4), each over all ``--columns`` attributes.
"""

from __future__ import annotations

import argparse
import csv
import sys
from typing import Iterator, Optional, Sequence, TextIO

from repro.core.monitor import TopKPairsMonitor
from repro.scoring.library import (
    k_closest_pairs,
    k_furthest_pairs,
    top_k_dissimilar_pairs,
    top_k_similar_pairs,
)

__all__ = ["main", "build_parser"]

_SCORING_FACTORIES = {
    "closest": k_closest_pairs,
    "furthest": k_furthest_pairs,
    "similar": top_k_similar_pairs,
    "dissimilar": top_k_dissimilar_pairs,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Continuously monitor top-k pairs over a CSV stream "
        "(Shen et al., ICDE 2012).",
    )
    parser.add_argument(
        "csv_file", nargs="?", default="-",
        help="CSV input ('-' or omitted: read stdin)",
    )
    parser.add_argument(
        "--columns", type=int, required=True,
        help="number of leading numeric columns to use as attributes",
    )
    parser.add_argument(
        "--scoring", choices=sorted(_SCORING_FACTORIES), default="closest",
        help="scoring function over the attributes (default: closest)",
    )
    parser.add_argument("--k", type=int, default=5, help="pairs to report")
    parser.add_argument(
        "--window", type=int, default=1000,
        help="sliding window size N (count-based)",
    )
    parser.add_argument(
        "--n", type=int, default=None,
        help="query window n <= N (default: N)",
    )
    parser.add_argument(
        "--report-every", type=int, default=1000,
        help="print the current top-k after this many rows",
    )
    parser.add_argument(
        "--skip-header", action="store_true",
        help="ignore the first CSV row",
    )
    parser.add_argument(
        "--strategy", choices=["auto", "scase", "ta", "basic"],
        default="auto", help="skyband maintenance strategy",
    )
    return parser


def _rows(handle: TextIO, columns: int, skip_header: bool) -> Iterator[tuple]:
    reader = csv.reader(handle)
    for index, row in enumerate(reader):
        if index == 0 and skip_header:
            continue
        if len(row) < columns:
            raise SystemExit(
                f"row {index + 1} has {len(row)} columns, "
                f"need at least {columns}"
            )
        try:
            yield tuple(float(cell) for cell in row[:columns])
        except ValueError as exc:
            raise SystemExit(f"row {index + 1}: {exc}") from exc


def _print_report(monitor: TopKPairsMonitor, handle, tick: int,
                  out: TextIO) -> None:
    print(f"-- after {tick} rows: top-{handle.query.k} pairs "
          f"(window n={handle.query.n}) --", file=out)
    results = monitor.results(handle)
    if not results:
        print("   (no pairs in the window yet)", file=out)
    for rank, pair in enumerate(results, start=1):
        print(
            f"   #{rank}: rows {pair.older.seq} & {pair.newer.seq}  "
            f"score={pair.score:.6g}  "
            f"values {pair.older.values} / {pair.newer.values}",
            file=out,
        )


def main(argv: Optional[Sequence[str]] = None, *,
         stdin: Optional[TextIO] = None,
         stdout: Optional[TextIO] = None) -> int:
    """Entry point; returns the process exit code."""
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    args = build_parser().parse_args(argv)
    if args.k < 1 or args.window < 2 or args.columns < 1:
        raise SystemExit("--k >= 1, --window >= 2 and --columns >= 1 required")

    scoring = _SCORING_FACTORIES[args.scoring](args.columns)
    monitor = TopKPairsMonitor(
        args.window, args.columns, strategy=args.strategy
    )
    handle = monitor.register_query(
        scoring, k=args.k, n=args.n, continuous=True
    )

    if args.csv_file == "-":
        source = stdin
        close = False
    else:
        source = open(args.csv_file, newline="")
        close = True
    try:
        tick = 0
        for values in _rows(source, args.columns, args.skip_header):
            monitor.append(values)
            tick += 1
            if tick % args.report_every == 0:
                _print_report(monitor, handle, tick, stdout)
        if tick % args.report_every != 0 or tick == 0:
            _print_report(monitor, handle, tick, stdout)
        print(
            f"-- done: {tick} rows, skyband size "
            f"{monitor.skyband_size(scoring)} --", file=stdout,
        )
    finally:
        if close:
            source.close()
    return 0
