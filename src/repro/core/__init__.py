"""The paper's primary contribution: pairs in (age, score) space,
K-skyband + K-staircase maintenance, PST-based snapshot answering,
incremental continuous answering, and the multi-query monitor."""

from repro.core.continuous import ContinuousQueryState
from repro.core.maintenance import (
    SCaseMaintainer,
    SkybandDelta,
    SkybandMaintainer,
    TAMaintainer,
)
from repro.core.monitor import QueryHandle, TopKPairsMonitor
from repro.core.pair import Pair, dominates, make_pair, window_age_key_bound
from repro.core.query import TopKPairsQuery, answer_snapshot
from repro.core.skyband_update import update_skyband_and_staircase
from repro.core.staircase import KStaircase

__all__ = [
    "ContinuousQueryState",
    "KStaircase",
    "Pair",
    "QueryHandle",
    "SCaseMaintainer",
    "SkybandDelta",
    "SkybandMaintainer",
    "TAMaintainer",
    "TopKPairsMonitor",
    "TopKPairsQuery",
    "answer_snapshot",
    "dominates",
    "make_pair",
    "update_skyband_and_staircase",
    "window_age_key_bound",
]
