"""Continuous query answering (paper §IV-B).

A continuous query keeps its current top-k answer in two orders — by score
(to know the k-th best score) and by age (to detect pairs sliding out of
the query's window) — and refreshes it incrementally on every stream tick:

1. drop answer pairs that left the skyband (expired from the maximum
   window or dominated out);
2. drop answer pairs whose age exceeded the query's own window ``n``;
3. merge the tick's newly added skyband pairs, which arrive sorted
   ascending by score: a new in-window pair enters while the answer is
   short or while it beats the current k-th best score, evicting the worst
   member; the merge stops at the first pair that cannot enter;
4. if fewer than ``k`` pairs remain, recompute from scratch with the
   snapshot algorithm — the paper shows this happens with probability
   only ``O(k/n)`` per update, so the expected amortized cost stays
   ``O(k/n (log |SKB| + k))``.
"""

from __future__ import annotations

from bisect import insort
from typing import Optional

from repro.analysis.cost_model import Counters
from repro.core.maintenance import SkybandDelta
from repro.core.pair import Pair
from repro.core.query import TopKPairsQuery, answer_snapshot
from repro.structures.pst import PrioritySearchTree

__all__ = ["ContinuousQueryState"]


class ContinuousQueryState:
    """The live answer of one continuous top-k pairs query."""

    def __init__(
        self,
        query: TopKPairsQuery,
        *,
        counters: Optional[Counters] = None,
        on_change=None,
    ) -> None:
        self.query = query
        self.counters = counters
        self.recompute_count = 0
        #: optional ``on_change(entered, left)`` callback, invoked after a
        #: tick whose refresh changed the answer set (lists of pairs)
        self.on_change = on_change
        self._by_score: list[Pair] = []  # ascending score_key
        self._by_age: list[Pair] = []    # ascending age_key (newest first)

    # ------------------------------------------------------------------
    @property
    def answer(self) -> list[Pair]:
        """The current top-k pairs, ascending by score (do not mutate)."""
        return self._by_score

    def __len__(self) -> int:
        return len(self._by_score)

    # ------------------------------------------------------------------
    def initialize(self, pst: PrioritySearchTree, now_seq: int) -> None:
        """Compute the initial answer with the snapshot algorithm."""
        answer = answer_snapshot(
            pst, self.query.k, self.query.n, now_seq, counters=self.counters
        )
        self._by_score = list(answer)
        self._by_age = sorted(answer, key=lambda p: p.age_key)

    def apply(
        self,
        delta: SkybandDelta,
        pst: PrioritySearchTree,
        now_seq: int,
    ) -> list[Pair]:
        """Refresh the answer after one stream tick; returns it."""
        k, n = self.query.k, self.query.n
        before = (
            {p.uid: p for p in self._by_score}
            if self.on_change is not None
            else None
        )
        self._drop_departed(delta)
        self._drop_out_of_window(now_seq, n)
        if len(self._by_score) < k:
            # A slot opened: the rightful occupant may be an *old* skyband
            # pair that merging new arrivals would never surface, so fall
            # back to the snapshot algorithm (probability O(k/n) per
            # update — paper §IV-B).
            if self.counters is not None:
                self.counters.recomputations += 1
            self.recompute_count += 1
            self.initialize(pst, now_seq)
        else:
            self._merge_added(delta.added, now_seq, k, n)
        if before is not None:
            after = {p.uid: p for p in self._by_score}
            entered = [p for uid, p in after.items() if uid not in before]
            left = [p for uid, p in before.items() if uid not in after]
            if entered or left:
                self.on_change(entered, left)
        return self._by_score

    # ------------------------------------------------------------------
    def _drop_departed(self, delta: SkybandDelta) -> None:
        """Remove answer pairs that left the skyband this tick."""
        if not delta.removed and not delta.expired:
            return
        departed = delta.departed_uids
        if any(p.uid in departed for p in self._by_score):
            self._by_score = [
                p for p in self._by_score if p.uid not in departed
            ]
            self._by_age = [p for p in self._by_age if p.uid not in departed]

    def _drop_out_of_window(self, now_seq: int, n: int) -> None:
        """Remove answer pairs older than the query's own window."""
        by_age = self._by_age
        # Oldest pairs sit at the back of the age-key-ascending list.
        while by_age and by_age[-1].age(now_seq) > n:
            gone = by_age.pop()
            self._by_score.remove(gone)

    def _merge_added(
        self, added: list[Pair], now_seq: int, k: int, n: int
    ) -> None:
        """Paper §IV-B: scan the score-ascending list of new skyband pairs
        and admit those that beat the current k-th best score."""
        by_score = self._by_score
        for pair in added:
            if len(by_score) >= k and pair.score_key >= by_score[-1].score_key:
                break  # all remaining new pairs score even worse
            if not pair.in_window(now_seq, n):
                continue
            insort(by_score, pair, key=lambda p: p.score_key)
            insort(self._by_age, pair, key=lambda p: p.age_key)
            if len(by_score) > k:
                worst = by_score.pop()
                self._by_age.remove(worst)
