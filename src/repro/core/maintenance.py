"""The skyband maintenance module (paper §V).

One maintainer exists per unique scoring function (Fig 2).  It owns:

* the K-skyband as a score-sorted list (rebuilt by Algorithm 4 sweeps),
* the K-staircase for ``O(log |SKB|)`` dominance tests,
* the priority search tree indexing the skyband for query answering,
* an index of skyband pairs by their older member's sequence number, so
  expiry removes exactly the right pairs in ``O(K log |SKB|)``.

Three maintenance strategies are provided:

* :class:`SCaseMaintainer` — paper Algorithm 3: on arrival, consider all
  ``O(N)`` new pairs, keep those not dominated by the staircase, then run
  Algorithm 4 over the merged candidate set.  Works for arbitrary scoring
  functions; expected cost ``O(N (log log N + log K))``.
* :class:`TAMaintainer` — paper Algorithm 5: for *global* scoring
  functions, consume the per-attribute sorted pair streams round-robin and
  stop once the TA threshold point is dominated by the staircase,
  examining only ``M = (d+1) N^{d/(d+1)} K^{1/(d+1)}`` pairs in
  expectation.
* :class:`BasicMaintainer` (in :mod:`repro.baselines.basic`) — Algorithm 3
  *without* the staircase, using dominance counting with early exit; the
  paper's "basic" competitor in Fig 12.

Expiry handling is shared: remove the expired objects' skyband pairs and
refresh the staircase from the surviving skyband (expiry can never add
skyband members — a dominator always has age at most its dominatee's, and
all maximal-age pairs expire together — but a stale staircase could keep
counting expired dominators, so it must be refreshed before the next
arrival's dominance tests).

Incremental fast path (``fast_path=True``, the default)
-------------------------------------------------------
The straightforward implementation pays a full Algorithm 4 rebuild per
expired object and a full sweep + whole-skyband set diff per arrival.
Both are avoidable because a sweep's heap state at position ``i`` depends
only on the kept pairs before ``i``:

* **Coalesced expiry** — all of a tick's (or batch's) expiries drop their
  pairs in one pass, and the staircase is refreshed once: the prefix
  below the first removed position keeps its points verbatim, the heap is
  re-seeded with the ``K`` smallest-age prefix pairs (a C-speed
  ``heapq.nsmallest``), and only the suffix is re-swept.  A tick with
  ``E`` expiries costs one ``O(|SKB| log K)`` refresh instead of ``E``.
* **Incremental candidate insertion** — when the candidate set is small
  relative to ``|SKB|``, the same seeded suffix re-sweep merges the
  candidates in place of the full-skyband sweep, and the added/removed
  diff is computed over the suffix only.  When the delta is large the
  code falls back to the classic full sweep (same results, better
  constants at that size).

Both paths produce bit-identical skybands and staircases to the full
sweep — enforced by ``repro.audit``'s STAIR-SYNC / SKB-* invariants and
the brute-force cross-check.  ``fast_path=False`` restores the
rebuild-per-expiry / sweep-only behaviour (the A/B baseline that
``repro bench throughput`` measures against).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from bisect import bisect_left
from heapq import nsmallest
from time import perf_counter
from typing import Optional

from repro.analysis.cost_model import Counters
from repro.core.pair import Pair, dominates, make_pair
from repro.core.skyband_update import (
    reference_sweep_skyband,
    sweep_skyband,
    update_skyband_and_staircase,
)
from repro.core.staircase import KStaircase
from repro.exceptions import InvalidParameterError, ScoringFunctionError
from repro.obs.recorder import NULL_RECORDER
from repro.stream.manager import StreamManager
from repro.stream.object import StreamObject
from repro.stream.pair_source import iter_pairs_by_age, iter_pairs_by_local_score
from repro.structures.pst import PrioritySearchTree

__all__ = [
    "SkybandDelta",
    "SkybandMaintainer",
    "SCaseMaintainer",
    "TAMaintainer",
]


class SkybandDelta:
    """What changed in the K-skyband during one stream tick.

    ``added`` is sorted ascending by score key — the order the continuous
    query answering module consumes (paper §IV-B).
    """

    __slots__ = ("added", "removed", "expired", "_departed_uids")

    def __init__(
        self,
        added: list[Pair],
        removed: list[Pair],
        expired: list[Pair],
    ) -> None:
        self.added = added
        self.removed = removed
        self.expired = expired
        self._departed_uids: set[int] | None = None

    @property
    def departed_uids(self) -> set[int]:
        """Uids of all pairs that left the skyband this tick (removed or
        expired), computed once and shared by every query's update."""
        if self._departed_uids is None:
            departed = {p.uid for p in self.removed}
            departed.update(p.uid for p in self.expired)
            self._departed_uids = departed
        return self._departed_uids

    def __repr__(self) -> str:
        return (
            f"SkybandDelta(+{len(self.added)}, -{len(self.removed)}, "
            f"expired {len(self.expired)})"
        )


class SkybandMaintainer(ABC):
    """Shared skeleton of all skyband maintenance strategies.

    ``pair_filter`` (optional) restricts the pair universe: only pairs
    ``(a, b)`` with ``pair_filter(a, b)`` true exist for this maintainer
    — e.g. "same sector only".  The K-skyband is then the skyband *of the
    filtered pair set*, which answers every query sharing the same
    (scoring function, filter) combination.  Filters must be symmetric
    and time-invariant for a given pair of objects.

    ``fast_path`` selects the incremental per-tick maintenance described
    in the module docstring; disabling it restores the historical
    rebuild-per-expiry / full-sweep-per-arrival behaviour.
    """

    #: use the incremental insertion path when
    #: ``len(candidates) * incremental_ratio <= len(skyband)``; beyond
    #: that the classic full sweep has better constants.
    incremental_ratio = 4

    def __init__(
        self,
        scoring_function,
        K: int,
        *,
        counters: Optional[Counters] = None,
        pair_filter=None,
        recorder=None,
        fast_path: bool = True,
    ) -> None:
        if K < 1:
            raise InvalidParameterError(f"K must be >= 1, got {K}")
        self.scoring_function = scoring_function
        self.K = K
        self.counters = counters
        self.pair_filter = pair_filter
        self.fast_path = fast_path
        self._obs = recorder if recorder is not None else NULL_RECORDER
        self._skyband: list[Pair] = []
        self._score_keys: list[tuple] = []
        self._age_keys: list[int] = []
        self._staircase = KStaircase()
        self._pst = PrioritySearchTree(recorder=self._obs)
        self._by_oldest: dict[int, list[Pair]] = {}

    # ------------------------------------------------------------------
    # read access
    # ------------------------------------------------------------------
    @property
    def skyband(self) -> list[Pair]:
        """The K-skyband in ascending score order (do not mutate)."""
        return self._skyband

    @property
    def staircase(self) -> KStaircase:
        return self._staircase

    @property
    def pst(self) -> PrioritySearchTree:
        return self._pst

    def __len__(self) -> int:
        return len(self._skyband)

    # ------------------------------------------------------------------
    # stream tick
    # ------------------------------------------------------------------
    def on_tick(
        self,
        manager: StreamManager,
        new_obj: StreamObject,
        expired: list[StreamObject],
    ) -> SkybandDelta:
        """Process one arrival event (expiries first, then the arrival)."""
        obs = self._obs
        if not obs.enabled:
            expired_pairs = self._expire_batch(expired)
            added, removed = self._arrive(manager, new_obj)
            return SkybandDelta(added, removed, expired_pairs)
        start = perf_counter()
        expired_pairs = self._expire_batch(expired)
        obs.phase("expire", perf_counter() - start)
        start = perf_counter()
        candidates = self._collect_candidates(manager, new_obj)
        obs.phase("generate", perf_counter() - start)
        obs.on_candidates(len(candidates))
        start = perf_counter()
        added, removed = self._apply_candidates(candidates)
        obs.phase("insert", perf_counter() - start)
        obs.on_skyband_delta(len(added), len(removed), len(expired_pairs))
        return SkybandDelta(added, removed, expired_pairs)

    def on_batch(
        self,
        manager: StreamManager,
        new_objs: list[StreamObject],
        expired: list[StreamObject],
    ) -> SkybandDelta:
        """Process several arrivals with one Algorithm 4 sweep.

        Batch semantics: the skyband (and any continuous answers) are
        refreshed only at batch boundaries, over the pairs whose members
        are both alive in the *final* window.  Candidate collection for
        each batch member sees only older partners (so each intra-batch
        pair is collected exactly once, by its newer member), and the
        staircase from the batch start is used for pruning — stale within
        the batch but conservative, since all of its implied dominators
        survive the batch's expiries (they are removed first, below).
        Amortizes the merge / Algorithm 4 / PST-diff work across the
        batch; throughput vs latency is measured in bench_ablation.
        """
        obs = self._obs
        if not obs.enabled:
            expired_pairs = self._expire_batch(expired)
            candidates: list[Pair] = []
            for new_obj in new_objs:
                candidates.extend(self._collect_candidates(manager, new_obj))
            added, removed = self._apply_candidates(candidates)
            return SkybandDelta(added, removed, expired_pairs)
        start = perf_counter()
        expired_pairs = self._expire_batch(expired)
        obs.phase("expire", perf_counter() - start)
        start = perf_counter()
        candidates = []
        for new_obj in new_objs:
            candidates.extend(self._collect_candidates(manager, new_obj))
        obs.phase("generate", perf_counter() - start)
        obs.on_candidates(len(candidates))
        start = perf_counter()
        added, removed = self._apply_candidates(candidates)
        obs.phase("insert", perf_counter() - start)
        obs.on_skyband_delta(len(added), len(removed), len(expired_pairs))
        return SkybandDelta(added, removed, expired_pairs)

    # ------------------------------------------------------------------
    # expiry
    # ------------------------------------------------------------------
    def _expire(self, gone: StreamObject) -> list[Pair]:
        """Drop all skyband pairs whose older member just expired."""
        return self._expire_batch([gone])

    def _expire_batch(self, expired: list[StreamObject]) -> list[Pair]:
        """Drop the skyband pairs of every expired object, refreshing the
        staircase once for the whole batch (fast path) instead of running
        one full Algorithm 4 rebuild per expired object (legacy path)."""
        if not expired:
            return []
        if not self.fast_path:
            dropped_total: list[Pair] = []
            for gone in expired:
                dropped_total.extend(self._expire_one_legacy(gone))
            return dropped_total
        by_oldest = self._by_oldest
        dropped: list[Pair] = []
        for gone in expired:
            found = by_oldest.pop(gone.seq, None)
            if found:
                dropped.extend(found)
        if not dropped:
            return []
        pst = self._pst
        counters = self.counters
        for pair in dropped:
            pst.delete(pair)
        if counters is not None:
            counters.pst_deletes += len(dropped)
            counters.skyband_removals += len(dropped)
        # Membership cannot change on expiry, but the staircase must be
        # refreshed or it would keep counting expired dominators.  Only
        # the suffix from the first removed position onward can differ.
        dropped_uids = {p.uid for p in dropped}
        score_keys = self._score_keys
        idx = min(bisect_left(score_keys, p.score_key) for p in dropped)
        skyband = self._skyband
        survivors = [p for p in skyband[idx:] if p.uid not in dropped_uids]
        if self._obs.enabled:
            start = perf_counter()
            self._refresh_suffix(idx, survivors)
            self._obs.phase("staircase", perf_counter() - start)
        else:
            self._refresh_suffix(idx, survivors)
        return dropped

    def _expire_one_legacy(self, gone: StreamObject) -> list[Pair]:
        """Pre-fast-path behaviour: one full rebuild per expired object."""
        dropped = self._by_oldest.pop(gone.seq, [])
        if not dropped:
            return []
        dropped_uids = {p.uid for p in dropped}
        survivors = [p for p in self._skyband if p.uid not in dropped_uids]
        for pair in dropped:
            self._pst.delete(pair)
            if self.counters is not None:
                self.counters.pst_deletes += 1
                self.counters.skyband_removals += 1
        if self._obs.enabled:
            start = perf_counter()
            skyband, points = reference_sweep_skyband(
                survivors, self.K, recorder=self._obs
            )
            self._obs.phase("staircase", perf_counter() - start)
        else:
            skyband, points = reference_sweep_skyband(survivors, self.K)
        self._set_skyband(skyband, KStaircase(points))
        return dropped

    def _refresh_suffix(self, idx: int, suffix_sorted: list[Pair]) -> None:
        """Replace the skyband from position ``idx`` on with a re-sweep of
        ``suffix_sorted``, keeping the untouched prefix's staircase points
        and seeding the sweep heap from the prefix."""
        K = self.K
        seed = nsmallest(K, self._age_keys[:idx])
        kept, points = sweep_skyband(
            suffix_sorted, K, seed=seed, recorder=self._obs
        )
        self._skyband[idx:] = kept
        self._score_keys[idx:] = [p.score_key for p in kept]
        self._age_keys[idx:] = [p.age_key for p in kept]
        prefix_count = idx - K + 1
        if prefix_count > 0:
            points = self._staircase.prefix_points(prefix_count) + points
        self._staircase = KStaircase(points)

    # ------------------------------------------------------------------
    # arrival
    # ------------------------------------------------------------------
    def _arrive(
        self, manager: StreamManager, new_obj: StreamObject
    ) -> tuple[list[Pair], list[Pair]]:
        """Algorithm 3 / 5 skeleton: collect non-dominated new pairs, merge
        with the current skyband, re-run Algorithm 4, apply the diff."""
        return self._apply_candidates(
            self._collect_candidates(manager, new_obj)
        )

    def _apply_candidates(
        self, candidates: list[Pair]
    ) -> tuple[list[Pair], list[Pair]]:
        """Merge candidate pairs into the skyband.

        Dispatches between the incremental suffix re-sweep (small
        candidate sets against a large skyband) and the classic full
        Algorithm 4 sweep; both produce identical skybands, staircases
        and diffs.
        """
        if not candidates:
            return [], []
        candidates.sort(key=lambda p: p.score_key)
        skyband = self._skyband
        if (
            self.fast_path
            and skyband
            and len(candidates) * self.incremental_ratio <= len(skyband)
        ):
            idx = bisect_left(self._score_keys, candidates[0].score_key)
            if idx:
                return self._apply_candidates_incremental(candidates, idx)
        return self._apply_candidates_sweep(candidates)

    def _apply_candidates_sweep(
        self, candidates: list[Pair]
    ) -> tuple[list[Pair], list[Pair]]:
        """Full Algorithm 4 over the merged skyband + candidate set."""
        obs = self._obs
        if obs.enabled:
            obs.on_apply_path("sweep")
        # fast_path=False replays the pre-fast-path implementation
        # byte-for-byte, including its MaxHeap-based sweep (the honest
        # A/B baseline for `repro bench throughput`).
        sweep = sweep_skyband if self.fast_path else reference_sweep_skyband
        merged = _merge_by_score(self._skyband, candidates)
        skyband, points = sweep(
            merged, self.K, counters=self.counters, recorder=obs
        )
        old_uids = {p.uid for p in self._skyband}
        new_uids = {p.uid for p in skyband}
        added = [p for p in skyband if p.uid not in old_uids]
        removed = [p for p in self._skyband if p.uid not in new_uids]
        self._commit_diff(added, removed)
        self._set_skyband(skyband, KStaircase(points))
        return added, removed

    def _apply_candidates_incremental(
        self, candidates: list[Pair], idx: int
    ) -> tuple[list[Pair], list[Pair]]:
        """Seeded suffix re-sweep: the skyband prefix below the smallest
        candidate's score position ``idx`` cannot change (no candidate can
        dominate a lower-score pair), so only ``skyband[idx:]`` merged
        with the candidates is re-swept, against a heap seeded with the K
        smallest-age prefix pairs.  Equivalent to the full sweep."""
        obs = self._obs
        if obs.enabled:
            obs.on_apply_path("incremental")
        K = self.K
        skyband = self._skyband
        suffix = skyband[idx:]
        merged = _merge_by_score(suffix, candidates)
        seed = nsmallest(K, self._age_keys[:idx])
        kept, points = sweep_skyband(
            merged, K, seed=seed, counters=self.counters, recorder=obs
        )
        suffix_uids = {p.uid for p in suffix}
        kept_uids = {p.uid for p in kept}
        added = [p for p in kept if p.uid not in suffix_uids]
        removed = [p for p in suffix if p.uid not in kept_uids]
        self._commit_diff(added, removed)
        skyband[idx:] = kept
        self._score_keys[idx:] = [p.score_key for p in kept]
        self._age_keys[idx:] = [p.age_key for p in kept]
        prefix_count = idx - K + 1
        if prefix_count > 0:
            points = self._staircase.prefix_points(prefix_count) + points
        self._staircase = KStaircase(points)
        return added, removed

    def _commit_diff(self, added: list[Pair], removed: list[Pair]) -> None:
        """Apply a skyband diff to the PST and the expiry index."""
        by_oldest = self._by_oldest
        for pair in removed:
            self._pst.delete(pair)
            by_oldest[pair.oldest_seq].remove(pair)
            if not by_oldest[pair.oldest_seq]:
                del by_oldest[pair.oldest_seq]
        for pair in added:
            self._pst.insert(pair)
            by_oldest.setdefault(pair.oldest_seq, []).append(pair)
        if self.counters is not None:
            self.counters.pst_deletes += len(removed)
            self.counters.skyband_removals += len(removed)
            self.counters.pst_inserts += len(added)
            self.counters.skyband_inserts += len(added)

    def _set_skyband(self, skyband: list[Pair], staircase: KStaircase) -> None:
        self._skyband = skyband
        self._score_keys = [p.score_key for p in skyband]
        self._age_keys = [p.age_key for p in skyband]
        self._staircase = staircase

    def bootstrap(self, manager: StreamManager) -> None:
        """(Re)build the skyband from scratch over the current window.

        Used when a query raises the group's K: all ``O(N^2)`` window
        pairs are enumerated once and fed to Algorithm 4.
        """
        objects = manager.objects()
        keep = self.pair_filter
        pairs = [
            make_pair(objects[i], objects[j], self.scoring_function,
                      self.counters)
            for i in range(len(objects))
            for j in range(i + 1, len(objects))
            if keep is None or keep(objects[i], objects[j])
        ]
        pairs.sort(key=lambda p: p.score_key)
        skyband, staircase = update_skyband_and_staircase(pairs, self.K)
        self._install_state(skyband, staircase)

    def load_state(self, skyband: list[Pair], staircase: KStaircase) -> None:
        """Install an externally reconstructed skyband wholesale.

        The checkpoint structural-restore path deserializes the skyband
        (score-ascending) and its staircase and installs them directly,
        skipping :meth:`bootstrap`'s ``O(N^2)`` pair enumeration — the
        paper's point that the K-skyband is the *complete* maintainer
        state.  The caller is responsible for having validated the pairs
        against the live window (``restore_server_monitor`` re-sweeps
        them through Algorithm 4 before calling this); the PST is built
        with the sorted-input fast path and raises on out-of-order
        input.
        """
        self._install_state(skyband, staircase)

    def _install_state(
        self, skyband: list[Pair], staircase: KStaircase
    ) -> None:
        self._set_skyband(skyband, staircase)
        self._pst = PrioritySearchTree.from_sorted(
            skyband, recorder=self._obs
        )
        self._by_oldest = {}
        for pair in skyband:
            self._by_oldest.setdefault(pair.oldest_seq, []).append(pair)

    # ------------------------------------------------------------------
    @abstractmethod
    def _collect_candidates(
        self, manager: StreamManager, new_obj: StreamObject
    ) -> list[Pair]:
        """New pairs of ``new_obj`` that are *not* dominated by the current
        K-skyband (checked against the strategy's dominance structure)."""

    # ------------------------------------------------------------------
    # introspection (debugging / analysis helpers)
    # ------------------------------------------------------------------
    def dominators_of(self, pair: Pair) -> list[Pair]:
        """The skyband pairs dominating ``pair`` (ascending score).

        Explains membership decisions: a pair is (or would be) outside
        the K-skyband exactly when this list reaches length K, because
        the K smallest-score dominators of any pair are always skyband
        members (docs/design_notes.md §3).  ``O(|SKB|)`` — a debugging
        aid, not a hot path.
        """
        return [q for q in self._skyband if dominates(q, pair)]

    def contains(self, pair: Pair) -> bool:
        """Whether ``pair`` is currently a skyband member."""
        return any(
            q.uid == pair.uid
            for q in self._by_oldest.get(pair.oldest_seq, ())
        )

    def check_invariants(self, manager: StreamManager) -> None:
        """Cross-validate skyband, staircase, PST and index (test helper)."""
        assert self._score_keys == [p.score_key for p in self._skyband]
        assert self._age_keys == [p.age_key for p in self._skyband]
        assert sorted(self._score_keys) == self._score_keys
        self._staircase.check_invariants()
        self._pst.check_invariants()
        assert len(self._pst) == len(self._skyband)
        pst_uids = {p.uid for p in self._pst.points()}
        assert pst_uids == {p.uid for p in self._skyband}
        indexed = [p for pairs in self._by_oldest.values() for p in pairs]
        assert {p.uid for p in indexed} == pst_uids
        window_seqs = {o.seq for o in manager}
        for pair in self._skyband:
            assert pair.older.seq in window_seqs
            assert pair.newer.seq in window_seqs


class SCaseMaintainer(SkybandMaintainer):
    """Paper Algorithm 3: arbitrary scoring functions, staircase pruning."""

    def _collect_candidates(
        self, manager: StreamManager, new_obj: StreamObject
    ) -> list[Pair]:
        candidates: list[Pair] = []
        staircase = self._staircase
        counters = self.counters
        keep = self.pair_filter
        for partner in manager:
            if partner.seq >= new_obj.seq:
                continue  # intra-batch pairs belong to their newer member
            pair = make_pair(new_obj, partner, self.scoring_function, counters)
            if counters is not None:
                counters.pairs_considered += 1
                counters.staircase_checks += 1
            if staircase.dominates(pair.score_key, pair.age_key):
                # Dominated pairs are pruned regardless of the filter, so
                # the O(log |SKB|) staircase test runs first and the
                # (potentially expensive, user-supplied) filter is only
                # paid on surviving pairs.
                continue
            if keep is not None:
                if counters is not None:
                    counters.pair_filter_calls += 1
                if not keep(new_obj, partner):
                    continue
            candidates.append(pair)
            if counters is not None:
                counters.candidate_pairs += 1
        return candidates


class TAMaintainer(SkybandMaintainer):
    """Paper Algorithm 5: global scoring functions, threshold termination.

    Accesses the ``d`` local-score pair streams plus the age stream in
    round-robin order; stops as soon as the dummy threshold point —
    smallest possible score and age of any unseen pair — is dominated by
    the staircase (then every unseen pair is too), or as soon as any one
    stream is exhausted (each stream enumerates *all* partners, so one
    exhausted stream means every pair has been examined).
    """

    def __init__(
        self,
        scoring_function,
        K: int,
        *,
        counters: Optional[Counters] = None,
        schedule: str = "round-robin",
        pair_filter=None,
        recorder=None,
        fast_path: bool = True,
    ) -> None:
        if not scoring_function.is_global():
            raise ScoringFunctionError(
                "TAMaintainer requires a global scoring function; "
                f"{scoring_function.name!r} is not one"
            )
        if schedule not in ("round-robin", "adaptive"):
            raise InvalidParameterError(
                f"schedule must be 'round-robin' or 'adaptive', "
                f"got {schedule!r}"
            )
        super().__init__(scoring_function, K, counters=counters,
                         pair_filter=pair_filter, recorder=recorder,
                         fast_path=fast_path)
        self.schedule = schedule

    def _collect_candidates(
        self, manager: StreamManager, new_obj: StreamObject
    ) -> list[Pair]:
        terms = self.scoring_function.terms
        num_terms = len(terms)
        local_sources = [
            iter_pairs_by_local_score(manager, new_obj, attr, fn)
            for attr, fn in terms
        ]
        age_source = iter_pairs_by_age(manager, new_obj)
        last_local: list[Optional[float]] = [None] * num_terms
        last_age_key: Optional[int] = None
        seen: set[int] = set()
        candidates: list[Pair] = []
        staircase = self._staircase
        counters = self.counters
        adaptive = self.schedule == "adaptive"

        while True:
            initialized = last_age_key is not None and all(
                ls is not None for ls in last_local
            )
            if initialized:
                bound = self.scoring_function.combine(last_local)
                if counters is not None:
                    counters.staircase_checks += 1
                if staircase.dominates(
                    (bound, -math.inf, -math.inf), last_age_key
                ):
                    break
            if adaptive and initialized:
                # Advance only the local list currently holding the
                # threshold down — the one with the smallest frontier
                # score — instead of all d lists (§V-B extension).
                indices = [
                    min(range(num_terms), key=lambda i: last_local[i])
                ]
            else:
                indices = range(num_terms)
            exhausted = False
            for i in indices:
                item = next(local_sources[i], None)
                if item is None:
                    # Every list enumerates all partners, so one exhausted
                    # list means every pair has been examined.
                    exhausted = True
                    break
                partner, local_score = item
                last_local[i] = local_score
                self._consider(new_obj, partner, seen, candidates)
            if exhausted:
                break
            partner = next(age_source, None)
            if partner is None:
                break
            if partner.seq < new_obj.seq:
                last_age_key = -partner.seq
                self._consider(new_obj, partner, seen, candidates)
            # Newer partners (possible under batching) are skipped: their
            # pairs belong to the newer member's own collection pass, and
            # leaving last_age_key untouched only weakens the threshold
            # conservatively.
        return candidates

    def _consider(
        self,
        new_obj: StreamObject,
        partner: StreamObject,
        seen: set[int],
        candidates: list[Pair],
    ) -> None:
        """Score and dominance-check one (possibly repeated) pair access."""
        if partner.seq >= new_obj.seq or partner.seq in seen:
            return
        seen.add(partner.seq)
        counters = self.counters
        pair = make_pair(new_obj, partner, self.scoring_function, counters)
        if counters is not None:
            counters.pairs_considered += 1
            counters.staircase_checks += 1
        if self._staircase.dominates(pair.score_key, pair.age_key):
            # As in SCase: prune on the cheap dominance test before
            # paying the user-supplied filter.
            return
        if self.pair_filter is not None:
            if counters is not None:
                counters.pair_filter_calls += 1
            if not self.pair_filter(new_obj, partner):
                return
        candidates.append(pair)
        if counters is not None:
            counters.candidate_pairs += 1


def _merge_by_score(a: list[Pair], b: list[Pair]) -> list[Pair]:
    """Merge two score-sorted pair lists into one sorted list."""
    merged: list[Pair] = []
    i = j = 0
    while i < len(a) and j < len(b):
        if a[i].score_key <= b[j].score_key:
            merged.append(a[i])
            i += 1
        else:
            merged.append(b[j])
            j += 1
    merged.extend(a[i:])
    merged.extend(b[j:])
    return merged
