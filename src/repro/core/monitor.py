"""The top-level framework (paper §III-B, Fig 2).

:class:`TopKPairsMonitor` wires the three modules together:

* the **stream manager** stores the ``N`` most recent objects and the
  ``D + 1`` sorted lists (``O(ND)`` — the Theorem 4 lower bound);
* the **skyband maintenance module** keeps one K-skyband per *unique
  scoring function*, where ``K`` is the largest ``k`` among the queries
  sharing that function;
* the **query answering module** serves snapshot queries from the
  skyband's PST (Algorithm 2) and refreshes continuous queries
  incrementally (§IV-B).

Usage::

    monitor = TopKPairsMonitor(window_size=10_000, num_attributes=3)
    closest = k_closest_pairs(3)
    handle = monitor.register_query(closest, k=5, n=1_000)
    for row in stream:
        monitor.append(row)
        top5 = monitor.results(handle)
"""

from __future__ import annotations

import os
from itertools import islice
from time import perf_counter
from typing import Iterable, Iterator, Optional, Sequence

from repro.analysis.cost_model import Counters
from repro.core.continuous import ContinuousQueryState
from repro.core.maintenance import (
    SCaseMaintainer,
    SkybandMaintainer,
    TAMaintainer,
)
from repro.core.pair import Pair
from repro.core.query import TopKPairsQuery, answer_snapshot
from repro.exceptions import InvalidParameterError, UnknownQueryError
from repro.obs.recorder import NULL_RECORDER
from repro.scoring.base import ScoringFunction
from repro.stream.manager import ArrivalEvent, StreamManager

__all__ = ["TopKPairsMonitor", "QueryHandle"]

_STRATEGIES = ("auto", "scase", "ta", "basic")


class QueryHandle:
    """Opaque handle for a registered query."""

    __slots__ = ("query", "state")

    def __init__(
        self, query: TopKPairsQuery, state: Optional[ContinuousQueryState]
    ) -> None:
        self.query = query
        self.state = state

    def __repr__(self) -> str:
        return f"QueryHandle({self.query!r})"


class _SkybandGroup:
    """One skyband shared by all queries using the same scoring function
    and pair filter (§III-B; the filter extension refines the sharing
    key)."""

    __slots__ = ("scoring_function", "maintainer", "queries", "strategy",
                 "pair_filter")

    def __init__(
        self,
        scoring_function: ScoringFunction,
        maintainer: SkybandMaintainer,
        strategy: str,
        pair_filter=None,
    ) -> None:
        self.scoring_function = scoring_function
        self.maintainer = maintainer
        self.strategy = strategy
        self.pair_filter = pair_filter
        self.queries: dict[int, QueryHandle] = {}

    @property
    def K(self) -> int:
        return self.maintainer.K


class TopKPairsMonitor:
    """Continuous top-k pairs monitoring over a sliding window."""

    def __init__(
        self,
        window_size: int,
        num_attributes: int,
        *,
        strategy: str = "auto",
        time_horizon: Optional[float] = None,
        counters: Optional[Counters] = None,
        seed: int = 0,
        audit: Optional[bool] = None,
        audit_interval: int = 1,
        audit_cross_check_interval: int = 0,
        recorder=None,
        fast_path: bool = True,
    ) -> None:
        if strategy not in _STRATEGIES:
            raise InvalidParameterError(
                f"strategy must be one of {_STRATEGIES}, got {strategy!r}"
            )
        # Observability (repro.obs): the default NullRecorder makes every
        # hot-path hook a single attribute check; pass a MetricsRecorder
        # to collect counters, phase timings and per-tick trace events.
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.manager = StreamManager(
            window_size, num_attributes, time_horizon=time_horizon, seed=seed,
            recorder=self.recorder,
        )
        self.window_size = window_size
        self.strategy = strategy
        self.counters = counters
        self.fast_path = fast_path
        self._groups: dict[int, _SkybandGroup] = {}
        self._handles: dict[int, QueryHandle] = {}
        # Opt-in runtime invariant verification (repro.audit): explicit
        # ``audit=True``/``False`` wins; when unset, the REPRO_AUDIT
        # environment variable turns the auditor on process-wide.
        if audit is None:
            audit = os.environ.get("REPRO_AUDIT", "") not in ("", "0")
        self.auditor = None
        if audit:
            # Imported lazily: repro.audit imports core modules, so a
            # module-level import here would be cyclic.
            from repro.audit.invariants import MonitorAuditor

            self.auditor = MonitorAuditor(
                self,
                interval=audit_interval,
                cross_check_interval=audit_cross_check_interval,
            )

    # ------------------------------------------------------------------
    # query management
    # ------------------------------------------------------------------
    def register_query(
        self,
        scoring_function: ScoringFunction,
        k: int,
        n: Optional[int] = None,
        *,
        continuous: bool = True,
        pair_filter=None,
        on_change=None,
    ) -> QueryHandle:
        """Register a query ``Q(k, n, scoring_function)``.

        ``n`` defaults to the monitor's maximum window.  Queries passing
        the same scoring-function *instance* (and the same ``pair_filter``
        instance, if any) share one skyband; if this query's ``k``
        exceeds the group's current ``K``, the skyband is re-bootstrapped
        at the larger depth (an ``O(N^2 log K)`` one-off).

        ``pair_filter(a, b) -> bool`` restricts the query to pairs the
        symmetric predicate accepts (e.g. same-sector stocks only).

        ``on_change(entered, left)`` (continuous queries only) is invoked
        after every stream tick that changed the answer set, with the
        pairs that entered and left it.
        """
        n = self.window_size if n is None else n
        if n > self.window_size:
            raise InvalidParameterError(
                f"query window n={n} exceeds the monitor's maximum "
                f"window N={self.window_size}"
            )
        query = TopKPairsQuery(scoring_function, k, n, continuous=continuous,
                               pair_filter=pair_filter)
        group = self._group_for(scoring_function, minimum_K=k,
                                pair_filter=pair_filter)
        state = None
        if continuous:
            state = ContinuousQueryState(
                query, counters=self.counters, on_change=on_change
            )
            state.initialize(group.maintainer.pst, self.manager.now_seq)
        handle = QueryHandle(query, state)
        group.queries[query.query_id] = handle
        self._handles[query.query_id] = handle
        return handle

    def set_on_change(self, handle: QueryHandle, callback) -> None:
        """Attach, replace or detach (``None``) the ``on_change(entered,
        left)`` delta listener of a registered continuous query.

        This is the hook the :mod:`repro.serve` subscription layer uses
        to extract per-tick answer deltas without re-reading the whole
        answer: after every stream tick that changed the query's answer
        set, ``callback`` receives the pairs that entered and left it.
        """
        if handle.query.query_id not in self._handles:
            raise UnknownQueryError(handle.query.query_id)
        if handle.state is None:
            raise InvalidParameterError(
                "on_change requires a continuous query"
            )
        handle.state.on_change = callback

    def unregister_query(self, handle: QueryHandle) -> None:
        """Remove a query; drops its skyband group when it was the last
        user (the group's K is kept as-is otherwise — shrinking K would
        require a rebuild for no correctness gain)."""
        query_id = handle.query.query_id
        if query_id not in self._handles:
            raise UnknownQueryError(query_id)
        del self._handles[query_id]
        key = _group_key(handle.query.scoring_function,
                         handle.query.pair_filter)
        group = self._groups[key]
        del group.queries[query_id]
        if not group.queries:
            del self._groups[key]

    def _group_for(
        self,
        scoring_function: ScoringFunction,
        minimum_K: int,
        pair_filter=None,
    ) -> _SkybandGroup:
        key = _group_key(scoring_function, pair_filter)
        group = self._groups.get(key)
        if group is not None and group.K >= minimum_K:
            return group
        strategy = self._resolve_strategy(scoring_function)
        maintainer = self._make_maintainer(
            scoring_function, minimum_K, strategy, pair_filter
        )
        maintainer.bootstrap(self.manager)
        if group is None:
            group = _SkybandGroup(scoring_function, maintainer, strategy,
                                  pair_filter)
            self._groups[key] = group
        else:
            # K grew: swap in the deeper maintainer, keep the queries —
            # and rebuild every live continuous answer against the new
            # PST, or they would serve the old maintainer's snapshot
            # until unrelated churn happened to refresh them.
            group.maintainer = maintainer
            now = self.manager.now_seq
            for handle in group.queries.values():
                if handle.state is not None:
                    handle.state.initialize(maintainer.pst, now)
        return group

    def maintainer_for(
        self,
        scoring_function: ScoringFunction,
        pair_filter=None,
    ) -> Optional[SkybandMaintainer]:
        """The live maintainer of the skyband group for this scoring
        function (and filter) instance, or ``None`` when no query has
        created one.  Read-only view used by the checkpoint layer to
        serialize maintainer state."""
        group = self._groups.get(_group_key(scoring_function, pair_filter))
        return group.maintainer if group is not None else None

    def restore_group(
        self,
        scoring_function: ScoringFunction,
        K: int,
        skyband: list,
        staircase,
        *,
        pair_filter=None,
    ) -> None:
        """Install a pre-built skyband group, bypassing :meth:`bootstrap`.

        Checkpoint structural restore deserializes each group's skyband
        (score-ascending :class:`~repro.core.pair.Pair` list over live
        window objects) and staircase and installs them here *before*
        re-registering the saved queries — ``_group_for`` then reuses
        the group as long as ``K`` covers the queries' ``k``, so no
        ``O(N^2)`` re-enumeration happens.  Raises
        :class:`~repro.exceptions.InvalidParameterError` when the group
        already exists (restoring over live state would silently discard
        it).
        """
        key = _group_key(scoring_function, pair_filter)
        if key in self._groups:
            raise InvalidParameterError(
                "cannot restore a skyband group that already exists; "
                "restore into a fresh monitor"
            )
        strategy = self._resolve_strategy(scoring_function)
        maintainer = self._make_maintainer(
            scoring_function, K, strategy, pair_filter
        )
        maintainer.load_state(skyband, staircase)
        self._groups[key] = _SkybandGroup(
            scoring_function, maintainer, strategy, pair_filter
        )

    def _resolve_strategy(self, scoring_function: ScoringFunction) -> str:
        if self.strategy != "auto":
            return self.strategy
        return "ta" if scoring_function.is_global() else "scase"

    def _make_maintainer(
        self,
        scoring_function: ScoringFunction,
        K: int,
        strategy: str,
        pair_filter=None,
    ) -> SkybandMaintainer:
        if strategy == "ta":
            return TAMaintainer(scoring_function, K, counters=self.counters,
                                pair_filter=pair_filter,
                                recorder=self.recorder,
                                fast_path=self.fast_path)
        if strategy == "basic":
            from repro.baselines.basic import BasicMaintainer

            return BasicMaintainer(scoring_function, K,
                                   counters=self.counters,
                                   pair_filter=pair_filter,
                                   recorder=self.recorder,
                                   fast_path=self.fast_path)
        return SCaseMaintainer(scoring_function, K, counters=self.counters,
                               pair_filter=pair_filter,
                               recorder=self.recorder,
                               fast_path=self.fast_path)

    # ------------------------------------------------------------------
    # stream ingestion
    # ------------------------------------------------------------------
    def append(
        self,
        values: Sequence[float],
        *,
        timestamp: Optional[float] = None,
        payload: object = None,
    ) -> ArrivalEvent:
        """Admit one object and refresh every skyband and every continuous
        query."""
        obs = self.recorder
        if not obs.enabled:
            event = self.manager.append(
                values, timestamp=timestamp, payload=payload
            )
            now = self.manager.now_seq
            for group in self._groups.values():
                delta = group.maintainer.on_tick(
                    self.manager, event.new, event.expired
                )
                for handle in group.queries.values():
                    if handle.state is not None:
                        handle.state.apply(delta, group.maintainer.pst, now)
            if self.auditor is not None:
                self.auditor.after_tick()
            return event
        obs.begin_tick()
        tick_start = perf_counter()
        event = self.manager.append(
            values, timestamp=timestamp, payload=payload
        )
        obs.phase("window", perf_counter() - tick_start)
        obs.on_window(1, len(event.expired))
        now = self.manager.now_seq
        for group in self._groups.values():
            delta = group.maintainer.on_tick(
                self.manager, event.new, event.expired
            )
            start = perf_counter()
            for handle in group.queries.values():
                if handle.state is not None:
                    handle.state.apply(delta, group.maintainer.pst, now)
            obs.phase("queries", perf_counter() - start)
        if self.auditor is not None:
            self.auditor.after_tick()
        self._end_tick(obs, perf_counter() - tick_start, now)
        return event

    def extend(
        self,
        rows: Iterable,
        *,
        batch_size: Optional[int] = None,
        timestamps: Optional[Iterable[float]] = None,
    ) -> int:
        """Admit many objects; returns the number of rows ingested.

        ``rows`` is any iterable (a generator is consumed lazily, chunk
        by chunk).  Each row is either a plain value sequence or a
        ``(values, timestamp)`` / ``(values, timestamp, payload)`` tuple;
        alternatively ``timestamps`` supplies one timestamp per plain
        row.  Mixing both timestamp channels is rejected.

        With ``batch_size`` set, skybands and continuous answers are
        refreshed only at batch boundaries (one Algorithm 4 sweep per
        batch, amortizing the per-arrival bookkeeping) — a throughput /
        result-latency trade-off.  Within a batch, intermediate results
        are never observable, so batched and per-tick ingestion agree at
        every batch boundary.

        The returned count is exact even when ``rows`` is a generator —
        batch consumers (e.g. the :mod:`repro.serve` ingest op) use it to
        acknowledge precisely how many objects entered the stream.
        """
        normalized = _normalize_rows(rows, timestamps)
        count = 0
        if batch_size is None or batch_size <= 1:
            for values, timestamp, payload in normalized:
                self.append(values, timestamp=timestamp, payload=payload)
                count += 1
            return count
        while True:
            chunk = list(islice(normalized, batch_size))
            if not chunk:
                return count
            self._append_batch(chunk)
            count += len(chunk)

    def _append_batch(self, rows: list[tuple]) -> None:
        """``rows`` are normalized ``(values, timestamp, payload)``."""
        obs = self.recorder
        if obs.enabled:
            obs.begin_tick()
        tick_start = perf_counter()
        events = [
            self.manager.append(values, timestamp=timestamp, payload=payload)
            for values, timestamp, payload in rows
        ]
        expired = [gone for event in events for gone in event.expired]
        if obs.enabled:
            obs.phase("window", perf_counter() - tick_start)
            obs.on_window(len(events), len(expired))
        expired_seqs = {gone.seq for gone in expired}
        # An object that arrived and expired within this very batch (a
        # batch larger than the window) never becomes visible.
        survivors = [
            event.new for event in events
            if event.new.seq not in expired_seqs
        ]
        now = self.manager.now_seq
        for group in self._groups.values():
            delta = group.maintainer.on_batch(self.manager, survivors,
                                              expired)
            start = perf_counter()
            for handle in group.queries.values():
                if handle.state is not None:
                    handle.state.apply(delta, group.maintainer.pst, now)
            if obs.enabled:
                obs.phase("queries", perf_counter() - start)
        if self.auditor is not None:
            # One audit per batch boundary — intermediate states are
            # never observable, so there is nothing to check mid-batch.
            self.auditor.after_tick()
        if obs.enabled:
            self._end_tick(obs, perf_counter() - tick_start, now)

    def _end_tick(self, obs, seconds: float, now: int) -> None:
        """Close one instrumented tick (sizes summed across groups)."""
        skyband_size = 0
        staircase_size = 0
        for group in self._groups.values():
            skyband_size += len(group.maintainer)
            staircase_size += len(group.maintainer.staircase)
        obs.end_tick(
            seconds,
            now_seq=now,
            skyband_size=skyband_size,
            staircase_size=staircase_size,
            window_occupancy=len(self.manager),
        )

    # ------------------------------------------------------------------
    # answers
    # ------------------------------------------------------------------
    def results(self, handle: QueryHandle) -> list[Pair]:
        """The current answer of a query, ascending by score.

        Continuous queries return their incrementally maintained answer;
        snapshot queries are evaluated on the spot with Algorithm 2.
        """
        if handle.query.query_id not in self._handles:
            raise UnknownQueryError(handle.query.query_id)
        obs = self.recorder
        if not obs.enabled:
            return self._results(handle)
        start = perf_counter()
        answer = self._results(handle)
        obs.observe_results(perf_counter() - start)
        return answer

    def _results(self, handle: QueryHandle) -> list[Pair]:
        if handle.state is not None:
            return list(handle.state.answer)
        group = self._groups[_group_key(handle.query.scoring_function,
                                        handle.query.pair_filter)]
        return answer_snapshot(
            group.maintainer.pst,
            handle.query.k,
            handle.query.n,
            self.manager.now_seq,
            counters=self.counters,
        )

    def snapshot_query(
        self,
        scoring_function: ScoringFunction,
        k: int,
        n: Optional[int] = None,
        *,
        pair_filter=None,
    ) -> list[Pair]:
        """One-off top-k pairs query.

        Reuses the scoring function's skyband group when one exists with
        sufficient depth; otherwise bootstraps one (``O(N^2)`` one-off)
        that subsequent ticks keep maintained.
        """
        n = self.window_size if n is None else n
        if n > self.window_size:
            raise InvalidParameterError(
                f"query window n={n} exceeds the monitor's maximum "
                f"window N={self.window_size}"
            )
        group = self._group_for(scoring_function, minimum_K=k,
                                pair_filter=pair_filter)
        return answer_snapshot(
            group.maintainer.pst, k, n, self.manager.now_seq,
            counters=self.counters,
        )

    # ------------------------------------------------------------------
    def skyband_size(self, scoring_function: ScoringFunction,
                     pair_filter=None) -> int:
        """Current K-skyband size for a scoring function (diagnostics)."""
        group = self._groups.get(_group_key(scoring_function, pair_filter))
        return len(group.maintainer) if group is not None else 0

    def stats(self, *, include_metrics: bool = False) -> dict[str, object]:
        """A diagnostics snapshot of the whole framework (Fig 2 view):
        window occupancy plus, per skyband group, the scoring function,
        strategy, depth K, skyband size and query count.

        With ``include_metrics=True`` the snapshot gains a ``"metrics"``
        key holding the recorder's registry snapshot (see
        :meth:`repro.obs.MetricsRegistry.snapshot`), or ``{}`` when the
        monitor runs with the default :class:`~repro.obs.NullRecorder`.
        """
        snapshot: dict[str, object] = {
            "window_size": self.window_size,
            "window_occupancy": len(self.manager),
            "now_seq": self.manager.now_seq,
            "num_queries": len(self._handles),
            "groups": [
                {
                    "scoring_function": group.scoring_function.name,
                    "filtered": group.pair_filter is not None,
                    "strategy": group.strategy,
                    "K": group.K,
                    "skyband_size": len(group.maintainer),
                    "staircase_size": len(group.maintainer.staircase),
                    "queries": len(group.queries),
                }
                for group in self._groups.values()
            ],
        }
        if include_metrics:
            registry = self.recorder.registry
            snapshot["metrics"] = (
                registry.snapshot() if registry is not None else {}
            )
        return snapshot

    def check_invariants(self) -> None:
        """Validate every group's structures (test helper)."""
        for group in self._groups.values():
            group.maintainer.check_invariants(self.manager)


def _normalize_row(row) -> tuple:
    """``row`` → ``(values, timestamp, payload)``.

    A row whose first element is itself a sequence is a rich
    ``(values, timestamp[, payload])`` tuple; anything else is a plain
    value sequence.
    """
    if (
        isinstance(row, tuple)
        and row
        and isinstance(row[0], (list, tuple))
    ):
        if len(row) > 3:
            raise InvalidParameterError(
                f"row tuples are (values, timestamp[, payload]); "
                f"got {len(row)} elements"
            )
        values = row[0]
        timestamp = row[1] if len(row) > 1 else None
        payload = row[2] if len(row) > 2 else None
        return values, timestamp, payload
    return row, None, None


def _normalize_rows(rows: Iterable, timestamps) -> "Iterator[tuple]":
    """Lazily yield ``(values, timestamp, payload)`` for every row."""
    if timestamps is None:
        for row in rows:
            yield _normalize_row(row)
        return
    timestamp_iter = iter(timestamps)
    for row in rows:
        values, row_timestamp, payload = _normalize_row(row)
        if row_timestamp is not None:
            raise InvalidParameterError(
                "pass timestamps either inline in row tuples or via "
                "timestamps=, not both"
            )
        try:
            timestamp = next(timestamp_iter)
        except StopIteration:
            raise InvalidParameterError(
                "timestamps iterable exhausted before rows"
            ) from None
        yield values, timestamp, payload


def _group_key(scoring_function: ScoringFunction, pair_filter) -> tuple:
    """Skyband sharing key: same scoring-function instance + same filter
    instance (``None`` filter = the unfiltered pair universe)."""
    return (
        id(scoring_function),
        id(pair_filter) if pair_filter is not None else None,
    )
