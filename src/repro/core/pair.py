"""Pairs of stream objects in the (age, score) space.

Paper §III maps every pair ``(o_i, o_j)`` to a two-dimensional point:

* ``score`` — the value of the scoring function on the pair;
* ``age``   — ``max(o_i.age, o_j.age)``, i.e. the age of the *older*
  member, so a pair expires exactly when its older member expires.

Because every object's age shifts by +1 per arrival, we store the older
member's sequence number and derive the age on demand.  All algorithms only
ever *compare* ages, so they use the time-invariant ``age_key``:

    ``age_key = -oldest_seq``   (larger ``age_key``  <=>  older pair)

Footnote 1 of the paper resolves (score, age) ties by perturbing scores by
an infinitesimal based on the objects' ids.  We realize that as the total
order ``score_key = (score, age_key, uid)``: among equal raw scores the
*more recent* pair ranks first (which preserves classical dominance — a
pair with equal score and smaller age must still dominate), and the unique
integer ``uid`` breaks the remaining ties deterministically.

Dominance under this perturbation is:

    ``p dominates q  <=>  p.score_key < q.score_key and
                          p.age_key <= q.age_key``
"""

from __future__ import annotations

from typing import Any, Optional

from repro.stream.object import StreamObject

__all__ = ["Pair", "dominates", "window_age_key_bound"]

_UID_SHIFT = 40  # seq numbers stay far below 2**40 in any realistic run


class Pair:
    """An unordered pair of stream objects with its score.

    The pair is canonicalized so that ``older`` is the member with the
    smaller sequence number (``a.id < b.id`` in the paper's SQL example).
    """

    __slots__ = ("older", "newer", "score", "score_key", "uid")

    def __init__(self, a: StreamObject, b: StreamObject, score: float) -> None:
        if a.seq == b.seq:
            raise ValueError("a pair needs two distinct objects")
        if a.seq < b.seq:
            self.older, self.newer = a, b
        else:
            self.older, self.newer = b, a
        self.score = score
        #: a unique integer id for the (unordered) pair of objects
        self.uid = (self.older.seq << _UID_SHIFT) | self.newer.seq
        self.score_key = (score, -self.older.seq, self.uid)

    # ------------------------------------------------------------------
    @property
    def oldest_seq(self) -> int:
        """Sequence number of the older member (controls expiry)."""
        return self.older.seq

    @property
    def age_key(self) -> int:
        """Time-invariant age coordinate: larger means older."""
        return -self.older.seq

    def age(self, now_seq: int) -> int:
        """The paper's age at stream time ``now_seq``."""
        return now_seq - self.older.seq + 1

    def in_window(self, now_seq: int, n: int) -> bool:
        """Whether the pair lies in the sliding window of size ``n``."""
        return self.age(now_seq) <= n

    def objects(self) -> tuple[StreamObject, StreamObject]:
        return (self.older, self.newer)

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Pair):
            return NotImplemented
        return self.uid == other.uid

    def __hash__(self) -> int:
        return hash(self.uid)

    def __lt__(self, other: "Pair") -> bool:
        """Pairs order by their perturbed score key (footnote 1)."""
        return self.score_key < other.score_key

    def __repr__(self) -> str:
        return (
            f"Pair(older={self.older.seq}, newer={self.newer.seq}, "
            f"score={self.score:.6g})"
        )


def dominates(p: Pair, q: Pair) -> bool:
    """Whether ``p`` dominates ``q`` in the perturbed (age, score) space."""
    return p.score_key < q.score_key and p.age_key <= q.age_key


def window_age_key_bound(now_seq: int, n: int) -> int:
    """The largest ``age_key`` still inside the window of size ``n``.

    A pair is in the window iff ``age <= n`` iff
    ``oldest_seq >= now_seq - n + 1`` iff ``age_key <= n - now_seq - 1``.
    """
    return n - now_seq - 1


def make_pair(
    a: StreamObject,
    b: StreamObject,
    scoring_function: Any,
    counters: Optional[Any] = None,
) -> Pair:
    """Build a scored pair, charging one score evaluation to ``counters``."""
    if counters is not None:
        counters.score_evaluations += 1
    return Pair(a, b, scoring_function.score(a, b))


__all__.append("make_pair")
