"""Snapshot query answering (paper §IV-A).

A snapshot query ``Q(k, n, s)`` is answered from the K-skyband of ``s``:
the priority search tree over the skyband is traversed in the paper's
modified post-order (Algorithm 2), which visits only in-window nodes and
stops after ``k`` post-order visits; the answer is selected from the
visited nodes plus the marked ancestors still on the stack, giving
``O(log |SKB| + k)`` worst case and ``O(log log n + log K + k)`` expected.

The module also carries the query descriptor shared by snapshot and
continuous execution.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.analysis.cost_model import Counters
from repro.core.pair import Pair, window_age_key_bound
from repro.exceptions import InvalidParameterError
from repro.structures.pst import PrioritySearchTree

__all__ = ["TopKPairsQuery", "answer_snapshot"]

_query_ids = itertools.count(1)


class TopKPairsQuery:
    """The descriptor of one top-k pairs query ``Q(k, n, s)``."""

    __slots__ = ("query_id", "scoring_function", "k", "n", "continuous",
                 "pair_filter")

    def __init__(
        self,
        scoring_function,
        k: int,
        n: int,
        *,
        continuous: bool = False,
        pair_filter=None,
    ) -> None:
        if k < 1:
            raise InvalidParameterError(f"k must be >= 1, got {k}")
        if n < 2:
            raise InvalidParameterError(
                f"n must be >= 2 (a window with fewer than two objects "
                f"holds no pairs), got {n}"
            )
        self.query_id = next(_query_ids)
        self.scoring_function = scoring_function
        self.k = k
        self.n = n
        self.continuous = continuous
        self.pair_filter = pair_filter

    def __repr__(self) -> str:
        kind = "continuous" if self.continuous else "snapshot"
        return (
            f"TopKPairsQuery(id={self.query_id}, k={self.k}, n={self.n}, "
            f"s={self.scoring_function.name!r}, {kind})"
        )


def answer_snapshot(
    pst: PrioritySearchTree,
    k: int,
    n: int,
    now_seq: int,
    *,
    counters: Optional[Counters] = None,
) -> list[Pair]:
    """Paper Algorithm 2 over the skyband's PST.

    Returns the top-``k`` pairs with age at most ``n`` at stream time
    ``now_seq``, ascending by score.
    """
    if counters is not None:
        counters.answer_scans += 1
    return pst.top_k(k, window_age_key_bound(now_seq, n))
