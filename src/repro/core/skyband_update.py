"""Algorithm 4: joint K-skyband and K-staircase computation.

Given a score-sorted set of pairs, one sweep decides skyband membership
with a max-heap over the ages of the pairs kept so far (after Tsaparas et
al.'s ranked-join index construction [22]) and emits the matching
staircase point for every kept pair:

* while fewer than K pairs are kept, every pair joins the skyband (it has
  fewer than K potential dominators in total);
* afterwards, a pair whose age is at least the K-th smallest age seen so
  far is dominated by those K earlier (hence lower-score) pairs and is
  discarded; otherwise it joins, displaces the largest of the K tracked
  ages, and contributes the staircase point
  ``(its score key, new K-th smallest age)``.

Cost: ``O(|P| log K)`` for ``|P|`` input pairs.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.cost_model import Counters
from repro.core.pair import Pair
from repro.core.staircase import KStaircase
from repro.structures.heap import MaxHeap

__all__ = ["update_skyband_and_staircase"]


def update_skyband_and_staircase(
    pairs_sorted: Sequence[Pair],
    K: int,
    *,
    counters: Counters | None = None,
    recorder=None,
) -> tuple[list[Pair], KStaircase]:
    """Paper Algorithm 4.

    Parameters
    ----------
    pairs_sorted:
        Candidate pairs in ascending ``score_key`` order (the caller keeps
        the skyband sorted and merges new candidates in, so this order is
        available without re-sorting).
    K:
        Skyband depth — the largest ``k`` any sharing query may use.

    Returns
    -------
    ``(skyband, staircase)`` where ``skyband`` is the K-skyband in
    ascending score order and ``staircase`` the matching
    :class:`~repro.core.staircase.KStaircase`.
    """
    if K < 1:
        raise ValueError(f"K must be >= 1, got {K}")
    heap: MaxHeap = MaxHeap(key=lambda pair: pair.age_key)
    skyband: list[Pair] = []
    staircase_points: list[tuple[tuple, int]] = []
    for pair in pairs_sorted:
        if counters is not None:
            counters.dominance_checks += 1
        if len(heap) < K:
            skyband.append(pair)
            heap.push(pair)
            if counters is not None:
                counters.heap_ops += 1
            if len(heap) == K:
                staircase_points.append((pair.score_key, heap.peek().age_key))
        elif pair.age_key >= heap.peek().age_key:
            # K earlier pairs have smaller score keys and ages <= this
            # pair's age: dominated, discard.
            continue
        else:
            skyband.append(pair)
            heap.pushpop(pair)
            if counters is not None:
                counters.heap_ops += 1
            staircase_points.append((pair.score_key, heap.peek().age_key))
    if recorder is not None and recorder.enabled:
        recorder.on_sweep(len(pairs_sorted), len(skyband))
    return skyband, KStaircase(staircase_points)
