"""Algorithm 4: joint K-skyband and K-staircase computation.

Given a score-sorted set of pairs, one sweep decides skyband membership
with a max-heap over the ages of the pairs kept so far (after Tsaparas et
al.'s ranked-join index construction [22]) and emits the matching
staircase point for every kept pair:

* while fewer than K pairs are kept, every pair joins the skyband (it has
  fewer than K potential dominators in total);
* afterwards, a pair whose age is at least the K-th smallest age seen so
  far is dominated by those K earlier (hence lower-score) pairs and is
  discarded; otherwise it joins, displaces the largest of the K tracked
  ages, and contributes the staircase point
  ``(its score key, new K-th smallest age)``.

Cost: ``O(|P| log K)`` for ``|P|`` input pairs.

Two implementations are provided:

* :func:`sweep_skyband` — the production sweep.  Age keys are plain ints
  (``-older.seq``), so the max-heap is a :mod:`heapq` min-heap of negated
  age keys: every heap operation runs in C with no key-function calls,
  which is the bulk of the sweep's cost in pure Python.  It also accepts
  a *seed* for the incremental maintenance fast path: because the heap
  state at any position depends only on the kept pairs before it, a sweep
  may start mid-skyband when handed the age keys of the K smallest-age
  prefix pairs.  The prefix's own membership and staircase points are
  unchanged by construction, so only the suffix is re-swept.
* :func:`reference_sweep_skyband` — the straightforward
  :class:`~repro.structures.heap.MaxHeap`-over-pairs implementation,
  kept as the A/B baseline that ``fast_path=False`` maintainers (and
  ``repro bench throughput``'s legacy arm) run, and as the obviously
  correct oracle the tests compare against.
"""

from __future__ import annotations

from heapq import heapify, heappush, heappushpop
from typing import Sequence

from repro.analysis.cost_model import Counters
from repro.core.pair import Pair
from repro.core.staircase import KStaircase
from repro.structures.heap import MaxHeap

__all__ = [
    "reference_sweep_skyband",
    "sweep_skyband",
    "update_skyband_and_staircase",
]


def sweep_skyband(
    pairs_sorted: Sequence[Pair],
    K: int,
    *,
    seed: Sequence[int] = (),
    counters: Counters | None = None,
    recorder=None,
) -> tuple[list[Pair], list[tuple]]:
    """One (optionally seeded) Algorithm 4 sweep.

    Parameters
    ----------
    pairs_sorted:
        Candidate pairs in ascending ``score_key`` order.
    K:
        Skyband depth.
    seed:
        The *age keys* of the ``min(K, prefix size)`` smallest-age pairs
        of an untouched, already-kept prefix whose every member has a
        score key below ``pairs_sorted[0]``'s.  The sweep then behaves
        exactly as if it had processed that prefix first, but emits
        membership decisions and staircase points only for
        ``pairs_sorted``.  An empty seed is a plain full sweep.

    Returns
    -------
    ``(kept, points)`` — the kept pairs in ascending score order and the
    staircase points ``(score_key, age_key)`` they contributed.
    """
    if K < 1:
        raise ValueError(f"K must be >= 1, got {K}")
    # Min-heap of negated age keys == max-heap of age keys; heap[0] is
    # the negated K-th smallest age among the kept pairs so far.
    heap = [-age_key for age_key in seed]
    heapify(heap)
    size = len(heap)
    kept: list[Pair] = []
    points: list[tuple[tuple, int]] = []
    for pair in pairs_sorted:
        if counters is not None:
            counters.dominance_checks += 1
        if size < K:
            kept.append(pair)
            heappush(heap, -pair.age_key)
            size += 1
            if counters is not None:
                counters.heap_ops += 1
            if size == K:
                points.append((pair.score_key, -heap[0]))
        else:
            negated = -pair.age_key
            if negated <= heap[0]:
                # K earlier pairs have smaller score keys and ages <=
                # this pair's age: dominated, discard.
                continue
            kept.append(pair)
            heappushpop(heap, negated)
            if counters is not None:
                counters.heap_ops += 1
            points.append((pair.score_key, -heap[0]))
    if recorder is not None and recorder.enabled:
        recorder.on_sweep(len(pairs_sorted), len(kept))
    return kept, points


def reference_sweep_skyband(
    pairs_sorted: Sequence[Pair],
    K: int,
    *,
    counters: Counters | None = None,
    recorder=None,
) -> tuple[list[Pair], list[tuple]]:
    """The straightforward full sweep (MaxHeap over pairs) — the
    pre-fast-path implementation, kept as A/B baseline and test oracle."""
    if K < 1:
        raise ValueError(f"K must be >= 1, got {K}")
    heap: MaxHeap = MaxHeap(key=lambda pair: pair.age_key)
    kept: list[Pair] = []
    points: list[tuple[tuple, int]] = []
    for pair in pairs_sorted:
        if counters is not None:
            counters.dominance_checks += 1
        if len(heap) < K:
            kept.append(pair)
            heap.push(pair)
            if counters is not None:
                counters.heap_ops += 1
            if len(heap) == K:
                points.append((pair.score_key, heap.peek().age_key))
        elif pair.age_key >= heap.peek().age_key:
            continue
        else:
            kept.append(pair)
            heap.pushpop(pair)
            if counters is not None:
                counters.heap_ops += 1
            points.append((pair.score_key, heap.peek().age_key))
    if recorder is not None and recorder.enabled:
        recorder.on_sweep(len(pairs_sorted), len(kept))
    return kept, points


def update_skyband_and_staircase(
    pairs_sorted: Sequence[Pair],
    K: int,
    *,
    counters: Counters | None = None,
    recorder=None,
) -> tuple[list[Pair], KStaircase]:
    """Paper Algorithm 4.

    Parameters
    ----------
    pairs_sorted:
        Candidate pairs in ascending ``score_key`` order (the caller keeps
        the skyband sorted and merges new candidates in, so this order is
        available without re-sorting).
    K:
        Skyband depth — the largest ``k`` any sharing query may use.

    Returns
    -------
    ``(skyband, staircase)`` where ``skyband`` is the K-skyband in
    ascending score order and ``staircase`` the matching
    :class:`~repro.core.staircase.KStaircase`.
    """
    skyband, points = sweep_skyband(
        pairs_sorted, K, counters=counters, recorder=recorder
    )
    return skyband, KStaircase(points)
