"""The K-staircase (paper §V-A.1).

Given the current K-skyband, the K-staircase is a score-sorted list of
virtual points such that a pair is dominated by at least K skyband pairs
*iff* it is dominated by at least one staircase point.  Each staircase
point sits at ``(score of a skyband pair p, K-th smallest age among the
skyband pairs with score <= p.score)``; ages along the staircase are
non-increasing as scores grow, so a single binary search answers the
dominance test in ``O(log |SKB|)`` (the naive count is ``O(|SKB|)``).

Keys follow the library's perturbed total order: staircase points store
the originating pair's ``score_key`` tuple and an ``age_key`` threshold.
A query point with key ``q_key`` and age ``q_age_key`` is dominated iff
the staircase point with the largest ``score_key < q_key`` has
``age_key <= q_age_key`` (that point carries the smallest age threshold
among all eligible ones, so no other needs checking).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Sequence

__all__ = ["KStaircase"]


class KStaircase:
    """An immutable score-sorted staircase supporting dominance tests."""

    __slots__ = ("_score_keys", "_age_keys")

    def __init__(self, points: Sequence[tuple[Any, int]] = ()) -> None:
        """``points`` are ``(score_key, age_key)``, ascending in score_key.

        Ages must be non-increasing; both properties are guaranteed by the
        producing Algorithm 4 and asserted cheaply here.
        """
        self._score_keys = [score_key for score_key, _ in points]
        self._age_keys = [age_key for _, age_key in points]

    def __len__(self) -> int:
        return len(self._score_keys)

    def __bool__(self) -> bool:
        return bool(self._score_keys)

    def points(self) -> list[tuple[Any, int]]:
        return list(zip(self._score_keys, self._age_keys))

    def prefix_points(self, count: int) -> list[tuple[Any, int]]:
        """The first ``count`` points ``(score_key, age_key)``.

        Used by the incremental maintenance fast path: when every skyband
        change sits at score positions >= ``idx``, the staircase points of
        the untouched prefix (there are ``max(0, idx - K + 1)`` of them)
        carry over verbatim and only the suffix is re-swept.
        """
        return list(zip(self._score_keys[:count], self._age_keys[:count]))

    def dominates(self, score_key: Any, age_key: int) -> bool:
        """Whether the K-skyband (via this staircase) dominates the point
        ``(score_key, age_key)`` — i.e. at least K skyband pairs do.

        ``score_key`` may be a pair's full key tuple or any tuple that
        compares against them (the TA threshold uses
        ``(score, -inf, -inf)`` as a conservative lower bound).
        """
        # Index of the first staircase key >= score_key; everything before
        # it has a strictly smaller score key.
        idx = bisect_left(self._score_keys, score_key)
        if idx == 0:
            return False
        return self._age_keys[idx - 1] <= age_key

    def check_invariants(self) -> None:
        """Scores strictly ascending, age thresholds non-increasing."""
        keys = self._score_keys
        ages = self._age_keys
        for i in range(1, len(keys)):
            assert keys[i - 1] < keys[i], "staircase scores out of order"
            assert ages[i - 1] >= ages[i], "staircase ages must not increase"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KStaircase(size={len(self)})"
