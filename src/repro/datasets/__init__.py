"""Workload generators: Börzsönyi-style synthetic distributions and the
Intel-lab-like sensor stream simulator."""

from repro.datasets.sensor import SensorReading, SensorStreamSimulator
from repro.datasets.synthetic import (
    DISTRIBUTIONS,
    anticorrelated_stream,
    correlated_stream,
    make_stream,
    uniform_stream,
)

__all__ = [
    "DISTRIBUTIONS",
    "SensorReading",
    "SensorStreamSimulator",
    "anticorrelated_stream",
    "correlated_stream",
    "make_stream",
    "uniform_stream",
]
