"""Intel-lab-like sensor stream simulator.

The paper's real dataset — 2.3M environment readings from 54 motes in the
Intel Research Berkeley lab, Feb 28 - Apr 5 2004 — is not available
offline, so this module generates a statistically similar stream
(substitution documented in DESIGN.md §5):

* 54 sensors report in epochs of ~31 seconds with per-reading jitter and
  a configurable drop rate (the real motes lose many readings);
* temperature follows a diurnal sine plus a per-sensor offset plus AR(1)
  noise; humidity is negatively correlated with temperature plus its own
  noise; light follows a day/night square-ish profile; voltage decays
  slowly — matching the shapes reported for the real deployment;
* occasional anomaly bursts make one sensor's temperature/humidity jump,
  which is exactly what the paper's scoring function
  ``|dt| / (|dtemp| * |dhum|)`` hunts for.

Each reading is ``(time_seconds, temperature_C, humidity_pct, light_lux,
voltage_V)`` with the sensor id in the payload position of
:func:`readings`.
"""

from __future__ import annotations

import math
import random
from typing import Iterator, NamedTuple

__all__ = ["SensorReading", "SensorStreamSimulator"]

_NUM_SENSORS_DEFAULT = 54
_EPOCH_SECONDS = 31.0


class SensorReading(NamedTuple):
    """One simulated mote reading."""

    sensor_id: int
    time: float
    temperature: float
    humidity: float
    light: float
    voltage: float

    def values(self) -> tuple[float, float, float, float, float]:
        """Attribute tuple in the order the paper's function expects:
        (time, temperature, humidity, light, voltage)."""
        return (self.time, self.temperature, self.humidity, self.light,
                self.voltage)


class SensorStreamSimulator:
    """Deterministic generator of Intel-lab-like sensor readings."""

    def __init__(
        self,
        num_sensors: int = _NUM_SENSORS_DEFAULT,
        *,
        seed: int = 0,
        drop_rate: float = 0.15,
        anomaly_rate: float = 0.002,
    ) -> None:
        self.num_sensors = num_sensors
        self.drop_rate = drop_rate
        self.anomaly_rate = anomaly_rate
        self._rng = random.Random(seed)
        # Per-sensor idiosyncrasies.
        self._temp_offset = [self._rng.gauss(0.0, 1.5) for _ in range(num_sensors)]
        self._hum_offset = [self._rng.gauss(0.0, 3.0) for _ in range(num_sensors)]
        self._temp_noise = [0.0] * num_sensors
        self._hum_noise = [0.0] * num_sensors
        self._voltage = [2.7 + self._rng.random() * 0.3 for _ in range(num_sensors)]

    def readings(self) -> Iterator[SensorReading]:
        """An endless stream of readings in time order."""
        rng = self._rng
        epoch = 0
        while True:
            base_time = epoch * _EPOCH_SECONDS
            day_phase = 2.0 * math.pi * (base_time % 86_400.0) / 86_400.0
            day_temp = 19.0 + 4.0 * math.sin(day_phase - math.pi / 2.0)
            daylight = max(0.0, math.sin(day_phase - math.pi / 2.0))
            for sensor in range(self.num_sensors):
                if rng.random() < self.drop_rate:
                    continue
                # AR(1) noise keeps consecutive readings of one sensor close.
                self._temp_noise[sensor] = (
                    0.9 * self._temp_noise[sensor] + rng.gauss(0.0, 0.15)
                )
                self._hum_noise[sensor] = (
                    0.9 * self._hum_noise[sensor] + rng.gauss(0.0, 0.4)
                )
                temperature = (
                    day_temp
                    + self._temp_offset[sensor]
                    + self._temp_noise[sensor]
                )
                humidity = (
                    75.0
                    - 1.8 * (temperature - 19.0)
                    + self._hum_offset[sensor]
                    + self._hum_noise[sensor]
                )
                if rng.random() < self.anomaly_rate:
                    # A burst: heater blast, window opened, sensor fault...
                    temperature += rng.choice((-1.0, 1.0)) * rng.uniform(5.0, 15.0)
                    humidity += rng.choice((-1.0, 1.0)) * rng.uniform(10.0, 30.0)
                light = daylight * 500.0 + rng.uniform(0.0, 30.0)
                self._voltage[sensor] = max(
                    2.0, self._voltage[sensor] - rng.uniform(0.0, 1e-5)
                )
                yield SensorReading(
                    sensor_id=sensor,
                    time=base_time + rng.uniform(0.0, 2.0),
                    temperature=temperature,
                    humidity=max(0.0, min(100.0, humidity)),
                    light=light,
                    voltage=self._voltage[sensor],
                )
            epoch += 1

    def value_rows(self) -> Iterator[tuple[float, ...]]:
        """Attribute tuples only, for direct monitor ingestion."""
        for reading in self.readings():
            yield reading.values()
