"""Synthetic workloads (paper §VI-A).

Three distributions after Börzsönyi et al.'s skyline benchmark [23]:

* **uniform** — each attribute i.i.d. uniform in [0, 1);
* **correlated** — attributes cluster around a shared per-object level,
  so an object small in one dimension tends to be small in all;
* **anti-correlated** — objects lie near the anti-diagonal hyperplane
  (attribute sum ~ constant), so being small in one dimension means being
  large in others.

All generators are deterministic given their seed and yield plain value
tuples suitable for :meth:`TopKPairsMonitor.append`.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.exceptions import InvalidParameterError

__all__ = [
    "uniform_stream",
    "correlated_stream",
    "anticorrelated_stream",
    "make_stream",
    "DISTRIBUTIONS",
]

DISTRIBUTIONS = ("uniform", "correlated", "anticorrelated")


def uniform_stream(
    num_attributes: int, *, seed: int = 0
) -> Iterator[tuple[float, ...]]:
    """I.i.d. uniform attributes in [0, 1)."""
    rng = random.Random(seed)
    while True:
        yield tuple(rng.random() for _ in range(num_attributes))


def correlated_stream(
    num_attributes: int, *, seed: int = 0, spread: float = 0.05
) -> Iterator[tuple[float, ...]]:
    """Attributes jitter around a shared per-object level."""
    rng = random.Random(seed)
    while True:
        level = rng.random()
        yield tuple(
            _clamp01(rng.gauss(level, spread)) for _ in range(num_attributes)
        )


def anticorrelated_stream(
    num_attributes: int, *, seed: int = 0, spread: float = 0.05
) -> Iterator[tuple[float, ...]]:
    """Objects near the plane ``sum(values) = num_attributes / 2``.

    Sample a point on the simplex scaled to the target sum, then jitter —
    the standard anti-correlated skyline workload.
    """
    rng = random.Random(seed)
    target_sum = num_attributes / 2.0
    while True:
        cuts = sorted(rng.random() for _ in range(num_attributes - 1))
        shares = (
            [cuts[0]]
            + [b - a for a, b in zip(cuts, cuts[1:])]
            + [1.0 - cuts[-1]]
            if num_attributes > 1
            else [1.0]
        )
        yield tuple(
            _clamp01(share * target_sum + rng.gauss(0.0, spread))
            for share in shares
        )


def make_stream(
    distribution: str, num_attributes: int, *, seed: int = 0
) -> Iterator[tuple[float, ...]]:
    """Dispatch by distribution name (``DISTRIBUTIONS``)."""
    if distribution == "uniform":
        return uniform_stream(num_attributes, seed=seed)
    if distribution == "correlated":
        return correlated_stream(num_attributes, seed=seed)
    if distribution == "anticorrelated":
        return anticorrelated_stream(num_attributes, seed=seed)
    raise InvalidParameterError(
        f"unknown distribution {distribution!r}; expected one of "
        f"{DISTRIBUTIONS}"
    )


def _clamp01(value: float) -> float:
    return 0.0 if value < 0.0 else 1.0 if value > 1.0 else value
