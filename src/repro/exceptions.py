"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
programming errors (``TypeError`` etc.) still propagate normally.
"""

from __future__ import annotations

__all__ = [
    "AuditViolationError",
    "CheckpointError",
    "DuplicateItemError",
    "EmptyStructureError",
    "InvalidParameterError",
    "ItemNotFoundError",
    "ProtocolError",
    "ReplicationError",
    "ReproError",
    "ScoringFunctionError",
    "ServeError",
    "ServeTimeoutError",
    "TenantConfigError",
    "UnknownQueryError",
    "WindowError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class InvalidParameterError(ReproError, ValueError):
    """A query or structure parameter is out of its legal range.

    Raised, for example, for ``k < 1``, ``n < 2`` or a query window larger
    than the stream manager's maximum window ``N``.
    """


class UnknownQueryError(ReproError, KeyError):
    """A query handle does not refer to a registered query."""


class DuplicateItemError(ReproError, ValueError):
    """An item was inserted into a structure that already contains it."""


class ItemNotFoundError(ReproError, KeyError):
    """An item expected to be present in a structure is missing."""


class EmptyStructureError(ReproError, IndexError):
    """An operation that needs a non-empty structure was called on an
    empty one (e.g. ``Heap.peek`` on an empty heap)."""


class ScoringFunctionError(ReproError):
    """A scoring function was mis-declared or evaluated on bad input.

    Typical causes: a global scoring function whose combiner is not
    monotonic in the declared sense, or a local scoring function whose
    declared monotonicity directions do not match its behaviour.
    """


class WindowError(ReproError, ValueError):
    """A sliding-window operation received inconsistent parameters
    (e.g. a non-positive window size or a non-monotonic timestamp)."""


class ServeError(ReproError):
    """Base class for errors raised by the :mod:`repro.serve` layer."""


class ServeTimeoutError(ServeError, TimeoutError):
    """A client-side deadline expired waiting on the server.

    Raised by :class:`~repro.serve.client.ServeClient` when connecting
    or when a request's overall deadline passes — including the case
    where the server keeps trickling partial bytes without ever
    completing a frame (a per-``recv`` timeout alone never fires there).
    Also a :class:`TimeoutError` so generic timeout handling applies.
    """


class TenantConfigError(ServeError, ValueError):
    """A tenants file (``repro serve --tenants``) is missing, malformed,
    or declares an invalid namespace/quota (see docs/serving.md,
    multi-tenancy)."""


class ProtocolError(ServeError, ValueError):
    """A wire frame violates the serving protocol (see docs/serving.md).

    Carries the structured error ``code`` the server echoes back to the
    client (``bad_json``, ``bad_frame``, ``unknown_op``, ...).
    """

    def __init__(self, code: str, message: str) -> None:
        self.code = code
        super().__init__(message)


class CheckpointError(ServeError, ValueError):
    """A checkpoint file is missing, malformed, or written by an
    incompatible format version (see docs/serving.md)."""


class ReplicationError(ServeError):
    """The warm-standby replication feed broke an invariant the tailer
    cannot recover from: a sequence gap, an engine desync, or an epoch
    mismatch (see docs/serving.md, failover runbook).  The tailer stops
    rather than silently serving answers that diverged from the
    primary."""


class AuditViolationError(ReproError, AssertionError):
    """The runtime invariant verifier found one or more broken
    invariants (see :mod:`repro.audit`).

    Carries the structured :class:`~repro.audit.report.Violation`
    records on :attr:`violations`.  Also an :class:`AssertionError`, so
    test harnesses that treat assertion failures specially handle audit
    failures the same way.
    """

    def __init__(self, violations) -> None:
        self.violations = list(violations)
        first = str(self.violations[0]) if self.violations else ""
        count = len(self.violations)
        noun = "violation" if count == 1 else "violations"
        suffix = "" if count <= 1 else f" (and {count - 1} more)"
        super().__init__(f"{count} invariant {noun}: {first}{suffix}")
