"""repro.obs — unified observability for the monitoring pipeline.

The paper's whole argument is quantitative: the K-skyband stays near the
``O(K log(N/K))`` bound of Theorem 3 and per-update cost stays sub-linear
(§VI).  This package makes the repo able to *see* that continuously:

* :mod:`repro.obs.metrics` — a process-local :class:`MetricsRegistry`
  with counters, gauges and fixed-bucket histograms (Prometheus-style
  naming, no third-party dependency);
* :mod:`repro.obs.recorder` — the instrumentation fan-in: a no-op
  :class:`NullRecorder` (the default everywhere, so disabled overhead is
  one attribute check per instrumented block) and the live
  :class:`MetricsRecorder`, plus the :class:`Timer` / :func:`timed`
  instrument for ad-hoc block timing;
* :mod:`repro.obs.trace` — structured per-tick :class:`TickEvent`
  records with phase timings (window eviction, new-pair generation,
  skyband insert/expire, staircase repair, PST rebuilds), and the
  legacy :class:`TraceRecorder` it absorbs;
* :mod:`repro.obs.cost_model` — the machine-independent operation
  :class:`Counters` (moved here from ``repro.analysis.cost_model``,
  which remains a compatibility shim);
* :mod:`repro.obs.export` — exporters: Prometheus text exposition,
  JSON-lines tick stream, CSV, and JSON registry snapshots.

Usage::

    from repro import TopKPairsMonitor
    from repro.obs import MetricsRecorder
    from repro.obs.export import to_prometheus

    recorder = MetricsRecorder()
    monitor = TopKPairsMonitor(1000, 2, recorder=recorder)
    ...
    print(to_prometheus(recorder.registry))

Metric catalogue and exporter formats: ``docs/observability.md``.
"""

from repro.obs.cost_model import Counters, CountingScoringFunction
from repro.obs.export import (
    registry_to_json,
    to_prometheus,
    write_metrics_json,
    write_tick_csv,
    write_tick_jsonl,
)
from repro.obs.metrics import (
    DEFAULT_SECONDS_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.recorder import (
    NULL_RECORDER,
    MetricsRecorder,
    NullRecorder,
    Timer,
    timed,
)
from repro.obs.trace import PHASES, TickEvent, TraceRecorder

__all__ = [
    "Counter",
    "Counters",
    "CountingScoringFunction",
    "DEFAULT_SECONDS_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRecorder",
    "MetricsRegistry",
    "NULL_RECORDER",
    "NullRecorder",
    "PHASES",
    "TickEvent",
    "Timer",
    "TraceRecorder",
    "registry_to_json",
    "timed",
    "to_prometheus",
    "write_metrics_json",
    "write_tick_csv",
    "write_tick_jsonl",
]
