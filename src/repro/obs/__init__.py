"""repro.obs — unified observability for the monitoring pipeline.

The paper's whole argument is quantitative: the K-skyband stays near the
``O(K log(N/K))`` bound of Theorem 3 and per-update cost stays sub-linear
(§VI).  This package makes the repo able to *see* that continuously:

* :mod:`repro.obs.metrics` — a process-local :class:`MetricsRegistry`
  with counters, gauges and fixed-bucket histograms (Prometheus-style
  naming, no third-party dependency);
* :mod:`repro.obs.recorder` — the instrumentation fan-in: a no-op
  :class:`NullRecorder` (the default everywhere, so disabled overhead is
  one attribute check per instrumented block) and the live
  :class:`MetricsRecorder`, plus the :class:`Timer` / :func:`timed`
  instrument for ad-hoc block timing;
* :mod:`repro.obs.trace` — structured per-tick :class:`TickEvent`
  records with phase timings (window eviction, new-pair generation,
  skyband insert/expire, staircase repair, PST rebuilds), and the
  legacy :class:`TraceRecorder` it absorbs;
* :mod:`repro.obs.cost_model` — the machine-independent operation
  :class:`Counters` (moved here from ``repro.analysis.cost_model``,
  which remains a compatibility shim);
* :mod:`repro.obs.export` — exporters: Prometheus text exposition,
  JSON-lines tick stream, CSV, and JSON registry snapshots;
* :mod:`repro.obs.spans` — request-level span tracing: client-minted
  trace ids carried through the serving layer, recorded into a bounded
  :class:`SpanRecorder` ring (null-object twin :data:`NULL_SPANS`);
* :mod:`repro.obs.flight` — the :class:`FlightRecorder` post-mortem
  ring (spans + ticks + error frames) with triggered JSONL dumps, and
  the :class:`RingLog` cursor-addressed bounded log under it;
* :mod:`repro.obs.httpd` — the stdlib asyncio HTTP sidecar serving
  ``/metrics``, ``/healthz``, ``/varz``, ``/tracez`` and ``/ticks``
  (``repro serve --obs-port``).

Usage::

    from repro import TopKPairsMonitor
    from repro.obs import MetricsRecorder
    from repro.obs.export import to_prometheus

    recorder = MetricsRecorder()
    monitor = TopKPairsMonitor(1000, 2, recorder=recorder)
    ...
    print(to_prometheus(recorder.registry))

Metric catalogue and exporter formats: ``docs/observability.md``.
"""

from repro.obs.cost_model import Counters, CountingScoringFunction
from repro.obs.flight import FlightRecorder, RingLog
from repro.obs.export import (
    registry_to_json,
    to_prometheus,
    write_metrics_json,
    write_tick_csv,
    write_tick_jsonl,
)
from repro.obs.metrics import (
    DEFAULT_SECONDS_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.httpd import PROMETHEUS_CONTENT_TYPE, ObsHTTPServer
from repro.obs.recorder import (
    NULL_RECORDER,
    MetricsRecorder,
    NullRecorder,
    Timer,
    timed,
)
from repro.obs.spans import (
    NULL_SPANS,
    NullSpanRecorder,
    Span,
    SpanRecorder,
    new_span_id,
    new_trace_id,
)
from repro.obs.trace import PHASES, TickEvent, TraceRecorder

__all__ = [
    "Counter",
    "Counters",
    "CountingScoringFunction",
    "DEFAULT_SECONDS_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRecorder",
    "MetricsRegistry",
    "NULL_RECORDER",
    "NULL_SPANS",
    "NullRecorder",
    "NullSpanRecorder",
    "ObsHTTPServer",
    "PHASES",
    "PROMETHEUS_CONTENT_TYPE",
    "RingLog",
    "Span",
    "SpanRecorder",
    "TickEvent",
    "Timer",
    "TraceRecorder",
    "new_span_id",
    "new_trace_id",
    "registry_to_json",
    "timed",
    "to_prometheus",
    "write_metrics_json",
    "write_tick_csv",
    "write_tick_jsonl",
]
