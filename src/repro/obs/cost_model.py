"""Operation counters — the machine-independent cost model.

The paper's "supreme" competitor (§VI-B) assumes an oracle that performs
all bookkeeping for free, so only *chargeable* operations (score and age
computations, the O(k) answer scan) count toward its cost.  To make that
accounting concrete — and to report costs that do not depend on the Python
interpreter's constant factors — every algorithm in this library can be
handed a :class:`Counters` instance and will tally its primitive
operations into it.

The counters also power the benchmark harness's operation-count mode and
the complexity-trend tests (e.g. "maintenance cost grows ~linearly in N").

This module is the canonical home of the cost model inside the
:mod:`repro.obs` observability layer; ``repro.analysis.cost_model``
remains as a compatibility shim re-exporting the same names.  Wall-clock
metrics (the :class:`~repro.obs.metrics.MetricsRegistry` fed by a
:class:`~repro.obs.recorder.MetricsRecorder`) complement rather than
replace these machine-independent tallies; when a monitor carries both,
the overlapping counts agree (see ``tests/obs/test_compat.py``).
"""

from __future__ import annotations

from typing import Iterator

__all__ = ["Counters", "CountingScoringFunction"]


class Counters:
    """Tallies of the primitive operations the paper's analysis counts."""

    __slots__ = (
        "score_evaluations",
        "pairs_considered",
        "pair_filter_calls",
        "candidate_pairs",
        "dominance_checks",
        "staircase_checks",
        "skyband_inserts",
        "skyband_removals",
        "pst_inserts",
        "pst_deletes",
        "heap_ops",
        "answer_scans",
        "recomputations",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        for field in self.__slots__:
            setattr(self, field, 0)

    def total(self) -> int:
        """A single scalar summary (sum of all tallies)."""
        return sum(getattr(self, field) for field in self.__slots__)

    def snapshot(self) -> dict[str, int]:
        return {field: getattr(self, field) for field in self.__slots__}

    def items(self) -> Iterator[tuple[str, int]]:
        for field in self.__slots__:
            yield field, getattr(self, field)

    def __repr__(self) -> str:
        nonzero = ", ".join(f"{k}={v}" for k, v in self.items() if v)
        return f"Counters({nonzero})"


class CountingScoringFunction:
    """Wraps a scoring function, charging each evaluation to a counter.

    Duck-types as a :class:`~repro.scoring.base.ScoringFunction`; also
    forwards the global-scoring-function surface (``terms``, ``combine``)
    when the wrapped function has it, so the TA path works through the
    wrapper too.
    """

    def __init__(self, inner, counters: Counters) -> None:
        self.inner = inner
        self.counters = counters
        self.name = f"counted({inner.name})"

    def score(self, a, b) -> float:
        self.counters.score_evaluations += 1
        return self.inner.score(a, b)

    def is_global(self) -> bool:
        return self.inner.is_global()

    @property
    def attributes(self):
        return self.inner.attributes

    @property
    def terms(self):
        return self.inner.terms

    def combine(self, local_scores) -> float:
        return self.inner.combine(local_scores)

    def __call__(self, a, b) -> float:
        return self.score(a, b)

    def __repr__(self) -> str:
        return f"CountingScoringFunction({self.inner!r})"
