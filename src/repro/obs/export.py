"""Exporters: Prometheus text exposition, JSON-lines, CSV, JSON.

Three surfaces, matching the three ways the metrics get consumed:

* :func:`to_prometheus` — a point-in-time snapshot of a whole
  :class:`~repro.obs.metrics.MetricsRegistry` in the Prometheus text
  exposition format (version 0.0.4): ``# HELP`` / ``# TYPE`` headers,
  cumulative ``_bucket{le="..."}`` series plus ``_sum`` / ``_count`` for
  histograms.  Scrape-ready, also handy to eyeball in a terminal.
* :func:`write_tick_jsonl` / :func:`write_tick_csv` — the per-tick
  :class:`~repro.obs.trace.TickEvent` stream, one record per tick, for
  offline analysis of skyband / latency dynamics.
* :func:`registry_to_json` / :func:`write_metrics_json` — a JSON-able
  snapshot dict (used by ``--metrics out.json`` on the CLI and by the
  benchmark harness to persist metrics alongside timings).
"""

from __future__ import annotations

import csv
import io
import json
import math
from typing import IO, Iterable, Optional

from repro.obs.metrics import Histogram, MetricFamily, MetricsRegistry
from repro.obs.trace import TICK_FIELDS, TickEvent

__all__ = [
    "registry_to_json",
    "to_prometheus",
    "write_metrics_json",
    "write_tick_csv",
    "write_tick_jsonl",
]


def _fmt_value(value) -> str:
    if isinstance(value, float):
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        return repr(value)
    return str(value)


def _fmt_le(bound: float) -> str:
    if math.isinf(bound):
        return "+Inf"
    return f"{bound:g}"


def _label_str(family: MetricFamily, values: tuple,
               extra: Optional[tuple[str, str]] = None) -> str:
    parts = [
        f'{name}="{_escape(value)}"'
        for name, value in zip(family.labelnames, values)
    ]
    if extra is not None:
        parts.append(f'{extra[0]}="{extra[1]}"')
    return "{" + ",".join(parts) + "}" if parts else ""


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace(
        "\n", "\\n"
    )


def to_prometheus(registry: MetricsRegistry) -> str:
    """The whole registry in Prometheus text exposition format."""
    lines: list[str] = []
    for family in registry.families():
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for values, child in family.children():
            if isinstance(child, Histogram):
                for bound, cumulative in child.cumulative():
                    labels = _label_str(family, values,
                                        extra=("le", _fmt_le(bound)))
                    lines.append(
                        f"{family.name}_bucket{labels} {cumulative}"
                    )
                labels = _label_str(family, values)
                lines.append(
                    f"{family.name}_sum{labels} {_fmt_value(child.sum)}"
                )
                lines.append(f"{family.name}_count{labels} {child.count}")
            else:
                labels = _label_str(family, values)
                lines.append(
                    f"{family.name}{labels} {_fmt_value(child.value)}"
                )
    return "\n".join(lines) + "\n" if lines else ""


def write_tick_jsonl(events: Iterable[TickEvent], handle: IO[str]) -> int:
    """One compact JSON object per tick event; returns the record count.

    Interrupt-safe: each record goes down in a single ``write`` (never a
    half-written line), and a ``KeyboardInterrupt`` mid-stream flushes
    what was written before propagating — Ctrl-C leaves a valid JSONL
    prefix, not a truncated record.
    """
    count = 0
    try:
        for event in events:
            handle.write(
                json.dumps(event.to_dict(), separators=(",", ":")) + "\n"
            )
            count += 1
    except KeyboardInterrupt:
        handle.flush()
        raise
    handle.flush()
    return count


def write_tick_csv(events: Iterable[TickEvent], handle: IO[str]) -> int:
    """Tick events as CSV (header included, ``phase_<name>`` columns);
    returns the record count.

    Interrupt-safe like :func:`write_tick_jsonl`: one ``write`` per row
    and an explicit flush when a ``KeyboardInterrupt`` stops the stream.
    """
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=TICK_FIELDS)
    writer.writeheader()
    handle.write(buffer.getvalue())
    count = 0
    try:
        for event in events:
            buffer.seek(0)
            buffer.truncate()
            writer.writerow(event.to_row())
            handle.write(buffer.getvalue())
            count += 1
    except KeyboardInterrupt:
        handle.flush()
        raise
    handle.flush()
    return count


def registry_to_json(
    registry: MetricsRegistry,
    extra: Optional[dict] = None,
) -> dict[str, object]:
    """A JSON-able snapshot: ``{"metrics": {...}, **extra}``."""
    payload: dict[str, object] = {"metrics": registry.snapshot()}
    if extra:
        payload.update(extra)
    return payload


def write_metrics_json(
    registry: MetricsRegistry,
    path_or_handle,
    extra: Optional[dict] = None,
) -> None:
    """Persist a registry snapshot as pretty-printed JSON.

    ``path_or_handle`` may be a filesystem path or an open text handle —
    the form every CLI ``--metrics out.json`` flag funnels through.
    """
    payload = registry_to_json(registry, extra)
    if hasattr(path_or_handle, "write"):
        json.dump(payload, path_or_handle, indent=2, sort_keys=True)
        path_or_handle.write("\n")
        return
    with open(path_or_handle, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
