"""The flight recorder: a bounded ring of recent telemetry, dumped on
trouble.

Production post-mortems need the moments *before* the failure, not the
steady state after it.  A :class:`FlightRecorder` keeps the last
``capacity`` telemetry records — finished spans, per-ingest tick
summaries, structured error frames — in a ring buffer, and writes them
out as one JSONL file when something goes wrong:

* the serving layer answers a request with a **structured error frame**;
* an ingest **tick exceeds the slow-tick threshold**;
* the operator sends **SIGUSR2** to a running ``repro serve``.

Dumps are rate-limited (``min_dump_interval`` seconds, monotonic clock)
so an error storm produces one post-mortem file, not thousands; file
names carry a process-local counter plus the trigger reason
(``flight-0001-slow_tick.jsonl``), never a wall-clock stamp (RA108).

:class:`RingLog` is the underlying bounded sequence-numbered log; the
HTTP sidecar reuses it for the ``/ticks`` live stream, where the
sequence numbers give cheap resumable cursors.

The recorder itself is synchronous and allocation-light; the *dump* path
does blocking file I/O, so async callers (the serve event loop) must run
:meth:`dump` through ``loop.run_in_executor`` — exactly like checkpoint
writes (see ``ServeServer._write_flight_dump``).
"""

from __future__ import annotations

import json
import os
from collections import deque
from time import perf_counter
from typing import IO, Optional, Union

__all__ = ["FlightRecorder", "RingLog"]


class RingLog:
    """A bounded log of JSON-able records with absolute sequence numbers.

    Appends are O(1); :meth:`since` returns every retained record newer
    than a cursor plus the new cursor, so pollers resume exactly where
    they left off even after the ring evicted older entries.
    """

    __slots__ = ("_records", "_seq")

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._records: deque[tuple[int, dict]] = deque(maxlen=capacity)
        self._seq = 0

    def append(self, record: dict) -> int:
        """Append one record; returns its sequence number (1-based)."""
        self._seq += 1
        self._records.append((self._seq, record))
        return self._seq

    @property
    def seq(self) -> int:
        """The newest sequence number (0 when nothing was appended)."""
        return self._seq

    def __len__(self) -> int:
        return len(self._records)

    def since(self, cursor: int) -> tuple[list[dict], int]:
        """``(records newer than cursor, newest seq)`` — poll + resume.

        ``list()`` snapshots the deque atomically first, so a reader on
        another thread never races an append mid-iteration.
        """
        items = list(self._records)
        return [record for seq, record in items if seq > cursor], self._seq

    def snapshot(self) -> list[dict]:
        """Every retained record, oldest first."""
        return [record for _seq, record in list(self._records)]


class FlightRecorder:
    """Bounded telemetry ring with triggered JSONL dumps.

    Parameters
    ----------
    capacity:
        Records retained (spans + ticks + errors share one ring).
    dump_dir:
        Directory dump files are minted in (created on first dump).
    slow_tick_seconds:
        Ingest ticks slower than this should trigger a dump (the serve
        layer compares and calls :meth:`plan_dump`); ``None`` disables.
    min_dump_interval:
        Monotonic seconds between dumps; triggers inside the window are
        counted (``dumps_suppressed``) but write nothing.
    """

    def __init__(
        self,
        capacity: int = 512,
        *,
        dump_dir: str = ".",
        slow_tick_seconds: Optional[float] = None,
        min_dump_interval: float = 5.0,
    ) -> None:
        self.ring = RingLog(capacity)
        self.dump_dir = dump_dir
        self.slow_tick_seconds = slow_tick_seconds
        self.min_dump_interval = min_dump_interval
        self.dumps_written = 0
        self.dumps_suppressed = 0
        self._dump_counter = 0
        self._last_dump_at: Optional[float] = None

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record_span(self, span: dict) -> None:
        """Record one finished span dict (the ``SpanRecorder.sink``
        hook)."""
        self.ring.append({"kind": "span", **span})

    def record_tick(self, tick: dict) -> None:
        """Record one per-ingest tick summary."""
        self.ring.append({"kind": "tick", **tick})

    def record_error(self, code: str, message: str,
                     op: Optional[str] = None,
                     peer: Optional[str] = None) -> None:
        """Record one structured error frame the server sent."""
        record: dict = {"kind": "error", "code": code, "message": message}
        if op is not None:
            record["op"] = op
        if peer is not None:
            record["peer"] = peer
        self.ring.append(record)

    def is_slow_tick(self, seconds: float) -> bool:
        """Whether one tick's duration crosses the slow-tick threshold."""
        return (self.slow_tick_seconds is not None
                and seconds > self.slow_tick_seconds)

    # ------------------------------------------------------------------
    # dumping
    # ------------------------------------------------------------------
    def plan_dump(self, reason: str, *, force: bool = False) -> Optional[str]:
        """Mint the next dump path, or ``None`` when rate-limited.

        Splitting *planning* (synchronous, cheap) from *writing*
        (:meth:`dump`, blocking I/O) lets the event loop reserve the
        dump slot immediately and push the file write to an executor.
        ``force`` skips the rate limit — operator-triggered dumps
        (SIGUSR2) must never be swallowed by an earlier automatic one.
        """
        now = perf_counter()
        if not force and self._last_dump_at is not None \
                and now - self._last_dump_at < self.min_dump_interval:
            self.dumps_suppressed += 1
            return None
        self._last_dump_at = now
        self._dump_counter += 1
        return os.path.join(
            self.dump_dir, f"flight-{self._dump_counter:04d}-{reason}.jsonl"
        )

    def dump(self, path_or_handle: Union[str, IO[str]],
             reason: str = "manual") -> int:
        """Write the ring as JSONL (header record first); returns the
        record count written (excluding the header).

        Blocking file I/O — run through an executor from async code.
        """
        records = self.ring.snapshot()
        header = {
            "kind": "flight_dump",
            "reason": reason,
            "records": len(records),
            "newest_seq": self.ring.seq,
        }
        if hasattr(path_or_handle, "write"):
            self._write(path_or_handle, header, records)
        else:
            directory = os.path.dirname(path_or_handle)
            if directory:
                os.makedirs(directory, exist_ok=True)
            with open(path_or_handle, "w", encoding="utf-8") as handle:
                self._write(handle, header, records)
        self.dumps_written += 1
        return len(records)

    @staticmethod
    def _write(handle: IO[str], header: dict, records: list[dict]) -> None:
        handle.write(json.dumps(header, separators=(",", ":")) + "\n")
        for record in records:
            handle.write(json.dumps(record, separators=(",", ":")) + "\n")
        handle.flush()
