"""The telemetry HTTP sidecar: ``/metrics``, ``/healthz``, ``/varz``,
``/tracez``, ``/ticks``.

A tiny stdlib-only asyncio HTTP server that runs *next to* the NDJSON
serving port (``repro serve --obs-port``) and exposes the process's
observability surfaces over plain GET:

============  =======================================================
``/metrics``  the :class:`~repro.obs.metrics.MetricsRegistry` in
              Prometheus text exposition format (scrape-ready)
``/healthz``  liveness JSON — window occupancy, last-tick age,
              subscriber count — from a caller-supplied probe
``/varz``     the full registry snapshot as JSON
``/tracez``   recent finished spans (``?trace=<id>`` filters to one
              trace, ``?limit=N`` bounds the count)
``/ticks``    live NDJSON stream of per-ingest tick summaries from a
              :class:`~repro.obs.flight.RingLog` (``?backlog=M``
              replays up to M retained records first, ``?limit=N``
              closes the stream after N records — handy for one-shot
              tools like ``repro obs tail --limit 5``)
============  =======================================================

Deliberately *not* a web framework: HTTP/1.0 semantics, GET only, one
request per connection, ``Connection: close``.  That keeps the whole
parser at a readline plus a header drain, and means ``stop()`` never
waits on an idle keep-alive socket.  The only long-lived handler is
``/ticks``, whose poll loop re-checks the server's stopping flag every
``poll_interval`` seconds, so shutdown is bounded too.

Everything served here is a synchronous snapshot of process-local state
(registry, span ring, tick ring) — handlers never touch files, never
block, and never mutate server state, so they are safe under the
project's async lint rules (RA201/RA202) without locks.
"""

from __future__ import annotations

import asyncio
import json
from typing import Callable, Optional
from urllib.parse import parse_qs, urlsplit

from repro.obs.export import registry_to_json, to_prometheus
from repro.obs.flight import FlightRecorder, RingLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import NULL_SPANS

__all__ = ["ObsHTTPServer", "PROMETHEUS_CONTENT_TYPE"]

#: the content type Prometheus scrapers expect from a text endpoint
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_JSON = "application/json; charset=utf-8"


def _json_body(payload: dict) -> bytes:
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")


def _first_int(params: dict, key: str, default: int) -> int:
    values = params.get(key)
    if not values:
        return default
    try:
        return int(values[0])
    except ValueError:
        return default


class ObsHTTPServer:
    """The sidecar server.  All knobs are optional: a surface whose
    backing object was not supplied serves an empty-but-valid response,
    so the sidecar composes with any subset of the obs stack.

    Parameters
    ----------
    registry:
        Metrics for ``/metrics`` and ``/varz``.
    spans:
        Span recorder for ``/tracez`` (default: the null recorder).
    flight:
        Flight recorder; surfaced in ``/healthz`` (dump counters).
    ticks:
        Ring log of tick summaries streamed by ``/ticks``.
    health:
        Zero-arg callable returning a JSON-able dict merged into
        ``/healthz`` — the serve layer passes a probe reporting window
        occupancy, last-tick age and subscriber count.  Must be cheap
        and synchronous; it runs on the event loop.
    """

    def __init__(
        self,
        *,
        registry: Optional[MetricsRegistry] = None,
        spans=None,
        flight: Optional[FlightRecorder] = None,
        ticks: Optional[RingLog] = None,
        health: Optional[Callable[[], dict]] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        request_timeout: float = 5.0,
        poll_interval: float = 0.1,
    ) -> None:
        self.registry = registry
        self.spans = spans if spans is not None else NULL_SPANS
        self.flight = flight
        self.ticks = ticks
        self.health = health
        self.host = host
        self.port = port
        self.request_timeout = request_timeout
        self.poll_interval = poll_interval
        self._server: Optional[asyncio.AbstractServer] = None
        self._stopping = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> int:
        """Bind and start serving; returns the resolved port."""
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def stop(self) -> None:
        """Stop accepting and wind down live handlers.

        Setting the stopping flag first lets any open ``/ticks`` stream
        notice within one poll interval, so ``wait_closed()`` (which on
        Python 3.12 waits for handler tasks) terminates promptly.
        """
        self._stopping = True
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            request = await asyncio.wait_for(
                reader.readline(), self.request_timeout
            )
            parts = request.decode("latin-1", "replace").split()
            if len(parts) < 2:
                return
            method, target = parts[0], parts[1]
            # Drain headers; HTTP/1.0 + Connection: close means we never
            # need their contents.
            while True:
                line = await asyncio.wait_for(
                    reader.readline(), self.request_timeout
                )
                if line in (b"\r\n", b"\n", b""):
                    break
            split = urlsplit(target)
            params = parse_qs(split.query)
            if method != "GET":
                await self._send(
                    writer, 405, _JSON,
                    _json_body({"error": "method_not_allowed"}),
                )
            elif split.path == "/ticks":
                await self._stream_ticks(writer, params)
            else:
                status, ctype, body = self._render(split.path, params)
                await self._send(writer, status, ctype, body)
        except (ConnectionError, asyncio.TimeoutError,
                asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _render(self, path: str, params: dict) -> tuple[int, str, bytes]:
        """Route one non-streaming GET to ``(status, ctype, body)``."""
        try:
            if path == "/metrics":
                text = (to_prometheus(self.registry)
                        if self.registry is not None else "")
                return 200, PROMETHEUS_CONTENT_TYPE, text.encode("utf-8")
            if path == "/healthz":
                return 200, _JSON, _json_body(self._healthz())
            if path == "/varz":
                payload = (registry_to_json(self.registry)
                           if self.registry is not None
                           else {"metrics": {}})
                return 200, _JSON, _json_body(payload)
            if path == "/tracez":
                return 200, _JSON, _json_body(self._tracez(params))
            return 404, _JSON, _json_body(
                {"error": "not_found", "path": path}
            )
        except Exception as exc:
            return 500, _JSON, _json_body(
                {"error": "internal", "type": type(exc).__name__,
                 "message": str(exc)}
            )

    def _healthz(self) -> dict:
        payload: dict = {"status": "ok"}
        if self.health is not None:
            payload.update(self.health())
        if self.flight is not None:
            payload["flight"] = {
                "records": len(self.flight.ring),
                "dumps_written": self.flight.dumps_written,
                "dumps_suppressed": self.flight.dumps_suppressed,
            }
        return payload

    def _tracez(self, params: dict) -> dict:
        limit = _first_int(params, "limit", 64)
        traces = params.get("trace")
        if traces:
            spans = self.spans.for_trace(traces[0])
        else:
            spans = self.spans.recent(limit)
        return {
            "spans": spans,
            "finished_total": self.spans.finished_total,
            "enabled": bool(self.spans.enabled),
        }

    async def _stream_ticks(self, writer: asyncio.StreamWriter,
                            params: dict) -> None:
        """NDJSON-stream tick records until limit, disconnect or stop."""
        writer.write(
            b"HTTP/1.0 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()
        ring = self.ticks
        if ring is None:
            return
        limit = _first_int(params, "limit", 0)
        backlog = _first_int(params, "backlog", 0)
        cursor = max(0, ring.seq - max(0, backlog))
        sent = 0
        while not self._stopping:
            records, cursor = ring.since(cursor)
            for record in records:
                writer.write(
                    json.dumps(record, separators=(",", ":"))
                    .encode("utf-8") + b"\n"
                )
                sent += 1
                if limit and sent >= limit:
                    break
            if records:
                await writer.drain()
            if limit and sent >= limit:
                return
            await asyncio.sleep(self.poll_interval)

    @staticmethod
    async def _send(writer: asyncio.StreamWriter, status: int,
                    ctype: str, body: bytes) -> None:
        reason = {200: "OK", 404: "Not Found",
                  405: "Method Not Allowed"}.get(status, "Error")
        head = (
            f"HTTP/1.0 {status} {reason}\r\n"
            f"Content-Type: {ctype}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()
