"""Process-local metrics: counters, gauges and fixed-bucket histograms.

A :class:`MetricsRegistry` is a flat namespace of metric *families*
following Prometheus conventions: a family has a name
(``repro_pst_inserts_total``), a type, a help string, and zero or more
label names; each distinct label-value combination owns one child metric.
Unlabelled families have exactly one child, and the registry accessors
return that child directly so hot-path code holds a plain
:class:`Counter` / :class:`Gauge` / :class:`Histogram` and pays one
attribute access plus one integer add per event.

Histograms use *fixed* buckets chosen at registration time (no dynamic
resizing — snapshotting must never perturb the hot path).  Bucket counts
are stored per-interval and cumulated only at export time, so ``observe``
is one :func:`bisect.bisect_left` plus two adds.

The registry is deliberately dependency-free and synchronous; it is
process-local state for a single-threaded monitor, matching the rest of
the library.
"""

from __future__ import annotations

import re
from bisect import bisect_left
from typing import Iterator, Optional, Sequence, Union

from repro.exceptions import InvalidParameterError

__all__ = [
    "DEFAULT_SECONDS_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
]

#: latency buckets tuned for pure-Python per-tick work (10 µs .. 1 s)
DEFAULT_SECONDS_BUCKETS = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5, 1.0,
)

#: size buckets (powers of two) for structure sizes, e.g. PST rebuilds
DEFAULT_SIZE_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 1024, 4096)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


class Counter:
    """A monotonically increasing tally."""

    kind = "counter"

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: Union[int, float] = 1) -> None:
        if amount < 0:
            raise InvalidParameterError(
                f"counters only go up, got increment {amount}"
            )
        self.value += amount

    def snapshot(self) -> Union[int, float]:
        return self.value


class Gauge:
    """A value that can go up and down (sizes, occupancy)."""

    kind = "gauge"

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def set(self, value: Union[int, float]) -> None:
        self.value = value

    def inc(self, amount: Union[int, float] = 1) -> None:
        self.value += amount

    def dec(self, amount: Union[int, float] = 1) -> None:
        self.value -= amount

    def snapshot(self) -> Union[int, float]:
        return self.value


class Histogram:
    """Fixed-bucket histogram with sum and count.

    ``buckets`` are ascending inclusive upper bounds; observations above
    the last bound land in the implicit ``+Inf`` bucket.  Per-interval
    counts are cumulated only when exported (Prometheus ``le`` buckets
    are cumulative).
    """

    kind = "histogram"

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: Sequence[float]) -> None:
        if not buckets:
            raise InvalidParameterError("a histogram needs >= 1 bucket")
        bounds = tuple(buckets)
        if list(bounds) != sorted(set(bounds)):
            raise InvalidParameterError(
                f"bucket bounds must be strictly ascending, got {bounds}"
            )
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # last slot = +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ``inf`` last."""
        out: list[tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.buckets, self.counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), running + self.counts[-1]))
        return out

    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def snapshot(self) -> dict[str, object]:
        return {
            "count": self.count,
            "sum": self.sum,
            "buckets": {
                _format_bound(bound): cum for bound, cum in self.cumulative()
            },
        }


class MetricFamily:
    """One named metric with its labelled children.

    Children are created on first use via :meth:`labels`; an unlabelled
    family creates its single child eagerly (:attr:`solo`).
    """

    __slots__ = ("name", "help", "kind", "labelnames", "buckets",
                 "_children", "solo")

    def __init__(
        self,
        name: str,
        kind: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        if not _NAME_RE.match(name):
            raise InvalidParameterError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise InvalidParameterError(f"invalid label name {label!r}")
        self.name = name
        self.help = help
        self.kind = kind
        self.labelnames = tuple(labelnames)
        self.buckets = tuple(buckets) if buckets is not None else None
        self._children: dict[tuple, object] = {}
        self.solo = None if self.labelnames else self._make_child(())

    def _make_child(self, key: tuple):
        if self.kind == "counter":
            child: object = Counter()
        elif self.kind == "gauge":
            child = Gauge()
        else:
            child = Histogram(self.buckets or DEFAULT_SECONDS_BUCKETS)
        self._children[key] = child
        return child

    def labels(self, *values: str, **kw: str):
        """The child for one label-value combination (created on first
        use).  Accepts positional values in ``labelnames`` order or the
        equivalent keywords."""
        if kw:
            if values:
                raise InvalidParameterError(
                    "pass label values positionally or by keyword, not both"
                )
            try:
                values = tuple(kw[name] for name in self.labelnames)
            except KeyError as exc:
                raise InvalidParameterError(
                    f"unknown label {exc.args[0]!r} for metric {self.name}"
                ) from exc
        if len(values) != len(self.labelnames):
            raise InvalidParameterError(
                f"metric {self.name} takes labels {self.labelnames}, "
                f"got {values!r}"
            )
        key = tuple(str(v) for v in values)
        child = self._children.get(key)
        return child if child is not None else self._make_child(key)

    def remove(self, *values: str) -> bool:
        """Drop the child for one label-value combination, if present.

        Label cardinality is otherwise unbounded for families labelled
        by churning identities (peer addresses, namespaces): every
        distinct value ever seen stays in every future export.  Callers
        that label by such identities must evict when the identity goes
        away (the serve layer does this on peer disconnect).  Returns
        whether a child was removed.
        """
        key = tuple(str(v) for v in values)
        return self._children.pop(key, None) is not None

    def __len__(self) -> int:
        """The number of live children (label combinations)."""
        return len(self._children)

    def __contains__(self, values) -> bool:
        key = (tuple(str(v) for v in values)
               if isinstance(values, (tuple, list)) else (str(values),))
        return key in self._children

    def children(self) -> Iterator[tuple[tuple, object]]:
        """``(label_values, child)`` pairs in creation order."""
        return iter(self._children.items())

    def snapshot(self) -> object:
        if self.solo is not None:
            return self.solo.snapshot()
        return {
            ",".join(
                f"{n}={v}" for n, v in zip(self.labelnames, key)
            ): child.snapshot()
            for key, child in self._children.items()
        }


class MetricsRegistry:
    """A flat, ordered namespace of metric families.

    ``counter`` / ``gauge`` / ``histogram`` get-or-create a family; for
    unlabelled families they return the single child metric directly (the
    object hot paths hold on to), for labelled families the
    :class:`MetricFamily` itself.  Re-registering a name with a different
    type, labels or buckets raises.
    """

    def __init__(self) -> None:
        self._families: dict[str, MetricFamily] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str, help: str = "",
                labelnames: Sequence[str] = ()):
        return self._register(name, "counter", help, labelnames, None)

    def gauge(self, name: str, help: str = "",
              labelnames: Sequence[str] = ()):
        return self._register(name, "gauge", help, labelnames, None)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_SECONDS_BUCKETS,
        labelnames: Sequence[str] = (),
    ):
        return self._register(name, "histogram", help, labelnames, buckets)

    def _register(self, name, kind, help, labelnames, buckets):
        family = self._families.get(name)
        if family is None:
            family = MetricFamily(name, kind, help, labelnames, buckets)
            self._families[name] = family
        else:
            same = (
                family.kind == kind
                and family.labelnames == tuple(labelnames)
                and (kind != "histogram"
                     or family.buckets == tuple(buckets or ()))
            )
            if not same:
                raise InvalidParameterError(
                    f"metric {name!r} already registered as a "
                    f"{family.kind} with labels {family.labelnames}"
                )
        return family.solo if family.solo is not None else family

    # ------------------------------------------------------------------
    def get(self, name: str) -> Optional[MetricFamily]:
        return self._families.get(name)

    def families(self) -> Iterator[MetricFamily]:
        return iter(self._families.values())

    def __iter__(self) -> Iterator[MetricFamily]:
        return self.families()

    def __len__(self) -> int:
        return len(self._families)

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def value(self, name: str, *labels: str):
        """Convenience: the current value of a counter/gauge child (the
        raw :class:`Histogram` for histograms)."""
        family = self._families[name]
        child = family.solo if not labels else family.labels(*labels)
        return child.value if hasattr(child, "value") else child

    def snapshot(self) -> dict[str, object]:
        """A JSON-able ``{name: value}`` view of every family: plain
        numbers for unlabelled counters/gauges, nested dicts for labelled
        families, ``{count, sum, buckets}`` dicts for histograms."""
        return {
            name: family.snapshot()
            for name, family in self._families.items()
        }

    def reset(self) -> None:
        """Zero every child metric (families and buckets are kept)."""
        for family in self._families.values():
            for _, child in family.children():
                if isinstance(child, Histogram):
                    child.counts = [0] * (len(child.buckets) + 1)
                    child.sum = 0.0
                    child.count = 0
                else:
                    child.value = 0


def _format_bound(bound: float) -> str:
    if bound == float("inf"):
        return "+Inf"
    return f"{bound:g}"
