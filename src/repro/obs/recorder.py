"""Instrumentation fan-in: the null and live recorders, and timers.

Every instrumented component (stream manager, skip lists, PST, skyband
maintainers, the monitor) holds a *recorder*.  The default is the shared
:data:`NULL_RECORDER`, whose ``enabled`` class attribute is ``False`` —
instrumented blocks are guarded with ``if obs.enabled:`` so the disabled
cost is one attribute check, no call, no allocation.  A
:class:`MetricsRecorder` flips ``enabled`` to ``True``, funnels every
hook into a :class:`~repro.obs.metrics.MetricsRegistry`, and (optionally)
builds one :class:`~repro.obs.trace.TickEvent` per stream tick.

Hook protocol (all methods exist on both recorders):

* tick lifecycle — ``begin_tick()`` … ``end_tick(seconds, ...)``, driven
  by the monitor per append / batch boundary;
* phase timings — ``phase(name, seconds)`` accumulates into the current
  tick event and a per-phase histogram;
* structure events — ``on_window``, ``on_candidates``,
  ``on_skyband_delta``, ``on_pst_insert`` / ``on_pst_delete`` /
  ``on_pst_rebuild``, ``on_skiplist_traversal``, ``on_sweep``;
* query answering — ``observe_results(seconds)``;
* ad-hoc blocks — ``observe(name, seconds)``, usually via
  :func:`timed` / :class:`Timer`.

Metric names and buckets are catalogued in ``docs/observability.md``.
"""

from __future__ import annotations

from collections import deque
from time import perf_counter
from typing import Optional, Union

from repro.obs.metrics import (
    DEFAULT_SECONDS_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    MetricsRegistry,
)
from repro.obs.trace import TickEvent

__all__ = [
    "MetricsRecorder",
    "NULL_RECORDER",
    "NullRecorder",
    "Timer",
    "timed",
]


class NullRecorder:
    """The do-nothing recorder every component defaults to.

    ``enabled`` is a class attribute, so the disabled-instrumentation
    cost in a hot path is a single attribute check that fails.  All hook
    methods exist (and do nothing) so a recorder can always be called
    unconditionally from cold paths.
    """

    __slots__ = ()

    enabled = False
    registry = None
    events: tuple = ()

    def begin_tick(self) -> None:
        pass

    def phase(self, name: str, seconds: float) -> None:
        pass

    def on_window(self, arrivals: int, evictions: int) -> None:
        pass

    def on_candidates(self, count: int) -> None:
        pass

    def on_skyband_delta(self, added: int, removed: int,
                         expired: int) -> None:
        pass

    def on_pst_insert(self) -> None:
        pass

    def on_pst_delete(self) -> None:
        pass

    def on_pst_rebuild(self, size: int, seconds: float,
                       partial: bool) -> None:
        pass

    def on_skiplist_traversal(self, steps: int) -> None:
        pass

    def on_sweep(self, pairs: int, kept: int) -> None:
        pass

    def on_apply_path(self, path: str) -> None:
        pass

    def observe(self, name: str, seconds: float) -> None:
        pass

    def observe_results(self, seconds: float) -> None:
        pass

    def end_tick(
        self,
        seconds: float,
        *,
        now_seq: int = 0,
        skyband_size: int = 0,
        staircase_size: int = 0,
        window_occupancy: int = 0,
    ) -> None:
        pass


#: the process-wide shared no-op recorder (stateless, safe to share)
NULL_RECORDER = NullRecorder()


class MetricsRecorder:
    """The live recorder: registry metrics plus an optional tick trace.

    Parameters
    ----------
    registry:
        The :class:`MetricsRegistry` to register into (a fresh private
        one by default).  Sharing a registry across recorders is allowed
        as long as metric definitions agree.
    trace:
        When true (default), one :class:`TickEvent` per stream tick is
        appended to :attr:`events`.
    trace_capacity:
        Bound the tick trace to the most recent ``trace_capacity`` events
        (a ring buffer); ``None`` keeps everything.
    """

    enabled = True

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        *,
        trace: bool = True,
        trace_capacity: Optional[int] = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        r = self.registry
        self.events: Union[deque, list] = (
            deque(maxlen=trace_capacity) if trace_capacity is not None
            else []
        )
        self._trace = trace
        # -- pre-resolved instruments (hot paths touch these directly) --
        self._ticks = r.counter(
            "repro_ticks_total", "stream ticks (appends or batch boundaries)"
        )
        self._objects = r.counter(
            "repro_objects_total", "objects admitted to the stream"
        )
        self._evictions = r.counter(
            "repro_evictions_total", "objects expired from the window"
        )
        self._candidates = r.counter(
            "repro_candidate_pairs_total",
            "non-dominated new pairs surviving staircase pruning",
        )
        self._skyband_inserts = r.counter(
            "repro_skyband_inserts_total", "pairs that entered a K-skyband"
        )
        self._skyband_removals = r.counter(
            "repro_skyband_removals_total",
            "pairs dominated out of a K-skyband",
        )
        self._skyband_expirations = r.counter(
            "repro_skyband_expirations_total",
            "skyband pairs dropped because their older member expired",
        )
        self._pst_inserts = r.counter(
            "repro_pst_inserts_total", "priority search tree insertions"
        )
        self._pst_deletes = r.counter(
            "repro_pst_deletes_total", "priority search tree deletions"
        )
        self._pst_rebuilds = r.counter(
            "repro_pst_rebuilds_total",
            "PST scapegoat partial rebuilds plus full rebuilds",
        )
        self._pst_rebuild_size = r.histogram(
            "repro_pst_rebuild_size",
            "points re-inserted per PST rebuild",
            buckets=DEFAULT_SIZE_BUCKETS,
        )
        self._pst_rebuild_seconds = r.histogram(
            "repro_pst_rebuild_seconds", "wall seconds per PST rebuild"
        )
        self._skiplist_traversals = r.counter(
            "repro_skiplist_node_traversals_total",
            "skip-list nodes stepped over during insert/remove descents",
        )
        self._sweeps = r.counter(
            "repro_sweeps_total", "Algorithm 4 skyband/staircase sweeps"
        )
        self._sweep_pairs = r.counter(
            "repro_sweep_pairs_total", "pairs examined by Algorithm 4 sweeps"
        )
        self._apply_path_family = r.counter(
            "repro_apply_path_total",
            "candidate merges by maintenance path (incremental vs sweep)",
            labelnames=("path",),
        )
        self._apply_paths: dict = {}
        self._append_seconds = r.histogram(
            "repro_append_seconds", "wall seconds per monitor append / batch"
        )
        self._results_seconds = r.histogram(
            "repro_results_seconds", "wall seconds per results() call"
        )
        self._skyband_size = r.gauge(
            "repro_skyband_size", "total K-skyband size across groups"
        )
        self._staircase_size = r.gauge(
            "repro_staircase_size", "total K-staircase size across groups"
        )
        self._window_occupancy = r.gauge(
            "repro_window_occupancy", "objects currently in the window"
        )
        self._phase_family = r.histogram(
            "repro_phase_seconds",
            "wall seconds per pipeline phase invocation",
            labelnames=("phase",),
        )
        self._phase_hists: dict = {}
        self._adhoc: dict = {}
        # -- per-tick accumulators --
        self._tick_phases: dict[str, float] = {}
        self._tick_counts = [0, 0, 0, 0, 0, 0, 0]
        # indices: arrivals, evictions, candidates, added, removed,
        #          expired, pst_rebuilds

    # ------------------------------------------------------------------
    # tick lifecycle
    # ------------------------------------------------------------------
    def begin_tick(self) -> None:
        self._tick_phases = {}
        self._tick_counts = [0, 0, 0, 0, 0, 0, 0]

    def end_tick(
        self,
        seconds: float,
        *,
        now_seq: int = 0,
        skyband_size: int = 0,
        staircase_size: int = 0,
        window_occupancy: int = 0,
    ) -> None:
        self._ticks.inc()
        self._append_seconds.observe(seconds)
        self._skyband_size.set(skyband_size)
        self._staircase_size.set(staircase_size)
        self._window_occupancy.set(window_occupancy)
        if self._trace:
            counts = self._tick_counts
            self.events.append(TickEvent(
                tick=now_seq,
                seconds=seconds,
                arrivals=counts[0],
                evictions=counts[1],
                candidates=counts[2],
                skyband_added=counts[3],
                skyband_removed=counts[4],
                skyband_expired=counts[5],
                pst_rebuilds=counts[6],
                skyband_size=skyband_size,
                staircase_size=staircase_size,
                window_occupancy=window_occupancy,
                phases=self._tick_phases,
            ))
        self._tick_phases = {}
        self._tick_counts = [0, 0, 0, 0, 0, 0, 0]

    # ------------------------------------------------------------------
    # hooks
    # ------------------------------------------------------------------
    def phase(self, name: str, seconds: float) -> None:
        hist = self._phase_hists.get(name)
        if hist is None:
            hist = self._phase_hists[name] = self._phase_family.labels(name)
        hist.observe(seconds)
        acc = self._tick_phases
        acc[name] = acc.get(name, 0.0) + seconds

    def on_window(self, arrivals: int, evictions: int) -> None:
        self._objects.inc(arrivals)
        counts = self._tick_counts
        counts[0] += arrivals
        if evictions:
            self._evictions.inc(evictions)
            counts[1] += evictions

    def on_candidates(self, count: int) -> None:
        self._candidates.inc(count)
        self._tick_counts[2] += count

    def on_skyband_delta(self, added: int, removed: int,
                         expired: int) -> None:
        counts = self._tick_counts
        if added:
            self._skyband_inserts.inc(added)
            counts[3] += added
        if removed:
            self._skyband_removals.inc(removed)
            counts[4] += removed
        if expired:
            self._skyband_expirations.inc(expired)
            counts[5] += expired

    def on_pst_insert(self) -> None:
        self._pst_inserts.inc()

    def on_pst_delete(self) -> None:
        self._pst_deletes.inc()

    def on_pst_rebuild(self, size: int, seconds: float,
                       partial: bool) -> None:
        self._pst_rebuilds.inc()
        self._pst_rebuild_size.observe(size)
        self._pst_rebuild_seconds.observe(seconds)
        self._tick_counts[6] += 1
        self.phase("pst_rebuild", seconds)

    def on_skiplist_traversal(self, steps: int) -> None:
        self._skiplist_traversals.inc(steps)

    def on_sweep(self, pairs: int, kept: int) -> None:
        self._sweeps.inc()
        self._sweep_pairs.inc(pairs)

    def on_apply_path(self, path: str) -> None:
        counter = self._apply_paths.get(path)
        if counter is None:
            counter = self._apply_paths[path] = (
                self._apply_path_family.labels(path)
            )
        counter.inc()

    def observe(self, name: str, seconds: float) -> None:
        hist = self._adhoc.get(name)
        if hist is None:
            hist = self._adhoc[name] = self.registry.histogram(
                name, buckets=DEFAULT_SECONDS_BUCKETS
            )
        hist.observe(seconds)

    def observe_results(self, seconds: float) -> None:
        self._results_seconds.observe(seconds)


class Timer:
    """Context manager timing a block into a recorder histogram.

    ``elapsed`` holds the measured seconds after exit.  Usually built via
    :func:`timed`, which short-circuits to a shared no-op when the
    recorder is disabled.
    """

    __slots__ = ("recorder", "name", "elapsed", "_start")

    def __init__(self, recorder, name: str) -> None:
        self.recorder = recorder
        self.name = name
        self.elapsed = 0.0
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.elapsed = perf_counter() - self._start
        self.recorder.observe(self.name, self.elapsed)
        return False


class _NullTimer:
    """Shared no-op stand-in returned by :func:`timed` when disabled."""

    __slots__ = ()

    elapsed = 0.0

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_TIMER = _NullTimer()


def timed(recorder, name: str):
    """``with timed(recorder, "repro_foo_seconds"): ...`` — observes the
    block's wall time into histogram ``name`` when the recorder is
    enabled; a shared no-op context manager otherwise."""
    if recorder.enabled:
        return Timer(recorder, name)
    return _NULL_TIMER
