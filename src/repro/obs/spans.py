"""Lightweight span tracing for request-level observability.

A *span* is one named, timed operation; spans sharing a **trace id** form
the story of one request — the tracing substrate the serving layer uses
to follow a single ingest frame from the client, through the server op
handler and the engine tick, to every subscriber delta it produced
(docs/serving.md walks one trace end to end).

Design constraints, in order:

* **monotonic clocks only** — span timestamps are
  :func:`time.perf_counter` offsets, never wall-clock time (lint rule
  RA108: wall time is NTP-slewed and coarse on some platforms).  Span
  ``start`` values are therefore only comparable within one process;
  cross-process correlation happens through the trace id, not the clock;
* **near-zero disabled cost** — like
  :class:`~repro.obs.recorder.NullRecorder`, the shared
  :data:`NULL_SPANS` recorder pins ``enabled = False`` as a class
  attribute and hands out one shared no-op span, so an untraced hot path
  pays a single attribute check;
* **bounded memory** — finished spans land in a ring buffer
  (``capacity`` most recent); a long-lived server can trace forever
  without growing.

Trace and span ids are opaque lowercase-hex strings.  Ids are *minted at
the client* (:func:`new_trace_id`) and carried in the optional ``trace``
field of serve frames; the server never invents a trace id for a request
that did not ask to be traced.

Usage::

    spans = SpanRecorder(capacity=512)
    with spans.span("op:ingest", trace=trace_id, peer="10.0.0.7:4242"):
        ...handle the frame...
    spans.for_trace(trace_id)   # -> [span dict, ...]
"""

from __future__ import annotations

import random
from collections import deque
from time import perf_counter
from typing import Callable, Optional

__all__ = [
    "NULL_SPANS",
    "NullSpanRecorder",
    "Span",
    "SpanRecorder",
    "new_span_id",
    "new_trace_id",
]

#: process-local id source; independence across processes comes from the
#: interpreter seeding :mod:`random` from OS entropy at startup.
_IDS = random.Random()


def new_trace_id() -> str:
    """A fresh 64-bit trace id (16 hex chars), minted client-side."""
    return f"{_IDS.getrandbits(64):016x}"


def new_span_id() -> str:
    """A fresh 32-bit span id (8 hex chars)."""
    return f"{_IDS.getrandbits(32):08x}"


class Span:
    """One named, timed operation (usually used as a context manager).

    ``start`` is a :func:`time.perf_counter` offset; ``seconds`` is
    ``None`` until :meth:`finish` (or ``__exit__``) closes the span,
    which also records it into the owning :class:`SpanRecorder`.
    Finishing twice is a no-op, so ``with`` blocks and explicit
    :meth:`finish` calls compose safely.
    """

    __slots__ = ("name", "trace", "span_id", "parent", "start", "seconds",
                 "attrs", "_recorder")

    def __init__(
        self,
        recorder: Optional["SpanRecorder"],
        name: str,
        trace: Optional[str],
        parent: Optional[str],
        attrs: dict,
    ) -> None:
        self.name = name
        self.trace = trace
        self.span_id = new_span_id()
        self.parent = parent
        self.attrs = attrs
        self.seconds: Optional[float] = None
        self._recorder = recorder
        self.start = perf_counter()

    def finish(self) -> "Span":
        """Close the span (idempotent) and record it."""
        if self.seconds is None:
            self.seconds = perf_counter() - self.start
            if self._recorder is not None:
                self._recorder._record(self)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.attrs = dict(self.attrs)
            self.attrs["error"] = exc_type.__name__
        self.finish()
        return False

    def to_dict(self) -> dict[str, object]:
        """A JSON-able view (the shape ``/tracez`` and dumps ship)."""
        record: dict[str, object] = {
            "name": self.name,
            "trace": self.trace,
            "span": self.span_id,
            "parent": self.parent,
            "start": self.start,
            "seconds": self.seconds,
        }
        if self.attrs:
            record["attrs"] = dict(self.attrs)
        return record

    def __repr__(self) -> str:
        state = f"{self.seconds * 1e6:.0f}us" if self.seconds is not None \
            else "open"
        return f"Span({self.name!r}, trace={self.trace!r}, {state})"


class SpanRecorder:
    """Bounded ring buffer of finished spans.

    Parameters
    ----------
    capacity:
        Most-recent finished spans to keep.
    sink:
        Optional callable receiving each finished span's
        :meth:`Span.to_dict` — the hook the serve layer uses to tee
        spans into the flight recorder.
    """

    enabled = True

    def __init__(self, capacity: int = 512,
                 sink: Optional[Callable[[dict], None]] = None) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.sink = sink
        self._spans: deque[Span] = deque(maxlen=capacity)
        self._finished = 0

    def span(self, name: str, *, trace: Optional[str] = None,
             parent: Optional[str] = None, **attrs) -> Span:
        """Open a new span (finish it to record it)."""
        return Span(self, name, trace, parent, attrs)

    def _record(self, span: Span) -> None:
        self._spans.append(span)
        self._finished += 1
        if self.sink is not None:
            self.sink(span.to_dict())

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._spans)

    @property
    def finished_total(self) -> int:
        """Spans finished over the recorder's lifetime (ring or not)."""
        return self._finished

    def recent(self, limit: Optional[int] = None) -> list[dict]:
        """The most recent finished spans, newest first."""
        # list() snapshots the deque atomically, so concurrent appends
        # from the serving thread never invalidate the iteration.
        spans = list(self._spans)
        spans.reverse()
        if limit is not None:
            spans = spans[:limit]
        return [span.to_dict() for span in spans]

    def for_trace(self, trace_id: str) -> list[dict]:
        """Every retained span of one trace, oldest first."""
        return [span.to_dict() for span in list(self._spans)
                if span.trace == trace_id]


class _NullSpan:
    """The shared do-nothing span :data:`NULL_SPANS` hands out."""

    __slots__ = ()

    name = ""
    trace = None
    span_id = ""
    parent = None
    start = 0.0
    seconds = 0.0
    attrs: dict = {}

    def finish(self) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def to_dict(self) -> dict[str, object]:
        return {}


_NULL_SPAN = _NullSpan()


class NullSpanRecorder:
    """The disabled recorder: one attribute check, no allocation."""

    __slots__ = ()

    enabled = False
    capacity = 0
    sink = None
    finished_total = 0

    def span(self, name: str, *, trace: Optional[str] = None,
             parent: Optional[str] = None, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def __len__(self) -> int:
        return 0

    def recent(self, limit: Optional[int] = None) -> list[dict]:
        return []

    def for_trace(self, trace_id: str) -> list[dict]:
        return []


#: the process-wide shared no-op span recorder (stateless, safe to share)
NULL_SPANS = NullSpanRecorder()
