"""Structured per-tick tracing.

Two layers of per-tick history live here:

* :class:`TickEvent` — one structured record per stream tick produced by
  a :class:`~repro.obs.recorder.MetricsRecorder`: total append wall time,
  a phase-timing breakdown (:data:`PHASES`), the skyband delta, PST
  rebuild count and the end-of-tick structure sizes.  Exported as
  JSON-lines or CSV via :mod:`repro.obs.export`.
* :class:`TraceRecorder` — the original skyband-dynamics recorder (one
  dict row per observed maintainer tick), kept byte-compatible with its
  historical CSV schema.  ``repro.analysis.trace`` re-exports it as a
  compatibility shim.

The phase keys, in the order the pipeline runs them:

=============  =========================================================
``window``     stream-manager eviction + skip-list insertion of the
               arrival (§III-B module 1)
``expire``     dropping skyband pairs whose older member expired,
               including the staircase repair below (§V expiry handling)
``staircase``  the Algorithm 4 sweep refreshing the staircase from the
               surviving skyband after expiry (subset of ``expire``)
``generate``   new-pair generation: Algorithm 3's window scan or
               Algorithm 5's TA round-robin (§V-A/§V-B)
``insert``     merging surviving candidates: Algorithm 4 over the merged
               set plus the PST/index diff (§V-A.2)
``queries``    refreshing continuous answers from the skyband delta
               (§IV-B)
``pst_rebuild``  scapegoat partial rebuilds plus full rebuilds of the
               priority search tree (overlaps ``insert``/``expire``)
=============  =========================================================

``staircase`` and ``pst_rebuild`` time is *also* contained in the phase
that triggered it, so the phases do not sum exactly to ``seconds``; the
remainder of ``seconds`` is monitor bookkeeping and (when enabled) the
runtime auditor.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from typing import IO, TYPE_CHECKING, Optional

from repro.obs.cost_model import Counters

if TYPE_CHECKING:  # imported for annotations only: core imports obs
    from repro.core.maintenance import SkybandDelta, SkybandMaintainer

__all__ = ["PHASES", "TickEvent", "TraceRecorder"]

#: canonical phase order for tabular exports
PHASES = (
    "window",
    "expire",
    "staircase",
    "generate",
    "insert",
    "queries",
    "pst_rebuild",
)


@dataclass
class TickEvent:
    """Everything one stream tick did, with wall-clock phase timings."""

    tick: int                   #: stream sequence number at tick end
    seconds: float              #: total wall time of the append / batch
    arrivals: int               #: objects admitted this tick
    evictions: int              #: objects expired from the window
    candidates: int             #: non-dominated new pairs collected
    skyband_added: int          #: pairs that entered the K-skyband
    skyband_removed: int        #: pairs dominated out of the K-skyband
    skyband_expired: int        #: pairs dropped because a member expired
    pst_rebuilds: int           #: PST partial + full rebuilds triggered
    skyband_size: int           #: total skyband size across groups
    staircase_size: int         #: total staircase size across groups
    window_occupancy: int       #: objects in the window at tick end
    phases: dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict[str, object]:
        """A JSON-able record (phase timings nested under ``phases``)."""
        return {
            "tick": self.tick,
            "seconds": self.seconds,
            "arrivals": self.arrivals,
            "evictions": self.evictions,
            "candidates": self.candidates,
            "skyband_added": self.skyband_added,
            "skyband_removed": self.skyband_removed,
            "skyband_expired": self.skyband_expired,
            "pst_rebuilds": self.pst_rebuilds,
            "skyband_size": self.skyband_size,
            "staircase_size": self.staircase_size,
            "window_occupancy": self.window_occupancy,
            "phases": dict(self.phases),
        }

    def to_row(self) -> dict[str, object]:
        """A flat record for CSV export: one ``phase_<name>`` column per
        :data:`PHASES` entry (missing phases are 0.0)."""
        row = self.to_dict()
        phases = row.pop("phases")
        for name in PHASES:
            row[f"phase_{name}"] = phases.get(name, 0.0)
        return row


#: CSV header for :meth:`TickEvent.to_row`
TICK_FIELDS = (
    "tick", "seconds", "arrivals", "evictions", "candidates",
    "skyband_added", "skyband_removed", "skyband_expired", "pst_rebuilds",
    "skyband_size", "staircase_size", "window_occupancy",
) + tuple(f"phase_{name}" for name in PHASES)
__all__.append("TICK_FIELDS")


_FIELDS = (
    "tick",
    "skyband_size",
    "staircase_size",
    "added",
    "removed",
    "expired",
    "score_evaluations",
    "pairs_considered",
    "candidate_pairs",
)


class TraceRecorder:
    """Records one row of skyband dynamics per observed tick.

    The original ad-hoc trace layer, absorbed into :mod:`repro.obs`.  A
    recorder subscribes to a maintainer (or is fed deltas manually) and
    records one plain-dict row per stream tick: skyband size, staircase
    size, pairs added / removed / expired, and optionally the
    :class:`Counters` deltas.  Useful for plotting skyband dynamics
    against the Theorem 3 expectation, regression-testing steady-state
    behaviour, and debugging a live monitor (attach, run, dump).
    :meth:`to_csv` keeps its historical column set.
    """

    def __init__(self, counters: Optional[Counters] = None) -> None:
        self.counters = counters
        self.rows: list[dict[str, int]] = []
        self._tick = 0
        self._last_counter_snapshot = (
            counters.snapshot() if counters is not None else None
        )

    def __len__(self) -> int:
        return len(self.rows)

    def observe(
        self, maintainer: "SkybandMaintainer", delta: "SkybandDelta"
    ) -> dict[str, int]:
        """Record the outcome of one tick; returns the recorded row."""
        self._tick += 1
        row = {
            "tick": self._tick,
            "skyband_size": len(maintainer),
            "staircase_size": len(maintainer.staircase),
            "added": len(delta.added),
            "removed": len(delta.removed),
            "expired": len(delta.expired),
            "score_evaluations": 0,
            "pairs_considered": 0,
            "candidate_pairs": 0,
        }
        if self.counters is not None:
            snapshot = self.counters.snapshot()
            previous = self._last_counter_snapshot
            for field_name in ("score_evaluations", "pairs_considered",
                               "candidate_pairs"):
                row[field_name] = snapshot[field_name] - previous[field_name]
            self._last_counter_snapshot = snapshot
        self.rows.append(row)
        return row

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------
    def mean(self, field_name: str) -> float:
        """Average of one recorded field across all ticks."""
        if not self.rows:
            raise ValueError("no rows recorded")
        return sum(row[field_name] for row in self.rows) / len(self.rows)

    def series(self, field_name: str) -> list[int]:
        return [row[field_name] for row in self.rows]

    def steady_state(self, skip_fraction: float = 0.5) -> "TraceRecorder":
        """A view over the later rows only (warm-up discarded)."""
        view = TraceRecorder()
        view.rows = self.rows[int(len(self.rows) * skip_fraction):]
        view._tick = self._tick
        return view

    def to_csv(self, handle: IO[str]) -> None:
        """Write all rows as CSV (header included)."""
        writer = csv.DictWriter(handle, fieldnames=_FIELDS)
        writer.writeheader()
        writer.writerows(self.rows)
