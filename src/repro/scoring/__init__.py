"""Scoring functions: arbitrary, loose monotonic locals, monotonic
combiners, global compositions and the paper's experiment suite."""

from repro.scoring.base import LambdaScoringFunction, ScoringFunction
from repro.scoring.combiners import (
    Combiner,
    MaxCombiner,
    MinCombiner,
    NegatedProductOfNegationsCombiner,
    ProductCombiner,
    SumCombiner,
    WeightedSumCombiner,
)
from repro.scoring.composite import GlobalScoringFunction
from repro.scoring.local import (
    AbsoluteDifference,
    CustomLocal,
    LocalScoringFunction,
    MaxValue,
    MinValue,
    NegatedAbsoluteDifference,
    NegatedSumValues,
    SumValues,
    Trend,
)
from repro.scoring.library import (
    k_closest_pairs,
    k_furthest_pairs,
    paper_scoring_functions,
    sensor_scoring_function,
    top_k_dissimilar_pairs,
    top_k_similar_pairs,
)

__all__ = [
    "AbsoluteDifference",
    "Combiner",
    "CustomLocal",
    "GlobalScoringFunction",
    "LambdaScoringFunction",
    "LocalScoringFunction",
    "MaxCombiner",
    "MaxValue",
    "MinCombiner",
    "MinValue",
    "NegatedAbsoluteDifference",
    "NegatedProductOfNegationsCombiner",
    "NegatedSumValues",
    "ProductCombiner",
    "ScoringFunction",
    "SumCombiner",
    "SumValues",
    "Trend",
    "WeightedSumCombiner",
    "k_closest_pairs",
    "k_furthest_pairs",
    "paper_scoring_functions",
    "sensor_scoring_function",
    "top_k_dissimilar_pairs",
    "top_k_similar_pairs",
]
