"""Scoring-function interfaces.

A *scoring function* maps a pair of stream objects to a real score; smaller
is better (the paper's top-k pairs are the k smallest scores).  Two kinds
exist in the framework:

* arbitrary scoring functions — any callable over two objects; only the
  SCase/Basic maintenance paths (paper Algorithm 3) apply;
* *global* scoring functions (paper §V-B) — a monotonic combiner over
  per-attribute *loose monotonic* local scores; the TA maintenance path
  (Algorithm 5) can exploit their structure to prune most new pairs.

Skybands are shared between queries per §III-B by the *identity* of the
scoring function object (two queries passing the same instance share one
skyband), so applications should create each scoring function once.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Optional, Sequence

from repro.stream.object import StreamObject

__all__ = ["ScoringFunction", "LambdaScoringFunction"]


class ScoringFunction(ABC):
    """Base class of all scoring functions."""

    #: Human-readable name used in reports and reprs.
    name: str = "scoring-function"

    @abstractmethod
    def score(self, a: StreamObject, b: StreamObject) -> float:
        """The score of the pair ``(a, b)``; must be symmetric."""

    @property
    def attributes(self) -> Optional[tuple[int, ...]]:
        """The attribute indices the function reads, if declared.

        ``None`` means "unknown / possibly all", which is always safe.
        """
        return None

    def is_global(self) -> bool:
        """Whether the TA optimization (Algorithm 5) applies."""
        return False

    def __call__(self, a: StreamObject, b: StreamObject) -> float:
        return self.score(a, b)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class LambdaScoringFunction(ScoringFunction):
    """Wraps an arbitrary symmetric callable as a scoring function.

    This is the "arbitrarily complex scoring function" escape hatch of the
    paper: anything computable is allowed, at the cost of the maintenance
    module having to examine all ``O(N)`` new pairs per arrival.
    """

    def __init__(
        self,
        fn: Callable[[StreamObject, StreamObject], float],
        *,
        name: str = "lambda",
        attributes: Optional[Sequence[int]] = None,
    ) -> None:
        self._fn = fn
        self.name = name
        self._attributes = tuple(attributes) if attributes is not None else None

    def score(self, a: StreamObject, b: StreamObject) -> float:
        return self._fn(a, b)

    @property
    def attributes(self) -> Optional[tuple[int, ...]]:
        return self._attributes
