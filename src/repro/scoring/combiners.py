"""Monotonic combiners for global scoring functions (paper §V-B).

A *global scoring function* is ``gsf(ls_1(a,b), ..., ls_d(a,b))`` where
each ``ls_i`` is loose monotonic on one attribute and ``gsf`` is monotonic
(non-decreasing in every argument).  Monotonicity of the combiner is what
lets Algorithm 5 compute the TA threshold: the combiner applied to the
per-list score frontiers lower-bounds every unseen pair's score.

Combiners whose monotonicity depends on the sign of their inputs (the
product family) declare a ``domain_check`` that is asserted lazily on the
first few evaluations, so mis-use fails fast instead of silently returning
wrong top-k results.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Sequence

from repro.exceptions import ScoringFunctionError

__all__ = [
    "Combiner",
    "SumCombiner",
    "WeightedSumCombiner",
    "ProductCombiner",
    "NegatedProductOfNegationsCombiner",
    "MaxCombiner",
    "MinCombiner",
]

_DOMAIN_PROBES = 64  # evaluations that are domain-checked before trusting


class Combiner(ABC):
    """A monotonic (non-decreasing in each argument) aggregation."""

    name: str = "combiner"

    @abstractmethod
    def combine(self, local_scores: Sequence[float]) -> float:
        """Aggregate the local scores into the final score."""

    def check_domain(self, local_scores: Sequence[float]) -> None:
        """Raise if the inputs leave the region where the combiner is
        monotonic.  Default: everywhere monotonic, nothing to check."""

    def __call__(self, local_scores: Sequence[float]) -> float:
        return self.combine(local_scores)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SumCombiner(Combiner):
    """``sum(l_i)`` — monotonic everywhere."""

    name = "sum"

    def combine(self, local_scores: Sequence[float]) -> float:
        return math.fsum(local_scores)


class WeightedSumCombiner(Combiner):
    """``sum(w_i * l_i)`` with non-negative weights."""

    name = "weighted-sum"

    def __init__(self, weights: Sequence[float]) -> None:
        if any(w < 0 for w in weights):
            raise ScoringFunctionError(
                "weighted sum needs non-negative weights to stay monotonic"
            )
        self.weights = tuple(weights)

    def combine(self, local_scores: Sequence[float]) -> float:
        if len(local_scores) != len(self.weights):
            raise ScoringFunctionError(
                f"expected {len(self.weights)} local scores, "
                f"got {len(local_scores)}"
            )
        return math.fsum(w * s for w, s in zip(self.weights, local_scores))


class ProductCombiner(Combiner):
    """``prod(l_i)`` — monotonic on *non-negative* local scores.

    This is the paper's ``s3``: the product of per-attribute absolute
    differences (top-k *similar* pairs).
    """

    name = "product"

    def __init__(self) -> None:
        self._probes_left = _DOMAIN_PROBES

    def combine(self, local_scores: Sequence[float]) -> float:
        if self._probes_left > 0:
            self._probes_left -= 1
            self.check_domain(local_scores)
        return math.prod(local_scores)

    def check_domain(self, local_scores: Sequence[float]) -> None:
        if any(s < 0 for s in local_scores):
            raise ScoringFunctionError(
                "ProductCombiner is only monotonic over non-negative local "
                "scores; use NegatedProductOfNegationsCombiner for the "
                "furthest-pairs variant"
            )


class NegatedProductOfNegationsCombiner(Combiner):
    """``-prod(-l_i)`` — monotonic on *non-positive* local scores.

    This realizes the paper's ``s4 = -prod(|x_i - y_i|)`` (top-k
    *dissimilar* pairs) as a monotonic combiner: take each local score as
    ``l_i = -|x_i - y_i| <= 0``; then ``-prod(-l_i)`` is non-decreasing in
    every ``l_i`` because each partial derivative is a product of the other
    non-negative factors.
    """

    name = "neg-product-of-negations"

    def __init__(self) -> None:
        self._probes_left = _DOMAIN_PROBES

    def combine(self, local_scores: Sequence[float]) -> float:
        if self._probes_left > 0:
            self._probes_left -= 1
            self.check_domain(local_scores)
        return -math.prod(-s for s in local_scores)

    def check_domain(self, local_scores: Sequence[float]) -> None:
        if any(s > 0 for s in local_scores):
            raise ScoringFunctionError(
                "NegatedProductOfNegationsCombiner is only monotonic over "
                "non-positive local scores (use NegatedAbsoluteDifference "
                "locals)"
            )


class MaxCombiner(Combiner):
    """``max(l_i)`` — monotonic everywhere (Chebyshev-style scores)."""

    name = "max"

    def combine(self, local_scores: Sequence[float]) -> float:
        return max(local_scores)


class MinCombiner(Combiner):
    """``min(l_i)`` — monotonic everywhere."""

    name = "min"

    def combine(self, local_scores: Sequence[float]) -> float:
        return min(local_scores)
