"""Global scoring functions (paper §V-B).

A :class:`GlobalScoringFunction` pairs each used attribute with a loose
monotonic local function and aggregates the local scores with a monotonic
combiner.  k-closest pairs, k-furthest pairs and their variants are all
instances (see :mod:`repro.scoring.library`), and the TA-based maintenance
of Algorithm 5 applies to every instance.
"""

from __future__ import annotations

from typing import Sequence

from repro.exceptions import ScoringFunctionError
from repro.scoring.base import ScoringFunction
from repro.scoring.combiners import Combiner
from repro.scoring.local import LocalScoringFunction
from repro.stream.object import StreamObject

__all__ = ["GlobalScoringFunction"]


class GlobalScoringFunction(ScoringFunction):
    """``gsf(ls_1(a[i_1], b[i_1]), ..., ls_d(a[i_d], b[i_d]))``.

    Parameters
    ----------
    locals_:
        ``(attribute_index, local_function)`` terms.  The same attribute
        may appear in several terms.
    combiner:
        The monotonic aggregation of the local scores.
    name:
        Optional display name; defaults to a structural description.
    """

    def __init__(
        self,
        locals_: Sequence[tuple[int, LocalScoringFunction]],
        combiner: Combiner,
        *,
        name: str | None = None,
    ) -> None:
        if not locals_:
            raise ScoringFunctionError(
                "a global scoring function needs at least one local term"
            )
        self.terms = tuple(locals_)
        self.combiner = combiner
        if name is None:
            parts = "+".join(
                f"{fn.name}[{attr}]" for attr, fn in self.terms
            )
            name = f"{combiner.name}({parts})"
        self.name = name

    # ------------------------------------------------------------------
    def score(self, a: StreamObject, b: StreamObject) -> float:
        return self.combiner.combine(
            [fn.score(a.values[attr], b.values[attr]) for attr, fn in self.terms]
        )

    def local_scores(self, a: StreamObject, b: StreamObject) -> list[float]:
        """The per-term local scores (used by tests and diagnostics)."""
        return [fn.score(a.values[attr], b.values[attr]) for attr, fn in self.terms]

    def combine(self, local_scores: Sequence[float]) -> float:
        """Aggregate already-computed local scores (the TA threshold)."""
        return self.combiner.combine(local_scores)

    @property
    def attributes(self) -> tuple[int, ...]:
        return tuple(sorted({attr for attr, _ in self.terms}))

    @property
    def num_terms(self) -> int:
        return len(self.terms)

    def is_global(self) -> bool:
        return True
