"""Ready-made scoring functions, including the paper's experiment suite.

Paper §VI-A evaluates four global scoring functions over ``d`` attributes:

* ``s1`` — Manhattan k-closest pairs:      ``sum_i |x_i - y_i|``
* ``s2`` — Manhattan k-furthest pairs:     ``-sum_i |x_i - y_i|``
* ``s3`` — top-k similar pairs:            ``prod_i |x_i - y_i|``
* ``s4`` — top-k dissimilar pairs:         ``-prod_i |x_i - y_i|``

plus, on the sensor data, the arbitrary (non-global) function

    ``|t_x - t_y| / (|temp_x - temp_y| * |hum_x - hum_y|)``

All are constructed here.  ``s1``..``s4`` are global scoring functions so
both the SCase and the TA maintenance paths apply to them; the sensor
function is arbitrary, exercising the general path.
"""

from __future__ import annotations

from repro.scoring.base import LambdaScoringFunction, ScoringFunction
from repro.scoring.combiners import (
    NegatedProductOfNegationsCombiner,
    ProductCombiner,
    SumCombiner,
)
from repro.scoring.composite import GlobalScoringFunction
from repro.scoring.local import AbsoluteDifference, NegatedAbsoluteDifference
from repro.stream.object import StreamObject

__all__ = [
    "k_closest_pairs",
    "k_furthest_pairs",
    "top_k_similar_pairs",
    "top_k_dissimilar_pairs",
    "paper_scoring_functions",
    "sensor_scoring_function",
]


def k_closest_pairs(num_attributes: int) -> GlobalScoringFunction:
    """The paper's ``s1``: Manhattan distance over ``num_attributes``."""
    return GlobalScoringFunction(
        [(i, AbsoluteDifference()) for i in range(num_attributes)],
        SumCombiner(),
        name=f"s1-closest(d={num_attributes})",
    )


def k_furthest_pairs(num_attributes: int) -> GlobalScoringFunction:
    """The paper's ``s2``: negated Manhattan distance."""
    return GlobalScoringFunction(
        [(i, NegatedAbsoluteDifference()) for i in range(num_attributes)],
        SumCombiner(),
        name=f"s2-furthest(d={num_attributes})",
    )


def top_k_similar_pairs(num_attributes: int) -> GlobalScoringFunction:
    """The paper's ``s3``: product of absolute differences."""
    return GlobalScoringFunction(
        [(i, AbsoluteDifference()) for i in range(num_attributes)],
        ProductCombiner(),
        name=f"s3-similar(d={num_attributes})",
    )


def top_k_dissimilar_pairs(num_attributes: int) -> GlobalScoringFunction:
    """The paper's ``s4``: negated product of absolute differences.

    Realized monotonically as ``-prod(-l_i)`` over the non-positive locals
    ``l_i = -|x_i - y_i|`` (see the combiner's docstring).
    """
    return GlobalScoringFunction(
        [(i, NegatedAbsoluteDifference()) for i in range(num_attributes)],
        NegatedProductOfNegationsCombiner(),
        name=f"s4-dissimilar(d={num_attributes})",
    )


def paper_scoring_functions(num_attributes: int) -> list[GlobalScoringFunction]:
    """``[s1, s2, s3, s4]`` over ``num_attributes`` attributes."""
    return [
        k_closest_pairs(num_attributes),
        k_furthest_pairs(num_attributes),
        top_k_similar_pairs(num_attributes),
        top_k_dissimilar_pairs(num_attributes),
    ]


def sensor_scoring_function(
    time_attr: int = 0,
    temp_attr: int = 1,
    humidity_attr: int = 2,
    *,
    epsilon: float = 1e-9,
) -> ScoringFunction:
    """The paper's Intel-lab scoring function (§VI-A).

    ``|t_x - t_y| / (|temp_x - temp_y| * |hum_x - hum_y|)`` prefers pairs
    of readings taken close in time that report very different temperature
    and humidity — i.e. anomalies.  ``epsilon`` guards the division when
    two readings coincide exactly.

    The function is *not* a global scoring function (the division is not a
    monotonic combiner), so it exercises the arbitrary-function path.
    """

    def score(a: StreamObject, b: StreamObject) -> float:
        dt = abs(a.values[time_attr] - b.values[time_attr])
        dtemp = abs(a.values[temp_attr] - b.values[temp_attr])
        dhum = abs(a.values[humidity_attr] - b.values[humidity_attr])
        return dt / max(dtemp * dhum, epsilon)

    return LambdaScoringFunction(
        score,
        name="sensor-anomaly",
        attributes=(time_attr, temp_attr, humidity_attr),
    )
