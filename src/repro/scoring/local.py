"""Loose monotonic local scoring functions (paper §V-B).

A local scoring function ``ls(x, y)`` scores a pair on *one* attribute.
It is *loose monotonic* when, for a fixed ``x``,

* as ``y`` increases above ``x`` the score is monotone (either direction),
* as ``y`` decreases below ``x`` the score is monotone (either direction).

The declared directions tell the incremental pair-retrieval iterators
(paper Fig 6) where a new object's best partners sit in the sorted
attribute list:

* ``Trend.INCREASING_AWAY`` — the score grows as the partner moves away
  from ``x``, so the best partner on that side is the *nearest* one and
  the iterator walks outward (e.g. ``|x - y|``);
* ``Trend.DECREASING_AWAY`` — the score shrinks as the partner moves away,
  so the best partner is the *farthest* one and the iterator walks inward
  from the end of the list (e.g. ``-|x - y|``).

Every monotonic function of ``(x, y)`` is loose monotonic, but not vice
versa: ``|x - y|`` is the canonical loose-monotonic-only example.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from typing import Callable

from repro.exceptions import ScoringFunctionError

__all__ = [
    "Trend",
    "LocalScoringFunction",
    "AbsoluteDifference",
    "NegatedAbsoluteDifference",
    "SumValues",
    "NegatedSumValues",
    "MinValue",
    "MaxValue",
    "CustomLocal",
]


class Trend(enum.Enum):
    """How a local score behaves as the partner value moves *away* from
    the reference value on one side."""

    INCREASING_AWAY = "increasing-away"
    DECREASING_AWAY = "decreasing-away"


class LocalScoringFunction(ABC):
    """A loose monotonic score over one attribute's value pair."""

    name: str = "local"

    @abstractmethod
    def score(self, x: float, y: float) -> float:
        """The local score of attribute values ``x`` and ``y``; symmetric."""

    @property
    @abstractmethod
    def trend_above(self) -> Trend:
        """Behaviour as the partner value increases above the reference."""

    @property
    @abstractmethod
    def trend_below(self) -> Trend:
        """Behaviour as the partner value decreases below the reference."""

    def __call__(self, x: float, y: float) -> float:
        return self.score(x, y)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class AbsoluteDifference(LocalScoringFunction):
    """``|x - y|`` — closest pairs.  Loose monotonic but not monotonic."""

    name = "abs-diff"
    trend_above = Trend.INCREASING_AWAY
    trend_below = Trend.INCREASING_AWAY

    def score(self, x: float, y: float) -> float:
        return abs(x - y)


class NegatedAbsoluteDifference(LocalScoringFunction):
    """``-|x - y|`` — furthest pairs."""

    name = "neg-abs-diff"
    trend_above = Trend.DECREASING_AWAY
    trend_below = Trend.DECREASING_AWAY

    def score(self, x: float, y: float) -> float:
        return -abs(x - y)


class SumValues(LocalScoringFunction):
    """``x + y`` — prefers pairs of small values.  Fully monotonic."""

    name = "sum"
    trend_above = Trend.INCREASING_AWAY
    trend_below = Trend.DECREASING_AWAY

    def score(self, x: float, y: float) -> float:
        return x + y


class NegatedSumValues(LocalScoringFunction):
    """``-(x + y)`` — prefers pairs of large values."""

    name = "neg-sum"
    trend_above = Trend.DECREASING_AWAY
    trend_below = Trend.INCREASING_AWAY

    def score(self, x: float, y: float) -> float:
        return -(x + y)


class MinValue(LocalScoringFunction):
    """``min(x, y)`` — driven by the smaller member."""

    name = "min"
    trend_above = Trend.INCREASING_AWAY  # constant above: non-decreasing
    trend_below = Trend.DECREASING_AWAY

    def score(self, x: float, y: float) -> float:
        return min(x, y)


class MaxValue(LocalScoringFunction):
    """``max(x, y)`` — driven by the larger member."""

    name = "max"
    trend_above = Trend.INCREASING_AWAY
    trend_below = Trend.INCREASING_AWAY  # constant below: non-decreasing

    def score(self, x: float, y: float) -> float:
        return max(x, y)


class CustomLocal(LocalScoringFunction):
    """A user-supplied loose monotonic local function.

    The caller must declare the two trends truthfully; they are spot
    checked on a few probes at construction time to catch obvious
    mis-declarations early.
    """

    def __init__(
        self,
        fn: Callable[[float, float], float],
        trend_above: Trend,
        trend_below: Trend,
        *,
        name: str = "custom-local",
        validate: bool = True,
    ) -> None:
        self._fn = fn
        self._trend_above = trend_above
        self._trend_below = trend_below
        self.name = name
        if validate:
            self._spot_check()

    def score(self, x: float, y: float) -> float:
        return self._fn(x, y)

    @property
    def trend_above(self) -> Trend:
        return self._trend_above

    @property
    def trend_below(self) -> Trend:
        return self._trend_below

    def _spot_check(self) -> None:
        """Probe a few reference points for trend violations."""
        for x in (-1.0, 0.0, 2.5):
            above = [self._fn(x, x + delta) for delta in (0.5, 1.0, 3.0)]
            below = [self._fn(x, x - delta) for delta in (0.5, 1.0, 3.0)]
            if self._trend_above is Trend.INCREASING_AWAY:
                ok_above = all(a <= b for a, b in zip(above, above[1:]))
            else:
                ok_above = all(a >= b for a, b in zip(above, above[1:]))
            if self._trend_below is Trend.INCREASING_AWAY:
                ok_below = all(a <= b for a, b in zip(below, below[1:]))
            else:
                ok_below = all(a >= b for a, b in zip(below, below[1:]))
            if not (ok_above and ok_below):
                raise ScoringFunctionError(
                    f"local function {self.name!r} violates its declared "
                    f"trends near x={x}"
                )
