"""repro.serve — the network serving layer.

Turns the library into a service: an asyncio TCP server
(:class:`~repro.serve.server.ServeServer`) speaking a newline-delimited
JSON protocol (:mod:`repro.serve.protocol`), a session layer owning the
monitor plus a wire-visible query registry
(:class:`~repro.serve.session.ServerMonitor`), delta-based pub/sub of
continuous answers, versioned checkpoint/restore
(:mod:`repro.serve.checkpoint`) and a synchronous client library
(:class:`~repro.serve.client.ServeClient`).

Protocol, backpressure policies and the checkpoint format are
documented in ``docs/serving.md``; ``repro serve`` / ``repro client``
are the CLI entry points.
"""

from repro.serve.checkpoint import (
    FORMAT_NAME,
    FORMAT_VERSION,
    RESTORE_MODES,
    SUPPORTED_VERSIONS,
    checkpoint_state,
    load_checkpoint,
    restore_namespace_checkpoints,
    restore_server_monitor,
    save_checkpoint,
)
from repro.serve.client import ServeClient, ServeRequestError, apply_delta
from repro.serve.protocol import (
    ERROR_CODES,
    MAX_FRAME_BYTES,
    OPS,
    PROTOCOL_VERSION,
    decode_frame,
    encode_frame,
    error_frame,
    ok_frame,
    pair_to_wire,
)
from repro.serve.server import (
    BACKPRESSURE_POLICIES,
    ROLES,
    BackgroundServer,
    ServeServer,
)
from repro.serve.session import (
    SCORING_NAMES,
    DeltaEvent,
    QueryRecord,
    ServerMonitor,
)
from repro.serve.standby import StandbyTailer, connect_standby
from repro.serve.tenancy import (
    DEFAULT_NAMESPACE,
    FairMultiplexer,
    Namespace,
    NamespaceRegistry,
    TenantQuotas,
    TenantSpec,
    TokenBucket,
    load_tenants_file,
    save_tenants_file,
    valid_namespace,
)

__all__ = [
    "BACKPRESSURE_POLICIES",
    "BackgroundServer",
    "DEFAULT_NAMESPACE",
    "DeltaEvent",
    "ERROR_CODES",
    "FORMAT_NAME",
    "FairMultiplexer",
    "FORMAT_VERSION",
    "MAX_FRAME_BYTES",
    "Namespace",
    "NamespaceRegistry",
    "OPS",
    "PROTOCOL_VERSION",
    "QueryRecord",
    "RESTORE_MODES",
    "ROLES",
    "SCORING_NAMES",
    "SUPPORTED_VERSIONS",
    "ServeClient",
    "ServeRequestError",
    "ServeServer",
    "ServerMonitor",
    "StandbyTailer",
    "TenantQuotas",
    "TenantSpec",
    "TokenBucket",
    "apply_delta",
    "checkpoint_state",
    "connect_standby",
    "decode_frame",
    "encode_frame",
    "error_frame",
    "load_checkpoint",
    "load_tenants_file",
    "ok_frame",
    "pair_to_wire",
    "restore_server_monitor",
    "restore_namespace_checkpoints",
    "save_checkpoint",
    "save_tenants_file",
    "valid_namespace",
]
