"""Versioned checkpoint/restore for the serving layer (docs/serving.md).

A checkpoint is one JSON document capturing everything the engine cannot
re-derive: the monitor's constructor configuration, the window contents
(sequence numbers, attribute values, timestamps, payloads) and the
registered query specs.  Skybands, staircases and PSTs are **not**
serialized — they are pure functions of the window, so restore replays
the window into a fresh monitor and re-registers the queries, and the
re-bootstrapped structures are guaranteed identical (the same invariant
``repro audit`` verifies every tick).  That keeps the format small,
version-stable and independent of internal structure layouts.

Format (version 1)::

    {
      "format": "repro-checkpoint",
      "version": 1,
      "created_at": <unix seconds>,
      "monitor": {window_size, num_attributes, time_horizon, strategy, seed},
      "next_seq": <the next arrival's sequence number>,
      "window": [[seq, [values...], timestamp|null, payload|null], ...],
      "queries": [{handle, scoring, k, n}, ...],
      "next_handle": <int>
    }

Compatibility rules: readers accept exactly the versions they know
(currently ``1``) and must reject anything newer; unknown *extra* keys
are ignored, so additive changes do not need a version bump.  Payloads
must be JSON-serializable — a checkpoint attempt with an opaque payload
fails loudly rather than writing a lossy file.

Writes are atomic (temp file + ``os.replace``), so a crash mid-write
never corrupts the previous checkpoint.
"""

from __future__ import annotations

import json
import os
import time
from typing import Optional

from repro.exceptions import CheckpointError
from repro.serve.session import SCORING_NAMES, ServerMonitor

__all__ = [
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "checkpoint_document",
    "checkpoint_state",
    "load_checkpoint",
    "restore_server_monitor",
    "save_checkpoint",
    "write_checkpoint_document",
]

FORMAT_NAME = "repro-checkpoint"
FORMAT_VERSION = 1

_REQUIRED_KEYS = ("format", "version", "monitor", "next_seq", "window",
                  "queries")
_MONITOR_KEYS = ("window_size", "num_attributes", "time_horizon",
                 "strategy", "seed")


def checkpoint_state(session: ServerMonitor) -> dict:
    """The JSON-able checkpoint document for a live session."""
    manager = session.monitor.manager
    window = [
        [obj.seq, list(obj.values), obj.timestamp, obj.payload]
        for obj in manager
    ]
    return {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "created_at": time.time(),  # audit: allow[RA108] wall-clock file metadata, not a hot-path timing
        "monitor": dict(session.config),
        "next_seq": manager.now_seq + 1,
        "window": window,
        "queries": [record.spec() for record in session.queries()],
        "next_handle": session._next_handle,
    }


def checkpoint_document(session: ServerMonitor) -> tuple[str, dict]:
    """Serialize a session into ``(document, summary-metadata)``.

    Pure snapshot — no file I/O — so the asyncio server can capture a
    consistent state on the event loop (no ingest can interleave) and
    hand the blocking write to an executor thread.

    Raises :class:`~repro.exceptions.CheckpointError` when the window
    holds a payload JSON cannot represent.
    """
    state = checkpoint_state(session)
    try:
        document = json.dumps(state, separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        raise CheckpointError(
            f"window payloads must be JSON-serializable to checkpoint: {exc}"
        ) from exc
    meta = {
        "bytes": len(document) + 1,
        "objects": len(state["window"]),
        "queries": len(state["queries"]),
        "next_seq": state["next_seq"],
    }
    return document, meta


def write_checkpoint_document(document: str, path: str) -> None:
    """Write an already-serialized checkpoint atomically (temp file,
    fsync, ``os.replace``).  Blocking — call from a worker thread when
    on the event loop."""
    tmp_path = f"{path}.tmp"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        handle.write(document)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)


def save_checkpoint(session: ServerMonitor, path: str) -> dict:
    """Write a checkpoint atomically; returns summary metadata.

    Raises :class:`~repro.exceptions.CheckpointError` when the window
    holds a payload JSON cannot represent (the file is not written).
    """
    document, meta = checkpoint_document(session)
    write_checkpoint_document(document, path)
    return {"path": path, **meta}


def load_checkpoint(path: str) -> dict:
    """Read and validate a checkpoint document.

    Raises :class:`~repro.exceptions.CheckpointError` for a missing
    file, malformed JSON, a foreign format, an unsupported (newer)
    version, or missing sections.
    """
    try:
        with open(path, encoding="utf-8") as handle:
            state = json.load(handle)
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path!r}: {exc}") \
            from exc
    except ValueError as exc:
        raise CheckpointError(
            f"checkpoint {path!r} is not valid JSON: {exc}"
        ) from exc
    if not isinstance(state, dict) or state.get("format") != FORMAT_NAME:
        raise CheckpointError(
            f"{path!r} is not a {FORMAT_NAME} file"
        )
    version = state.get("version")
    if version != FORMAT_VERSION:
        raise CheckpointError(
            f"checkpoint {path!r} has format version {version!r}; this "
            f"reader supports version {FORMAT_VERSION} only"
        )
    for key in _REQUIRED_KEYS:
        if key not in state:
            raise CheckpointError(
                f"checkpoint {path!r} is missing the {key!r} section"
            )
    monitor = state["monitor"]
    if not isinstance(monitor, dict) or any(
        key not in monitor for key in _MONITOR_KEYS
    ):
        raise CheckpointError(
            f"checkpoint {path!r} has an incomplete monitor section "
            f"(need {_MONITOR_KEYS})"
        )
    for spec in state["queries"]:
        if spec.get("scoring") not in SCORING_NAMES:
            raise CheckpointError(
                f"checkpoint {path!r} registers unknown scoring "
                f"{spec.get('scoring')!r}"
            )
    return state


def restore_server_monitor(
    source,
    *,
    audit: Optional[bool] = None,
    recorder=None,
) -> ServerMonitor:
    """Warm-restart a session from a checkpoint path or loaded state.

    Replays the saved window (original sequence numbers preserved via
    :meth:`~repro.stream.manager.StreamManager.seed_sequence`) into a
    fresh monitor, then re-registers every saved query under its old
    wire handle.  The restored session answers every ``snapshot_query``
    byte-identically to the one that wrote the checkpoint.
    """
    state = load_checkpoint(source) if isinstance(source, str) else source
    config = state["monitor"]
    session = ServerMonitor(
        config["window_size"], config["num_attributes"],
        time_horizon=config["time_horizon"], strategy=config["strategy"],
        seed=config["seed"], audit=audit, recorder=recorder,
    )
    manager = session.monitor.manager
    window = state["window"]
    if window:
        manager.seed_sequence(int(window[0][0]))
    for seq, values, timestamp, payload in window:
        event = session.monitor.append(
            values, timestamp=timestamp, payload=payload
        )
        if event.new.seq != seq:
            raise CheckpointError(
                f"window is not seq-contiguous: expected {event.new.seq}, "
                f"checkpoint says {seq}"
            )
        if event.expired:
            raise CheckpointError(
                "window replay expired objects; the checkpoint window "
                "does not fit its own monitor configuration"
            )
    if not window:
        manager.seed_sequence(int(state["next_seq"]))
    elif manager.now_seq + 1 != state["next_seq"]:
        raise CheckpointError(
            f"next_seq mismatch after replay: window ends at "
            f"{manager.now_seq}, checkpoint says next is "
            f"{state['next_seq']}"
        )
    for spec in state["queries"]:
        # Saved wire handles are pinned so clients resubscribing after a
        # restart keep their query names.
        session.register(
            spec["scoring"], int(spec["k"]), int(spec["n"]),
            handle_id=spec["handle"],
        )
    session._next_handle = max(
        int(state.get("next_handle", session._next_handle)),
        session._next_handle,
    )
    return session
