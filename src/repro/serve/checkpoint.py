"""Versioned checkpoint/restore for the serving layer (docs/serving.md).

A checkpoint is one JSON document capturing the monitor's constructor
configuration, the window contents (sequence numbers, attribute values,
timestamps, payloads), the registered query specs — and, since format
version 2, the serialized **maintainer state**: each skyband group's
pairs and staircase points.  The paper's core observation (the K-skyband
is the exact, minimal state needed to answer any top-k pair query) means
that section admits an ``O(|SKB|)`` *structural* restore: the window is
bulk-loaded into the sorted lists, the skyband pairs are reconnected to
the live window objects, re-validated through one Algorithm 4 sweep and
installed wholesale — no ``O(N^2)`` bootstrap.  *Replay* restore (feed
the window through the engine and re-bootstrap every group) remains
available as the correctness oracle and as the only path for v1 files.

Format (version 2)::

    {
      "format": "repro-checkpoint",
      "version": 2,
      "created_at": <unix seconds>,
      "epoch": <fencing epoch, monotonic across failovers>,
      "monitor": {window_size, num_attributes, time_horizon, strategy, seed},
      "next_seq": <the next arrival's sequence number>,
      "window": [[seq, [values...], timestamp|null, payload|null], ...],
      "queries": [{handle, scoring, k, n}, ...],
      "next_handle": <int>,
      "maintainers": [
        {"scoring": <name>, "K": <int>,
         "skyband": [[older_seq, newer_seq, score], ...],
         "staircase": [[[score, -older_seq, uid], age_key], ...]},
        ...
      ]
    }

``skyband`` rows are in ascending ``score_key`` order (the maintainer's
native order); everything else about a pair (uid, age_key, tie-break
keys) is derivable from the two sequence numbers and the score.  The
``staircase`` section is redundant by construction — Algorithm 4 over
the skyband reproduces it — and restore exploits that as an integrity
check: the serialized points must match the re-swept ones exactly.

Compatibility rules: readers accept versions ``1`` and ``2`` and must
reject anything newer; unknown *extra* keys are ignored, so additive
changes do not need a version bump.  A v1 file simply has no
``maintainers``/``epoch`` sections and restores via replay.  Payloads
must be JSON-serializable — a checkpoint attempt with an opaque payload
fails loudly rather than writing a lossy file.

Writes are atomic and durable: unique temp file (``.tmp.<pid>``),
fsync, ``os.replace``, then an fsync of the parent directory so the
rename itself survives a crash.  A writer that knows its fencing epoch
refuses to clobber a checkpoint written by a higher epoch (the
split-brain guard for the warm-standby protocol).
"""

from __future__ import annotations

import json
import os
import time
from typing import Optional

from repro.core.pair import Pair
from repro.core.skyband_update import update_skyband_and_staircase
from repro.exceptions import CheckpointError
from repro.serve.session import SCORING_NAMES, ServerMonitor
from repro.stream.object import StreamObject

__all__ = [
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "RESTORE_MODES",
    "SUPPORTED_VERSIONS",
    "checkpoint_document",
    "checkpoint_state",
    "load_checkpoint",
    "restore_namespace_checkpoints",
    "restore_server_monitor",
    "save_checkpoint",
    "write_checkpoint_document",
]

FORMAT_NAME = "repro-checkpoint"
FORMAT_VERSION = 2
SUPPORTED_VERSIONS = (1, 2)
RESTORE_MODES = ("structural", "replay")

_REQUIRED_KEYS = ("format", "version", "monitor", "next_seq", "window",
                  "queries")
_MONITOR_KEYS = ("window_size", "num_attributes", "time_horizon",
                 "strategy", "seed")


def _maintainer_states(session: ServerMonitor) -> list[dict]:
    """Serialized skyband-group state, one entry per scoring name with a
    registered query (the groups replay restore would rebuild)."""
    states: list[dict] = []
    seen: set[str] = set()
    for record in session.queries():
        if record.scoring in seen:
            continue
        seen.add(record.scoring)
        maintainer = session.monitor.maintainer_for(
            session.scoring_for(record.scoring)
        )
        if maintainer is None:
            continue
        states.append({
            "scoring": record.scoring,
            "K": maintainer.K,
            "skyband": [
                [pair.older.seq, pair.newer.seq, pair.score]
                for pair in maintainer.skyband
            ],
            "staircase": [
                [list(score_key), age_key]
                for score_key, age_key in maintainer.staircase.points()
            ],
        })
    return states


def checkpoint_state(session: ServerMonitor) -> dict:
    """The JSON-able checkpoint document for a live session."""
    manager = session.monitor.manager
    window = [
        [obj.seq, list(obj.values), obj.timestamp, obj.payload]
        for obj in manager
    ]
    return {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "created_at": time.time(),  # audit: allow[RA108] wall-clock file metadata, not a hot-path timing
        "epoch": session.epoch,
        # Additive since multi-tenancy: the namespace this session
        # serves, so a directory restore can route each document back.
        # Pre-tenancy readers ignore it; absent means "default".
        "namespace": session.namespace,
        "monitor": dict(session.config),
        "next_seq": manager.now_seq + 1,
        "window": window,
        "queries": [record.spec() for record in session.queries()],
        "next_handle": session._next_handle,
        "maintainers": _maintainer_states(session),
    }


def checkpoint_document(session: ServerMonitor) -> tuple[str, dict]:
    """Serialize a session into ``(document, summary-metadata)``.

    Pure snapshot — no file I/O — so the asyncio server can capture a
    consistent state on the event loop (no ingest can interleave) and
    hand the blocking write to an executor thread.

    Raises :class:`~repro.exceptions.CheckpointError` when the window
    holds a payload JSON cannot represent.
    """
    state = checkpoint_state(session)
    try:
        document = json.dumps(state, separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        raise CheckpointError(
            f"window payloads must be JSON-serializable to checkpoint: {exc}"
        ) from exc
    meta = {
        "bytes": len(document) + 1,
        "objects": len(state["window"]),
        "queries": len(state["queries"]),
        "next_seq": state["next_seq"],
        "epoch": state["epoch"],
    }
    return document, meta


def _epoch_on_disk(path: str) -> Optional[int]:
    """The fencing epoch of an existing checkpoint at ``path``, or
    ``None`` when there is no readable checkpoint there (a missing or
    corrupt file must never block a write)."""
    try:
        with open(path, encoding="utf-8") as handle:
            state = json.load(handle)
        if not isinstance(state, dict) or state.get("format") != FORMAT_NAME:
            return None
        epoch = state.get("epoch", 0)
        return epoch if isinstance(epoch, int) else None
    except (OSError, ValueError):
        return None


def write_checkpoint_document(
    document: str, path: str, fence_epoch: Optional[int] = None
) -> None:
    """Write an already-serialized checkpoint atomically and durably.

    Unique temp file per writer (``.tmp.<pid>`` — two servers pointed
    at one path never clobber each other's in-flight write), fsync,
    ``os.replace``, then fsync of the parent directory so the rename
    survives a crash.  The temp file is unlinked on any failure.

    ``fence_epoch`` is the writer's fencing epoch: when given, an
    existing checkpoint at ``path`` carrying a *higher* epoch makes the
    write fail with :class:`~repro.exceptions.CheckpointError` — a
    demoted primary must not overwrite its successor's state.

    Blocking — call from a worker thread when on the event loop.
    """
    if fence_epoch is not None:
        existing = _epoch_on_disk(path)
        if existing is not None and existing > fence_epoch:
            raise CheckpointError(
                f"refusing to overwrite {path!r}: it carries fencing "
                f"epoch {existing}, newer than this writer's "
                f"{fence_epoch} (a promoted standby owns this path)"
            )
    tmp_path = f"{path}.tmp.{os.getpid()}"
    replaced = False
    try:
        with open(tmp_path, "w", encoding="utf-8") as handle:
            handle.write(document)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
        replaced = True
    finally:
        if not replaced:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
    directory = os.path.dirname(os.path.abspath(path))
    dir_fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


def save_checkpoint(session: ServerMonitor, path: str) -> dict:
    """Write a checkpoint atomically; returns summary metadata.

    Raises :class:`~repro.exceptions.CheckpointError` when the window
    holds a payload JSON cannot represent (the file is not written), or
    when ``path`` holds a checkpoint from a higher fencing epoch.
    """
    document, meta = checkpoint_document(session)
    write_checkpoint_document(document, path, session.epoch)
    return {"path": path, **meta}


# ----------------------------------------------------------------------
# validation
# ----------------------------------------------------------------------
def _is_int(value) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _fail(origin: str, message: str) -> None:
    raise CheckpointError(f"checkpoint {origin}: {message}")


def _validate_window(state: dict, origin: str) -> None:
    window = state["window"]
    if not isinstance(window, list):
        _fail(origin, "'window' must be a list of rows, got "
              f"{type(window).__name__}")
    previous_seq = 0
    for index, row in enumerate(window):
        if not isinstance(row, (list, tuple)) or len(row) != 4:
            _fail(origin, f"window row {index} must be "
                  "[seq, values, timestamp, payload]")
        seq, values, timestamp, _payload = row
        if not _is_int(seq) or seq < 1:
            _fail(origin, f"window row {index} has invalid seq {seq!r}")
        if previous_seq and seq != previous_seq + 1:
            _fail(origin, "window is not seq-contiguous: expected "
                  f"{previous_seq + 1}, found {seq}")
        previous_seq = seq
        if not isinstance(values, (list, tuple)) or not all(
            _is_number(value) for value in values
        ):
            _fail(origin, f"window row {index} (seq {seq}) has "
                  "non-numeric or non-list values")
        if timestamp is not None and not _is_number(timestamp):
            _fail(origin, f"window row {index} (seq {seq}) has a "
                  f"non-numeric timestamp {timestamp!r}")
    next_seq = state["next_seq"]
    if not _is_int(next_seq) or next_seq < 1:
        _fail(origin, f"'next_seq' must be an int >= 1, got {next_seq!r}")
    if window and previous_seq + 1 != next_seq:
        _fail(origin, f"window ends at seq {previous_seq} but 'next_seq' "
              f"says {next_seq}")


def _validate_queries(state: dict, origin: str) -> None:
    queries = state["queries"]
    if not isinstance(queries, list):
        _fail(origin, "'queries' must be a list of specs, got "
              f"{type(queries).__name__}")
    for index, spec in enumerate(queries):
        if not isinstance(spec, dict):
            _fail(origin, f"query spec {index} must be an object")
        handle = spec.get("handle")
        if not isinstance(handle, str) or not handle:
            _fail(origin, f"query spec {index} is missing a string "
                  "'handle'")
        if spec.get("scoring") not in SCORING_NAMES:
            _fail(origin, f"query {handle!r} registers unknown scoring "
                  f"{spec.get('scoring')!r}")
        if not _is_int(spec.get("k")) or spec["k"] < 1:
            _fail(origin, f"query {handle!r} needs an int k >= 1, got "
                  f"{spec.get('k')!r}")
        if not _is_int(spec.get("n")) or spec["n"] < 2:
            _fail(origin, f"query {handle!r} needs an int n >= 2, got "
                  f"{spec.get('n')!r}")


def _validate_maintainers(state: dict, origin: str) -> None:
    maintainers = state.get("maintainers")
    if maintainers is None:
        return
    if not isinstance(maintainers, list):
        _fail(origin, "'maintainers' must be a list, got "
              f"{type(maintainers).__name__}")
    seen: set[str] = set()
    for index, entry in enumerate(maintainers):
        if not isinstance(entry, dict):
            _fail(origin, f"maintainer entry {index} must be an object")
        scoring = entry.get("scoring")
        if scoring not in SCORING_NAMES:
            _fail(origin, f"maintainer entry {index} names unknown "
                  f"scoring {scoring!r}")
        if scoring in seen:
            _fail(origin, f"duplicate maintainer entry for {scoring!r}")
        seen.add(scoring)
        if not _is_int(entry.get("K")) or entry["K"] < 1:
            _fail(origin, f"maintainer {scoring!r} needs an int K >= 1, "
                  f"got {entry.get('K')!r}")
        skyband = entry.get("skyband")
        if not isinstance(skyband, list):
            _fail(origin, f"maintainer {scoring!r} 'skyband' must be a "
                  "list of [older, newer, score] triples")
        for position, triple in enumerate(skyband):
            if not isinstance(triple, (list, tuple)) or len(triple) != 3:
                _fail(origin, f"maintainer {scoring!r} skyband entry "
                      f"{position} must be [older, newer, score]")
            older, newer, score = triple
            if not _is_int(older) or not _is_int(newer) or older >= newer:
                _fail(origin, f"maintainer {scoring!r} skyband entry "
                      f"{position} has invalid seqs ({older!r}, {newer!r})")
            if not _is_number(score):
                _fail(origin, f"maintainer {scoring!r} skyband entry "
                      f"{position} has a non-numeric score {score!r}")
        staircase = entry.get("staircase")
        if not isinstance(staircase, list):
            _fail(origin, f"maintainer {scoring!r} 'staircase' must be a "
                  "list of [[score, -older_seq, uid], age_key] points")
        for position, point in enumerate(staircase):
            valid = (
                isinstance(point, (list, tuple)) and len(point) == 2
                and isinstance(point[0], (list, tuple))
                and len(point[0]) == 3
                and _is_number(point[0][0])
                and _is_int(point[0][1]) and _is_int(point[0][2])
                and _is_int(point[1])
            )
            if not valid:
                _fail(origin, f"maintainer {scoring!r} staircase point "
                      f"{position} is malformed")


def _validate_state(state, origin: str) -> dict:
    """Full shape validation of a checkpoint document.

    Every malformed document fails loudly here — with a
    :class:`~repro.exceptions.CheckpointError` naming the broken
    section — instead of surfacing a raw ``TypeError``/``KeyError``
    mid-replay.
    """
    if not isinstance(state, dict) or state.get("format") != FORMAT_NAME:
        _fail(origin, f"not a {FORMAT_NAME} document")
    version = state.get("version")
    if version not in SUPPORTED_VERSIONS:
        _fail(origin, f"format version {version!r} is not supported; "
              f"this reader accepts versions {SUPPORTED_VERSIONS}")
    for key in _REQUIRED_KEYS:
        if key not in state:
            _fail(origin, f"missing the {key!r} section")
    monitor = state["monitor"]
    if not isinstance(monitor, dict) or any(
        key not in monitor for key in _MONITOR_KEYS
    ):
        _fail(origin, f"incomplete monitor section (need {_MONITOR_KEYS})")
    if not _is_int(monitor["window_size"]) or monitor["window_size"] < 1:
        _fail(origin, "monitor.window_size must be an int >= 1, got "
              f"{monitor['window_size']!r}")
    if not _is_int(monitor["num_attributes"]) or monitor["num_attributes"] < 1:
        _fail(origin, "monitor.num_attributes must be an int >= 1, got "
              f"{monitor['num_attributes']!r}")
    epoch = state.get("epoch", 0)
    if not _is_int(epoch) or epoch < 0:
        _fail(origin, f"'epoch' must be an int >= 0, got {epoch!r}")
    next_handle = state.get("next_handle", 1)
    if not _is_int(next_handle) or next_handle < 1:
        _fail(origin, f"'next_handle' must be an int >= 1, got "
              f"{next_handle!r}")
    namespace = state.get("namespace", "default")
    if not isinstance(namespace, str) or not namespace:
        _fail(origin, f"'namespace' must be a non-empty string, got "
              f"{namespace!r}")
    _validate_window(state, origin)
    _validate_queries(state, origin)
    _validate_maintainers(state, origin)
    return state


def load_checkpoint(path: str) -> dict:
    """Read and validate a checkpoint document.

    Raises :class:`~repro.exceptions.CheckpointError` for a missing
    file, malformed JSON, a foreign format, an unsupported (newer)
    version, missing sections, or any section whose shape is wrong —
    a document that loads is structurally sound all the way down to
    individual window rows and query specs.
    """
    try:
        with open(path, encoding="utf-8") as handle:
            state = json.load(handle)
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path!r}: {exc}") \
            from exc
    except ValueError as exc:
        raise CheckpointError(
            f"checkpoint {path!r} is not valid JSON: {exc}"
        ) from exc
    return _validate_state(state, repr(path))


# ----------------------------------------------------------------------
# restore
# ----------------------------------------------------------------------
def _replay_window(session: ServerMonitor, state: dict) -> None:
    """The v1 restore path: feed the saved window through the engine.

    Every arrival runs the full maintenance machinery, and re-registered
    queries re-bootstrap their skybands from window pairs — ``O(N^2)``
    per group, which is why this is the *oracle*, not the fast path.
    """
    manager = session.monitor.manager
    window = state["window"]
    if window:
        manager.seed_sequence(int(window[0][0]))
    for seq, values, timestamp, payload in window:
        event = session.monitor.append(
            values, timestamp=timestamp, payload=payload
        )
        if event.new.seq != seq:
            raise CheckpointError(
                f"window is not seq-contiguous: expected {seq} from the "
                f"checkpoint, but the monitor assigned {event.new.seq}"
            )
        if event.expired:
            raise CheckpointError(
                "window replay expired objects; the checkpoint window "
                "does not fit its own monitor configuration"
            )
    if not window:
        manager.seed_sequence(int(state["next_seq"]))
    elif manager.now_seq + 1 != state["next_seq"]:
        raise CheckpointError(
            f"next_seq mismatch after replay: window ends at "
            f"{manager.now_seq}, checkpoint says next is "
            f"{state['next_seq']}"
        )


def _structural_restore(session: ServerMonitor, state: dict) -> None:
    """The v2 fast path: bulk-load the window, reconnect the serialized
    skyband pairs and install each group wholesale.

    Every deserialized skyband is re-swept through Algorithm 4 before
    installation: the sweep must keep every pair (or the section is not
    a valid K-skyband) and must reproduce the serialized staircase
    points exactly (or the two sections disagree) — a corrupt document
    can therefore never become a silently wrong maintainer.
    """
    manager = session.monitor.manager
    objects = [
        StreamObject(seq, values, timestamp, payload)
        for seq, values, timestamp, payload in state["window"]
    ]
    if objects:
        manager.load_window(objects)
    else:
        manager.seed_sequence(int(state["next_seq"]))
    by_seq = {obj.seq: obj for obj in objects}
    for entry in state.get("maintainers", ()):
        scoring = entry["scoring"]
        scoring_fn = session.scoring_for(scoring)
        depth = int(entry["K"])
        pairs: list[Pair] = []
        for older, newer, score in entry["skyband"]:
            a = by_seq.get(int(older))
            b = by_seq.get(int(newer))
            if a is None or b is None:
                raise CheckpointError(
                    f"maintainer {scoring!r} references a pair outside "
                    f"the window: ({older}, {newer})"
                )
            pairs.append(Pair(a, b, score))
        for position in range(1, len(pairs)):
            if pairs[position].score_key <= pairs[position - 1].score_key:
                raise CheckpointError(
                    f"maintainer {scoring!r} skyband is not in ascending "
                    f"score order at position {position}"
                )
        kept, staircase = update_skyband_and_staircase(pairs, depth)
        if len(kept) != len(pairs):
            raise CheckpointError(
                f"maintainer {scoring!r} skyband is not a valid "
                f"{depth}-skyband: re-sweeping discarded "
                f"{len(pairs) - len(kept)} pair(s)"
            )
        serialized_points = [
            (tuple(score_key), age_key)
            for score_key, age_key in entry["staircase"]
        ]
        if staircase.points() != serialized_points:
            raise CheckpointError(
                f"maintainer {scoring!r} staircase does not match its "
                "skyband (sections disagree; the document is corrupt)"
            )
        session.monitor.restore_group(scoring_fn, depth, kept, staircase)


def restore_server_monitor(
    source,
    *,
    mode: str = "structural",
    audit: Optional[bool] = None,
    recorder=None,
) -> ServerMonitor:
    """Warm-restart a session from a checkpoint path or loaded state.

    ``mode="structural"`` (the default) uses the v2 ``maintainers``
    section when present: the window is bulk-loaded and each skyband
    group installed directly — ``O(ND log N + |SKB| log K)`` instead of
    replay's ``O(N^2)`` per group.  v1 documents (no maintainer state)
    fall back to replay automatically.  ``mode="replay"`` forces the
    oracle path on any document.

    Either way the restored session preserves original sequence numbers
    and re-registers every saved query under its old wire handle, and
    answers every ``snapshot_query`` byte-identically to the session
    that wrote the checkpoint.  With ``audit=True`` a structural restore
    is immediately cross-checked against the brute-force skyband — the
    same oracle ``repro audit`` runs every tick.
    """
    if mode not in RESTORE_MODES:
        raise CheckpointError(
            f"unknown restore mode {mode!r}; expected one of "
            f"{RESTORE_MODES}"
        )
    if isinstance(source, str):
        state = load_checkpoint(source)
    else:
        state = _validate_state(source, "<state>")
    config = state["monitor"]
    session = ServerMonitor(
        config["window_size"], config["num_attributes"],
        time_horizon=config["time_horizon"], strategy=config["strategy"],
        seed=config["seed"], audit=audit, recorder=recorder,
    )
    session.epoch = int(state.get("epoch", 0))
    session.namespace = state.get("namespace", "default")
    structural = mode == "structural" and state.get("maintainers") is not None
    if structural:
        _structural_restore(session, state)
    else:
        _replay_window(session, state)
    for spec in state["queries"]:
        # Saved wire handles are pinned so clients resubscribing after a
        # restart keep their query names.
        session.register(
            spec["scoring"], int(spec["k"]), int(spec["n"]),
            handle_id=spec["handle"],
        )
    session._next_handle = max(
        int(state.get("next_handle", session._next_handle)),
        session._next_handle,
    )
    if structural and session.monitor.auditor is not None:
        # Structural restores skip the per-tick audit hooks replay runs,
        # so subject the installed state to one full pass right away —
        # including the brute-force skyband cross-check.
        session.monitor.auditor.check_now(cross_check=True)
    return session


def restore_namespace_checkpoints(
    directory: str,
    *,
    mode: str = "structural",
    audit: Optional[bool] = None,
    recorder=None,
) -> dict[str, ServerMonitor]:
    """Restore every ``<ns>.ckpt`` in a multi-tenant checkpoint dir.

    The per-namespace layout written by ``checkpoint`` with
    ``scope: "all"``: one document per namespace, each carrying its own
    fencing epoch and its ``namespace`` key.  A file whose embedded
    namespace disagrees with its file name fails loudly (a renamed file
    would otherwise restore one tenant's window under another tenant's
    name).  Returns ``{namespace: restored session}``; an empty dict
    for a directory with no checkpoints.
    """
    try:
        entries = sorted(os.listdir(directory))
    except OSError as exc:
        raise CheckpointError(
            f"cannot list checkpoint directory {directory!r}: {exc}"
        ) from exc
    sessions: dict[str, ServerMonitor] = {}
    for entry in entries:
        if not entry.endswith(".ckpt"):
            continue
        name = entry[:-len(".ckpt")]
        session = restore_server_monitor(
            os.path.join(directory, entry),
            mode=mode, audit=audit, recorder=recorder,
        )
        if session.namespace != name:
            raise CheckpointError(
                f"checkpoint {entry!r} embeds namespace "
                f"{session.namespace!r}; file name and document "
                f"disagree — refusing to restore a misrouted tenant"
            )
        sessions[name] = session
    return sessions
