"""The client library (``repro client``, tests, benchmarks).

:class:`ServeClient` is a deliberately *synchronous* socket client for
the NDJSON protocol of :mod:`repro.serve.protocol` — no event loop to
embed, so it drops into tests, notebooks and the CLI unchanged.

Responses are matched to requests by the echoed ``id``; server-pushed
frames (``hello``, ``delta``, ``closed``, ``bye`` events) arriving in
between are buffered and handed out via :meth:`next_event` /
:meth:`events`.  :func:`apply_delta` replays a delta event onto a
client-side answer dict, reproducing the server's ``results()`` without
re-shipping full answers::

    with ServeClient(port=port) as client:
        client.ingest([[0.1, 0.9], [0.15, 0.88]])
        query = client.register("closest", k=3)
        answer = client.subscribe(query)
        client.ingest([[0.12, 0.91]])
        for event in client.events(max_events=1):
            apply_delta(answer, event)
"""

from __future__ import annotations

import socket
import time
from typing import Iterator, Optional, Sequence

from repro.exceptions import ProtocolError, ServeError, ServeTimeoutError
from repro.serve.protocol import MAX_FRAME_BYTES, decode_frame, encode_frame

__all__ = ["ServeClient", "ServeRequestError", "apply_delta"]


class ServeRequestError(ServeError):
    """The server answered a request with a structured error frame.

    ``details`` carries the frame's ``error.details`` object when
    present — quota rejections put the exact admitted row count there
    (``{"quota": ..., "requested": ..., "ingested": ..., "now_seq":
    ...}``), so a partially admitted batch is accountable.
    """

    def __init__(self, code: str, message: str,
                 details: Optional[dict] = None) -> None:
        self.code = code
        self.details = details if details is not None else {}
        super().__init__(f"[{code}] {message}")


class ServeClient:
    """A synchronous client for one server connection."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        timeout: float = 10.0,
        connect_timeout: Optional[float] = None,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        connect: bool = True,
    ) -> None:
        self.host = host
        self.port = port
        #: overall per-request deadline in seconds.  The clock spans the
        #: whole response, not one ``recv`` — a stalled server that
        #: trickles partial bytes still trips
        #: :class:`~repro.exceptions.ServeTimeoutError`.
        self.timeout = timeout
        #: TCP connect + hello deadline; defaults to ``timeout``
        self.connect_timeout = (
            connect_timeout if connect_timeout is not None else timeout
        )
        self.max_frame_bytes = max_frame_bytes
        self._sock: Optional[socket.socket] = None
        self._buffer = bytearray()
        self._events: list[dict] = []
        self._next_id = 1
        #: the server's hello event (protocol version, backpressure
        #: policy), available after :meth:`connect`.
        self.hello: Optional[dict] = None
        if connect:
            self.connect()

    # ------------------------------------------------------------------
    # connection plumbing
    # ------------------------------------------------------------------
    def connect(self) -> "ServeClient":
        deadline = self._deadline(self.connect_timeout)
        try:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.connect_timeout
            )
        except (socket.timeout, TimeoutError) as exc:
            raise ServeTimeoutError(
                f"timed out after {self.connect_timeout}s connecting to "
                f"{self.host}:{self.port}"
            ) from exc
        # Frames are small and latency-bound; without NODELAY, Nagle +
        # delayed ACK adds ~40ms to every pushed event while a previous
        # small segment is in flight (the replication feed's worst case).
        try:
            self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except (OSError, AttributeError):
            pass  # non-TCP transports (tests may stub the socket)
        self.hello = self._read_frame(
            self.connect_timeout, deadline=deadline, what="the hello event"
        )
        return self

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def detach(self) -> tuple[socket.socket, bytes, list[dict]]:
        """Hand the live connection over to another owner.

        Returns ``(socket, leftover_bytes, buffered_events)`` — the raw
        socket, any bytes already read past the last consumed frame, and
        the event frames buffered for :meth:`next_event`.  The client
        forgets the socket (``close`` becomes a no-op), so the new owner
        controls its lifetime.  This is how the warm-standby bootstrap
        (:func:`repro.serve.standby.connect_standby`) promotes a
        synchronous bootstrap conversation into an asyncio replication
        tail without dropping a byte of the feed.
        """
        if self._sock is None:
            raise ServeError("client is not connected")
        sock = self._sock
        self._sock = None
        sock.settimeout(None)
        leftover = bytes(self._buffer)
        self._buffer = bytearray()
        events = self._events
        self._events = []
        return sock, leftover, events

    def __enter__(self) -> "ServeClient":
        if self._sock is None:
            self.connect()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    @staticmethod
    def _deadline(timeout: Optional[float]) -> Optional[float]:
        return None if timeout is None else time.monotonic() + timeout

    def _read_frame(
        self,
        timeout: Optional[float],
        *,
        deadline: Optional[float] = None,
        what: str = "a frame",
    ) -> Optional[dict]:
        """The next frame off the wire, or ``None`` on timeout.

        With ``deadline`` (a ``time.monotonic`` instant) the clock spans
        the *whole frame*: each ``recv`` only gets the remaining budget,
        so a stalled server that trickles one byte per recv cannot push
        the deadline out forever, and expiry raises
        :class:`~repro.exceptions.ServeTimeoutError` instead of
        returning ``None``.
        """
        if self._sock is None:
            raise ServeError("client is not connected")
        while True:
            newline = self._buffer.find(b"\n")
            if newline >= 0:
                line = bytes(self._buffer[:newline + 1])
                del self._buffer[:newline + 1]
                return decode_frame(line)
            if len(self._buffer) > self.max_frame_bytes:
                raise ProtocolError(
                    "frame_too_large",
                    f"server frame exceeds {self.max_frame_bytes} bytes",
                )
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise ServeTimeoutError(
                        f"timed out after {timeout}s awaiting {what} "
                        f"from {self.host}:{self.port}"
                    )
                self._sock.settimeout(remaining)
            else:
                self._sock.settimeout(timeout)
            try:
                chunk = self._sock.recv(65536)
            except (socket.timeout, BlockingIOError) as exc:
                # BlockingIOError covers timeout=0 (non-blocking poll).
                if deadline is not None:
                    raise ServeTimeoutError(
                        f"timed out after {timeout}s awaiting {what} "
                        f"from {self.host}:{self.port}"
                    ) from exc
                return None
            if not chunk:
                raise ServeError("server closed the connection")
            self._buffer.extend(chunk)

    # ------------------------------------------------------------------
    # request/response
    # ------------------------------------------------------------------
    def request(self, op: str, **fields) -> dict:
        """Send one request and block for its response.

        Event frames arriving before the response are buffered for
        :meth:`next_event`.  An ``ok: false`` response raises
        :class:`ServeRequestError` carrying the structured code.
        """
        if self._sock is None:
            raise ServeError("client is not connected")
        request_id = self._next_id
        self._next_id += 1
        frame = {"op": op, "id": request_id}
        frame.update(
            {key: value for key, value in fields.items()
             if value is not None}
        )
        self._sock.sendall(encode_frame(frame))
        deadline = self._deadline(self.timeout)
        while True:
            response = self._read_frame(
                self.timeout, deadline=deadline,
                what=f"the {op!r} response",
            )
            if response is None:
                raise ServeTimeoutError(
                    f"timed out after {self.timeout}s awaiting the "
                    f"{op!r} response"
                )
            if "event" in response:
                self._events.append(response)
                continue
            if response.get("id") != request_id:
                continue  # stale response from an abandoned request
            if not response.get("ok"):
                error = response.get("error") or {}
                raise ServeRequestError(
                    error.get("code", "internal"),
                    error.get("message", "unspecified server error"),
                    details=error.get("details"),
                )
            return response

    def next_event(self, timeout: Optional[float] = None) -> Optional[dict]:
        """The next buffered or incoming event frame (``None`` on
        timeout)."""
        if self._events:
            return self._events.pop(0)
        while True:
            frame = self._read_frame(timeout)
            if frame is None or "event" in frame:
                return frame
            # A response nobody is waiting for (abandoned request):
            # drop it and keep reading.

    def events(self, *, max_events: int,
               timeout: Optional[float] = None) -> Iterator[dict]:
        """Iterate up to ``max_events`` event frames (stops early on
        timeout)."""
        for _ in range(max_events):
            event = self.next_event(
                timeout=self.timeout if timeout is None else timeout
            )
            if event is None:
                return
            yield event

    # ------------------------------------------------------------------
    # op helpers
    # ------------------------------------------------------------------
    def auth(
        self,
        namespace: Optional[str] = None,
        token: Optional[str] = None,
        *,
        admin: bool = False,
    ) -> dict:
        """Authenticate this connection on a multi-tenant server.

        Tenant path: ``auth(namespace, token)`` binds the connection to
        that namespace (every later op runs against its monitor); the
        ack echoes the namespace plus its fencing ``epoch`` and
        ``now_seq``.  Admin path: ``auth(token=..., admin=True)`` grants
        the administrative surface (``checkpoint`` scope ``"all"``,
        ``replicate``, ``promote``, ``shutdown``, full ``epoch``/
        ``stats`` maps) without binding a namespace.  Wrong, missing or
        revoked credentials raise ``unauthorized``.
        """
        return self.request(
            "auth", namespace=namespace, token=token,
            admin=admin or None,
        )

    def ingest(
        self,
        rows: Sequence[Sequence[float]],
        *,
        timestamps: Optional[Sequence[float]] = None,
        trace: Optional[str] = None,
    ) -> dict:
        """Admit rows; the ack reports exactly how many were ingested.

        Pass a ``trace`` id (mint one with
        :func:`repro.obs.spans.new_trace_id`) to follow this batch end
        to end: the server runs the op and tick under spans carrying the
        id, stamps it onto every delta the batch produced, and echoes it
        in the ack — then ``/tracez?trace=<id>`` on the sidecar shows
        the whole story.
        """
        return self.request(
            "ingest", rows=[list(row) for row in rows],
            timestamps=list(timestamps) if timestamps is not None else None,
            trace=trace,
        )

    def register(self, scoring: str, k: int,
                 n: Optional[int] = None) -> str:
        """Register a continuous query; returns its wire handle."""
        return self.request("register", scoring=scoring, k=k, n=n)["query"]

    def unregister(self, query: str) -> dict:
        return self.request("unregister", query=query)

    def snapshot(
        self,
        scoring: Optional[str] = None,
        k: Optional[int] = None,
        n: Optional[int] = None,
        *,
        query: Optional[str] = None,
    ) -> list[dict]:
        """Ad-hoc snapshot answer, or a registered query's current
        answer when ``query`` is given."""
        return self.request(
            "snapshot", scoring=scoring, k=k, n=n, query=query,
        )["answer"]

    def subscribe(self, query: str) -> dict:
        """Subscribe to a query's deltas; returns the baseline answer
        keyed for :func:`apply_delta`."""
        response = self.request("subscribe", query=query)
        return {
            (pair["older"], pair["newer"]): pair
            for pair in response["answer"]
        }

    def unsubscribe(self, query: str) -> dict:
        return self.request("unsubscribe", query=query)

    def checkpoint(self, path: Optional[str] = None, *,
                   ship: bool = False,
                   scope: Optional[str] = None) -> dict:
        """Persist a checkpoint server-side, or — with ``ship=True`` —
        receive the checkpoint document inline in the ack (``state``
        key) without the server touching disk (the standby bootstrap
        path).  ``scope="all"`` checkpoints every namespace on a
        multi-tenant server (admin only): per-namespace ``<ns>.ckpt``
        files, or an inline ``states`` map with ``ship``."""
        return self.request("checkpoint", path=path, ship=ship or None,
                            scope=scope)

    def replicate(self) -> dict:
        """Register this connection for the raw replication feed: every
        batch the server admits from now on arrives as a ``rows`` event
        (consume via :meth:`next_event`).  The ack reports ``now_seq``
        and the fencing ``epoch``."""
        return self.request("replicate")

    def promote(self) -> dict:
        """Promote a standby server to primary (bumps its fencing
        epoch); fails with ``bad_request`` on a server that already is
        the primary."""
        return self.request("promote")

    def epoch(self) -> dict:
        """The server's role, fencing epoch and current sequence number
        (plus standby apply stats when it is tailing a primary)."""
        return self.request("epoch")

    def stats(self, *, metrics: bool = False) -> dict:
        return self.request("stats", metrics=metrics or None)["stats"]

    def shutdown(self) -> dict:
        return self.request("shutdown")


def apply_delta(answer: dict, event: dict) -> dict:
    """Replay one ``delta`` event onto a subscriber-side answer dict
    (as returned by :meth:`ServeClient.subscribe`); returns it.

    After every delta the dict equals the server's ``results()`` for
    that tick — the delta protocol's defining property (pinned by the
    round-trip tests).
    """
    for pair in event.get("left", ()):
        answer.pop((pair["older"], pair["newer"]), None)
    for pair in event.get("entered", ()):
        answer[(pair["older"], pair["newer"])] = pair
    return answer
