"""Wire protocol for the serving layer (docs/serving.md).

Frames are newline-delimited JSON objects (NDJSON), UTF-8 encoded, one
frame per line.  Three frame shapes travel over a connection:

* **requests** (client → server) — ``{"op": <name>, "id": <echo>, ...}``
  where ``op`` is one of :data:`OPS` and the optional ``id`` is echoed
  verbatim in the response so a client can match replies;
* **responses** (server → client) — ``{"ok": true, "op": ..., "id": ...,
  ...payload}`` on success, ``{"ok": false, "error": {"code": ...,
  "message": ...}, ...}`` on failure.  Error codes are catalogued in
  :data:`ERROR_CODES`; the server answers *every* malformed input with a
  structured error frame rather than dying or going silent;
* **events** (server → client, push) — ``{"event": <kind>, ...}``.
  Subscription deltas are ``{"event": "delta", "query": ..., "tick": ...,
  "entered": [...], "left": [...]}``; delivery keeps the client's answer
  in sync without re-shipping the full top-k every tick (the
  delta-based protocol of Mäcker et al., see PAPERS.md).  Connections
  registered via the ``replicate`` op additionally receive ``rows``
  events — ``{"event": "rows", "first_seq": ..., "now_seq": ...,
  "epoch": ..., "namespace": ..., "rows": [[values...], ...],
  "timestamps": [...]|null}`` — the raw replication feed a warm standby
  applies to keep its maintainer state hot (docs/serving.md, failover
  runbook).

On a multi-tenant server (``repro serve --tenants``) every data op is
scoped to a *namespace*: a connection first sends ``{"op": "auth",
"namespace": ..., "token": ...}`` (or ``admin: true`` with the admin
token) and every later op runs against that namespace's own monitor.
Auth failures answer with ``unauthorized``; quota violations answer
with ``quota_exceeded`` whose ``error.details`` object reports the
quota name and, for mid-batch ingest cuts, the exact ``ingested``
count (``Monitor.extend`` semantics: the prefix really was admitted).

Any request may additionally carry an optional ``trace`` field — an
opaque client-minted id string (see :func:`repro.obs.spans.new_trace_id`)
propagated end to end: the server opens an ``op:<name>`` span under it,
the ingest tick runs under it, every delta event the tick produced
carries it, and the ingest ack echoes it back.  :func:`trace_of`
validates the field; untraced frames (the default) pay nothing.

Pairs cross the wire via :func:`pair_to_wire` — a deterministic dict
(sequence numbers, score, attribute values) so two servers holding the
same window produce byte-identical serializations.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.core.pair import Pair
from repro.exceptions import ProtocolError

__all__ = [
    "ERROR_CODES",
    "MAX_FRAME_BYTES",
    "MAX_TRACE_ID_CHARS",
    "OPS",
    "PROTOCOL_VERSION",
    "decode_frame",
    "encode_frame",
    "error_frame",
    "ok_frame",
    "pair_to_wire",
    "trace_of",
]

#: bumped on every incompatible wire change; the ``hello`` event and
#: ``stats`` responses carry it so clients can refuse to speak newer
#: servers.
PROTOCOL_VERSION = 1

#: default per-frame byte ceiling (requests larger than this are
#: answered with ``frame_too_large`` and the connection is closed, since
#: the stream can no longer be resynchronized).
MAX_FRAME_BYTES = 1 << 20

#: trace ids are opaque, but unbounded ones would let a client bloat
#: every span record and delta frame the server emits.
MAX_TRACE_ID_CHARS = 64

#: the request operations the server understands.
OPS = (
    "ingest",
    "register",
    "unregister",
    "snapshot",
    "subscribe",
    "unsubscribe",
    "checkpoint",
    "stats",
    "shutdown",
    "replicate",
    "promote",
    "epoch",
    "auth",
)

#: structured error codes (the machine-readable half of an error frame).
ERROR_CODES = (
    "bad_json",        # line is not valid JSON
    "bad_frame",       # JSON but not an object, or no "op" string
    "unknown_op",      # "op" is not in OPS
    "bad_request",     # op-specific field missing or invalid
    "unknown_query",   # query handle does not name a registered query
    "frame_too_large", # request exceeded the frame byte ceiling
    "checkpoint_failed",
    "shutting_down",   # server is draining; no new work accepted
    "not_primary",     # standby refused a mutating op; promote it first
    "unauthorized",    # missing/wrong/revoked token, or no auth yet
    "quota_exceeded",  # a namespace quota rejected (details name it)
    "internal",        # unexpected server-side failure (bug)
)


def encode_frame(payload: dict) -> bytes:
    """One wire frame: compact JSON plus the terminating newline."""
    return json.dumps(payload, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_frame(line: bytes) -> dict:
    """Parse one received line into a frame dict.

    Raises :class:`~repro.exceptions.ProtocolError` with the matching
    error code for anything that is not a JSON object.
    """
    try:
        payload = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError("bad_json", f"frame is not valid JSON: {exc}") \
            from exc
    if not isinstance(payload, dict):
        raise ProtocolError(
            "bad_frame",
            f"frame must be a JSON object, got {type(payload).__name__}",
        )
    return payload


def trace_of(frame: dict) -> Optional[str]:
    """The request's validated ``trace`` id, or ``None`` when untraced.

    Raises ``bad_request`` for a non-string or oversized id — a frame
    that *tried* to trace deserves a loud failure, not silent dropping.
    """
    trace = frame.get("trace")
    if trace is None:
        return None
    if not isinstance(trace, str) or not trace:
        raise ProtocolError(
            "bad_request", "'trace' must be a non-empty string"
        )
    if len(trace) > MAX_TRACE_ID_CHARS:
        raise ProtocolError(
            "bad_request",
            f"'trace' exceeds {MAX_TRACE_ID_CHARS} characters",
        )
    return trace


def ok_frame(op: str, request_id=None, **payload) -> dict:
    """A success response echoing the request's ``op`` and ``id``."""
    frame: dict = {"ok": True, "op": op}
    if request_id is not None:
        frame["id"] = request_id
    frame.update(payload)
    return frame


def error_frame(
    code: str,
    message: str,
    *,
    request_id=None,
    op: Optional[str] = None,
    details: Optional[dict] = None,
) -> dict:
    """A structured error response (``ok: false``).

    ``code`` must come from :data:`ERROR_CODES` — clients dispatch on
    it, so ad-hoc codes are a bug in the server, not a protocol value.
    ``details`` (optional) attaches a machine-readable object under
    ``error.details`` — ``quota_exceeded`` frames use it to report the
    quota that fired and how much of the request was admitted.
    """
    if code not in ERROR_CODES:
        raise ValueError(f"uncatalogued error code {code!r}")
    frame: dict = {
        "ok": False,
        "error": {"code": code, "message": message},
    }
    if details is not None:
        frame["error"]["details"] = dict(details)
    if op is not None:
        frame["op"] = op
    if request_id is not None:
        frame["id"] = request_id
    return frame


def pair_to_wire(pair: Pair) -> dict:
    """A deterministic JSON-able view of one answer pair.

    Keyed by the members' sequence numbers (the pair's identity), plus
    the score and both value tuples so clients can render answers
    without a second lookup.  Identical windows serialize identically —
    the property the checkpoint/restore regression test pins down.
    """
    return {
        "older": pair.older.seq,
        "newer": pair.newer.seq,
        "score": pair.score,
        "older_values": list(pair.older.values),
        "newer_values": list(pair.newer.values),
    }
