"""The asyncio TCP server (``repro serve``; protocol in docs/serving.md).

One :class:`ServeServer` owns one :class:`~repro.serve.session.ServerMonitor`
and speaks the NDJSON frame protocol of :mod:`repro.serve.protocol` to
any number of clients.  Design points:

* **single-threaded engine** — every op runs on the event loop, so the
  monitor needs no locking and ingest ticks are serialized exactly like
  library use; concurrency lives in the I/O, not the engine;
* **delta fan-out with bounded queues** — each connection has one
  bounded event queue drained by a writer task.  When a subscriber's
  queue is full the configured backpressure policy decides:
  ``"block"`` (default) awaits queue space, which delays the ingest
  *ack* — producers slow to the slowest subscriber; ``"drop"`` discards
  the delta for that subscriber and marks it *lagged* — the next
  delivered event carries ``"lagged": true`` and the client must resync
  from a ``snapshot``;
* **graceful drain** — SIGINT/SIGTERM (or a ``shutdown`` op) stop the
  acceptor, flush every event queue, send a ``bye`` event and close;
  an optional checkpoint-on-exit persists the window on the way down;
* **observability** — connection/frame/error counters, delta fan-out
  and drop counters, per-op latency histograms, per-subscriber
  queue-depth/drop/lag series and checkpoint timings, all in a
  :class:`~repro.obs.metrics.MetricsRegistry` (shareable with the
  monitor's recorder, exported via the ``stats`` op and the HTTP
  sidecar);
* **request tracing** — a frame carrying a ``trace`` id runs its op
  handler under an ``op:<name>`` span, its ingest tick under a ``tick``
  span, and stamps the id onto every delta it caused (the end-to-end
  story ``/tracez`` tells; see docs/serving.md);
* **flight recorder + sidecar** — recent spans, tick summaries and
  error frames land in a :class:`~repro.obs.flight.FlightRecorder` that
  dumps JSONL on error frames, slow ticks and SIGUSR2; an optional
  :class:`~repro.obs.httpd.ObsHTTPServer` (``--obs-port``) serves
  ``/metrics``, ``/healthz``, ``/varz``, ``/tracez`` and ``/ticks`` on
  the same event loop.

* **multi-tenant namespaces** — given a
  :class:`~repro.serve.tenancy.NamespaceRegistry` (``repro serve
  --tenants``), every connection authenticates into a namespace (the
  ``auth`` op) owning a fully isolated session; per-namespace quotas
  reject with ``quota_exceeded`` frames, and ingest ticks run through a
  :class:`~repro.serve.tenancy.FairMultiplexer` so one tenant cannot
  head-of-line-block the rest.  A single-tenant server is the same code
  path serving one open ``default`` namespace.

Per-subscriber metric series are labelled by peer address with
*bounded* cardinality: at most ``max_peer_labels`` live peers get their
own series (the rest share an ``overflow`` label), and a peer's series
are evicted when it disconnects — label churn no longer grows the
registry without limit.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import threading
from time import perf_counter
from typing import Optional

from repro.exceptions import (
    ProtocolError,
    ReproError,
    ServeError,
    TenantConfigError,
)
from repro.obs.flight import FlightRecorder, RingLog
from repro.obs.httpd import ObsHTTPServer
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import NULL_SPANS
from repro.serve import checkpoint as checkpoint_module
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    OPS,
    PROTOCOL_VERSION,
    decode_frame,
    encode_frame,
    error_frame,
    ok_frame,
    pair_to_wire,
    trace_of,
)
from repro.serve.session import ServerMonitor
from repro.serve.tenancy import (
    DEFAULT_NAMESPACE,
    FairMultiplexer,
    Namespace,
    NamespaceRegistry,
    load_tenants_file,
)

__all__ = ["BACKPRESSURE_POLICIES", "ROLES", "BackgroundServer",
           "ServeServer"]

BACKPRESSURE_POLICIES = ("block", "drop")

#: a server is either the ingest authority or a warm standby tailing one
#: (docs/serving.md, failover runbook).  A standby rejects ``ingest``
#: with ``not_primary`` until a ``promote`` op flips its role.
ROLES = ("primary", "standby")

_CLOSE = object()  # event-queue sentinel terminating a writer task


class _Connection:
    """Per-connection state: writer, subscriptions, event queue."""

    __slots__ = ("reader", "writer", "events", "subscriptions", "lagged",
                 "pump", "name", "namespace", "admin", "metrics_label")

    def __init__(self, reader, writer, queue_depth: int) -> None:
        self.reader = reader
        self.writer = writer
        #: bounded per-subscriber queue (the backpressure boundary)
        self.events: asyncio.Queue = asyncio.Queue(maxsize=queue_depth)
        #: query handles this connection subscribed to
        self.subscriptions: set[str] = set()
        #: queries whose deltas were dropped since the last delivery
        self.lagged: set[str] = set()
        self.pump: Optional[asyncio.Task] = None
        peer = writer.get_extra_info("peername")
        self.name = f"{peer[0]}:{peer[1]}" if peer else "?"
        #: the namespace this connection authenticated into (pre-set to
        #: the default namespace on single-tenant servers; ``None``
        #: until a successful ``auth`` op on multi-tenant ones)
        self.namespace: Optional[Namespace] = None
        #: authenticated with the file-level admin token
        self.admin = False
        #: the per-peer metric label this connection resolved to
        #: (``None`` until first use; ``"overflow"`` past the cap)
        self.metrics_label: Optional[str] = None


class ServeServer:
    """Asyncio TCP server publishing top-k pair answers and deltas."""

    def __init__(
        self,
        session: Optional[ServerMonitor] = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        backpressure: str = "block",
        queue_depth: int = 64,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        checkpoint_dir: Optional[str] = None,
        registry: Optional[MetricsRegistry] = None,
        spans=None,
        flight: Optional[FlightRecorder] = None,
        obs_port: Optional[int] = None,
        obs_host: str = "127.0.0.1",
        ticks_capacity: int = 256,
        role: str = "primary",
        standby=None,
        tenants: Optional[NamespaceRegistry] = None,
        max_peer_labels: int = 64,
        mux_pending: int = 4,
    ) -> None:
        if backpressure not in BACKPRESSURE_POLICIES:
            raise ProtocolError(
                "bad_request",
                f"backpressure must be one of {BACKPRESSURE_POLICIES}, "
                f"got {backpressure!r}",
            )
        if queue_depth < 1:
            raise ProtocolError(
                "bad_request", f"queue_depth must be >= 1, got {queue_depth}"
            )
        if role not in ROLES:
            raise ProtocolError(
                "bad_request", f"role must be one of {ROLES}, got {role!r}"
            )
        if standby is not None and role != "standby":
            raise ProtocolError(
                "bad_request", "a standby tailer requires role='standby'"
            )
        if max_peer_labels < 1:
            raise ProtocolError(
                "bad_request",
                f"max_peer_labels must be >= 1, got {max_peer_labels}",
            )
        if tenants is None:
            if session is None:
                raise ServeError(
                    "a server needs either a session or a tenants "
                    "registry"
                )
            # Single-tenant mode is multi-tenancy with one open
            # namespace: same code path, no auth, no quotas, no
            # multiplexer hop.
            tenants = NamespaceRegistry.single(session)
            self.multi_tenant = False
        else:
            if session is not None:
                raise ServeError(
                    "pass either a session (single-tenant) or a "
                    "tenants registry (multi-tenant), not both"
                )
            self.multi_tenant = True
        #: the namespace registry (always present; single-tenant servers
        #: wrap their one session as the open ``default`` namespace)
        self.tenants = tenants
        #: the single-tenant session (``None`` on multi-tenant servers;
        #: multi-tenant code must go through :attr:`tenants`)
        self.session = session
        #: fair round-robin tick scheduler (multi-tenant only)
        self.mux: Optional[FairMultiplexer] = (
            FairMultiplexer(max_pending=mux_pending, spawn=self._spawn)
            if self.multi_tenant else None
        )
        self.max_peer_labels = max_peer_labels
        self.role = role
        #: the :class:`~repro.serve.standby.StandbyTailer` feeding this
        #: server's session (standbys only); started with the server and
        #: stopped by ``promote`` or shutdown.
        self.standby = standby
        self.host = host
        self.port = port
        self.backpressure = backpressure
        self.queue_depth = queue_depth
        self.max_frame_bytes = max_frame_bytes
        self.checkpoint_dir = checkpoint_dir
        # The session's span recorder is adopted when no explicit one is
        # given, so op spans and engine tick spans share a single ring
        # (never test recorder truthiness — an *empty* ring is falsy).
        if spans is None:
            spans = getattr(session, "spans", None)
        self.spans = spans if spans is not None else NULL_SPANS
        self.flight = flight
        self.obs_port = obs_port
        self.obs_host = obs_host
        self.obs: Optional[ObsHTTPServer] = None
        #: recent per-ingest tick summaries (the ``/ticks`` stream)
        self.ticks = RingLog(ticks_capacity)
        self._last_tick_at: Optional[float] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: set[_Connection] = set()
        #: subscribers keyed by ``(namespace, query_handle)`` — query
        #: handles are only unique within one namespace's registry
        self._subscribers: dict[tuple[str, str], set[_Connection]] = {}
        #: connections registered via ``replicate`` (warm standbys);
        #: every ingested batch is mirrored to them as a ``rows`` event
        self._replicas: set[_Connection] = set()
        self._stopping = False
        self._stopped = asyncio.Event()
        #: strong references to background tasks (pumps, shutdown);
        #: without them a task can be garbage-collected mid-flight and
        #: its exception silently dropped
        self._background: set[asyncio.Task] = set()
        # -- metrics ---------------------------------------------------
        r = registry if registry is not None else MetricsRegistry()
        self.registry = r
        self._m_connections = r.counter(
            "repro_serve_connections_total", "client connections accepted"
        )
        self._m_active = r.gauge(
            "repro_serve_active_connections", "currently open connections"
        )
        self._m_frames = r.counter(
            "repro_serve_frames_total", "request frames handled, by op",
            labelnames=("op",),
        )
        self._m_errors = r.counter(
            "repro_serve_errors_total", "error frames sent, by code",
            labelnames=("code",),
        )
        self._m_ingested = r.counter(
            "repro_serve_ingested_rows_total", "rows admitted via ingest ops"
        )
        self._m_deltas = r.counter(
            "repro_serve_deltas_sent_total",
            "subscription delta events enqueued to subscribers",
        )
        self._m_dropped = r.counter(
            "repro_serve_deltas_dropped_total",
            "delta events discarded by the drop backpressure policy",
        )
        self._m_replicated = r.counter(
            "repro_serve_replicated_rows_total",
            "rows mirrored to replication subscribers",
        )
        self._m_subscribers = r.gauge(
            "repro_serve_subscribers", "active (connection, query) "
            "subscriptions"
        )
        self._m_queue_depth = r.gauge(
            "repro_serve_event_queue_depth",
            "deepest per-subscriber event queue at the last fan-out",
        )
        self._m_checkpoint_seconds = r.histogram(
            "repro_serve_checkpoint_seconds",
            "wall seconds per checkpoint save",
        )
        self._m_task_errors = r.counter(
            "repro_serve_task_errors_total",
            "background tasks (pumps, shutdown) that died on an "
            "unhandled exception",
        )
        self._m_op_seconds = r.histogram(
            "repro_serve_op_seconds",
            "request handling seconds, by op (validation to response)",
            labelnames=("op",),
        )
        self._m_sub_queue = r.gauge(
            "repro_serve_subscriber_queue_depth",
            "event-queue depth per subscriber at the last fan-out",
            labelnames=("peer",),
        )
        self._m_sub_drops = r.counter(
            "repro_serve_subscriber_dropped_total",
            "delta events dropped per subscriber (drop policy)",
            labelnames=("peer",),
        )
        self._m_sub_lagged = r.gauge(
            "repro_serve_subscriber_lagged_queries",
            "queries currently marked lagged per subscriber",
            labelnames=("peer",),
        )
        self._m_ns_ingested = r.counter(
            "repro_serve_ns_ingested_rows_total",
            "rows admitted per namespace",
            labelnames=("ns",),
        )
        self._m_ns_deltas = r.counter(
            "repro_serve_ns_deltas_sent_total",
            "delta events enqueued per namespace",
            labelnames=("ns",),
        )
        self._m_ns_quota = r.counter(
            "repro_serve_ns_quota_rejections_total",
            "requests rejected (or cut short) by a namespace quota",
            labelnames=("ns", "quota"),
        )
        self._m_ns_queries = r.gauge(
            "repro_serve_ns_queries",
            "registered continuous queries per namespace",
            labelnames=("ns",),
        )
        self._m_ns_window = r.gauge(
            "repro_serve_ns_window_objects",
            "objects currently in the window per namespace",
            labelnames=("ns",),
        )
        self._m_auth_failures = r.counter(
            "repro_serve_auth_failures_total",
            "rejected auth attempts (namespace or admin)",
        )
        self._m_tenant_reloads = r.counter(
            "repro_serve_tenant_reloads_total",
            "tenants-file hot reloads, by outcome",
            labelnames=("outcome",),
        )

    # ------------------------------------------------------------------
    # background tasks
    # ------------------------------------------------------------------
    def _spawn(self, coro) -> asyncio.Task:
        """Run a coroutine in the background *accountably*: the task is
        strongly referenced until done, and its exception — if any — is
        retrieved and counted instead of rotting unobserved."""
        task = asyncio.ensure_future(coro)
        self._background.add(task)
        task.add_done_callback(self._reap_background)
        return task

    def _reap_background(self, task: asyncio.Task) -> None:
        self._background.discard(task)
        if task.cancelled():
            return
        exc = task.exception()
        if exc is not None:
            self._m_task_errors.inc()

    # ------------------------------------------------------------------
    # tenancy helpers
    # ------------------------------------------------------------------
    def _require_namespace(self, conn: _Connection) -> Namespace:
        """The namespace this connection operates in; ``unauthorized``
        when a multi-tenant connection has not authenticated yet."""
        if conn.namespace is None:
            raise ProtocolError(
                "unauthorized",
                "authenticate first: send {\"op\": \"auth\", "
                "\"namespace\": ..., \"token\": ...}",
            )
        return conn.namespace

    def _require_admin(self, conn: _Connection, what: str) -> None:
        if not conn.admin:
            raise ProtocolError(
                "unauthorized",
                f"{what} needs admin authentication "
                f"({{\"op\": \"auth\", \"admin\": true, ...}})",
            )

    def _quota_reject(self, ns: Namespace, quota: str,
                      message: str, **details) -> ProtocolError:
        """Count a quota rejection and build its error (caller raises
        or sends it; ``details`` land under ``error.details``)."""
        self._m_ns_quota.labels(ns.name, quota).inc()
        exc = ProtocolError("quota_exceeded", message)
        exc.details = {"quota": quota, **details}
        return exc

    def _default_namespace(self) -> Optional[Namespace]:
        return self.tenants.get(DEFAULT_NAMESPACE)

    def _refresh_ns_gauges(self, ns: Namespace) -> None:
        self._m_ns_queries.labels(ns.name).set(len(ns.session.queries()))
        self._m_ns_window.labels(ns.name).set(
            len(ns.session.monitor.manager)
        )

    # ------------------------------------------------------------------
    # per-peer metric labels (bounded cardinality)
    # ------------------------------------------------------------------
    def _peer_label(self, conn: _Connection) -> str:
        """The metric label for one peer: its address while fewer than
        ``max_peer_labels`` peers hold live series, the shared
        ``overflow`` label beyond — so churning peers cannot grow the
        label space without bound."""
        if conn.metrics_label is None:
            if (conn.name in self._m_sub_queue
                    or len(self._m_sub_queue) < self.max_peer_labels):
                conn.metrics_label = conn.name
            else:
                conn.metrics_label = "overflow"
        return conn.metrics_label

    def _evict_peer_labels(self, conn: _Connection) -> None:
        """Drop a disconnected peer's metric series (the ``overflow``
        aggregate stays; so do the unlabelled totals)."""
        label = conn.metrics_label
        if label is None or label == "overflow":
            return
        self._m_sub_queue.remove(label)
        self._m_sub_drops.remove(label)
        self._m_sub_lagged.remove(label)
        conn.metrics_label = None

    # ------------------------------------------------------------------
    # tenants-file hot reload (SIGHUP)
    # ------------------------------------------------------------------
    async def reload_tenants(self) -> list[str]:
        """Re-read the tenants file and apply it; returns the names of
        namespaces whose connections were closed (revoked/removed).

        A malformed file keeps the old config — a typo in a SIGHUP edit
        must not take the server down.  Driven by SIGHUP in ``repro
        serve``; callable directly (tests, embeddings).
        """
        if self.tenants.path is None:
            return []
        loop = asyncio.get_running_loop()
        try:
            specs, admin_token = await loop.run_in_executor(
                None, load_tenants_file, self.tenants.path
            )
        except TenantConfigError:
            self._m_tenant_reloads.labels("error").inc()
            return []
        stale = set(self.tenants.reload(specs, admin_token))
        self._m_tenant_reloads.labels("ok").inc()
        if not stale:
            return []
        evicted = [
            conn for conn in list(self._connections)
            if conn.namespace is not None
            and conn.namespace.name in stale
        ]
        bye = encode_frame({"event": "bye", "reason": "unauthorized"})
        for conn in evicted:
            await self._close_connection(conn, farewell=bye)
        return sorted(stale)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting; resolves :attr:`port` when 0.

        When :attr:`obs_port` is set the telemetry HTTP sidecar starts
        on the same event loop, sharing the server's registry, span
        ring, flight recorder and tick log.
        """
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            limit=self.max_frame_bytes,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.obs_port is not None:
            self.obs = ObsHTTPServer(
                registry=self.registry,
                spans=self.spans,
                flight=self.flight,
                ticks=self.ticks,
                health=self._health_probe,
                host=self.obs_host,
                port=self.obs_port,
            )
            self.obs_port = await self.obs.start()
        if self.standby is not None:
            # The tailer shares the event loop with the op handlers, so
            # replication applies serialize with reads exactly like
            # primary-side ingests do.
            self.standby.attach(self)
            self._spawn(self.standby.run())

    async def serve_until_stopped(self) -> None:
        """Run until :meth:`stop` completes (signal, op, or caller)."""
        if self._server is None:
            await self.start()
        await self._stopped.wait()

    def install_signal_handlers(self) -> None:
        """Graceful SIGINT/SIGTERM drain (best-effort on platforms or
        loops that do not support signal handlers)."""
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(
                    signum, lambda: self._spawn(self.stop())
                )
            except (NotImplementedError, RuntimeError):
                return
        # SIGUSR2 = operator-requested flight dump (forced past the rate
        # limit); absent on platforms without user signals.
        sigusr2 = getattr(signal, "SIGUSR2", None)
        if sigusr2 is not None and self.flight is not None:
            try:
                loop.add_signal_handler(
                    sigusr2,
                    lambda: self._maybe_dump("sigusr2", force=True),
                )
            except (NotImplementedError, RuntimeError):
                pass
        # SIGHUP = hot-reload the tenants file (multi-tenant only).
        sighup = getattr(signal, "SIGHUP", None)
        if sighup is not None and self.tenants.path is not None:
            try:
                loop.add_signal_handler(
                    sighup, lambda: self._spawn(self.reload_tenants())
                )
            except (NotImplementedError, RuntimeError):
                pass

    async def stop(self) -> None:
        """Drain and shut down: stop accepting, flush every subscriber
        queue, say ``bye``, close all connections."""
        if self._stopping:
            await self._stopped.wait()
            return
        self._stopping = True
        if self.mux is not None:
            self.mux.stop()
        if self.standby is not None:
            self.standby.stop()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        bye = encode_frame({"event": "bye", "reason": "shutdown"})
        for conn in list(self._connections):
            await self._close_connection(conn, farewell=bye)
        if self.obs is not None:
            await self.obs.stop()
        self._stopped.set()

    async def _close_connection(self, conn: _Connection,
                                farewell: Optional[bytes] = None) -> None:
        if conn not in self._connections:
            return
        self._connections.discard(conn)
        self._replicas.discard(conn)
        for query in conn.subscriptions:
            key = (conn.namespace.name, query) \
                if conn.namespace is not None else (DEFAULT_NAMESPACE, query)
            subscribers = self._subscribers.get(key)
            if subscribers is not None:
                subscribers.discard(conn)
                if not subscribers:
                    del self._subscribers[key]
        self._m_subscribers.dec(len(conn.subscriptions))
        if conn.namespace is not None:
            conn.namespace.subscriptions -= len(conn.subscriptions)
        conn.subscriptions.clear()
        self._evict_peer_labels(conn)
        self._m_active.dec()
        if conn.pump is not None:
            # Let the pump drain what is already queued, then stop it.
            try:
                await asyncio.wait_for(conn.events.put(_CLOSE), timeout=5.0)
            except asyncio.TimeoutError:
                conn.pump.cancel()
            try:
                await conn.pump
            except asyncio.CancelledError:
                pass
            except Exception:
                # A pump that died on a bug was already counted by the
                # _spawn done-callback; its failure must not also abort
                # the reader's cleanup path.
                pass
        try:
            if farewell is not None:
                conn.writer.write(farewell)
            conn.writer.close()
            await conn.writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        conn = _Connection(reader, writer, self.queue_depth)
        if not self.multi_tenant:
            # Single-tenant: every connection implicitly operates in
            # the open default namespace with admin rights (the
            # pre-tenancy contract, unchanged on the wire).
            conn.namespace = self._default_namespace()
            conn.admin = True
        self._connections.add(conn)
        self._m_connections.inc()
        self._m_active.inc()
        conn.pump = self._spawn(self._event_pump(conn))
        hello = {
            "event": "hello",
            "protocol": PROTOCOL_VERSION,
            "backpressure": self.backpressure,
            "queue_depth": self.queue_depth,
            "role": self.role,
            "multi_tenant": self.multi_tenant,
        }
        if conn.namespace is not None:
            hello["epoch"] = conn.namespace.session.epoch
        writer.write(encode_frame(hello))
        try:
            while not self._stopping:
                try:
                    line = await reader.readline()
                except ValueError:
                    # The frame outgrew the reader limit; the byte stream
                    # can no longer be resynchronized -> error and close.
                    self._send(conn, error_frame(
                        "frame_too_large",
                        f"frame exceeds {self.max_frame_bytes} bytes",
                    ))
                    self._m_errors.labels("frame_too_large").inc()
                    break
                if not line.endswith(b"\n"):
                    # EOF; a non-empty remainder is a mid-frame
                    # disconnect and is discarded silently.
                    break
                await self._handle_line(conn, line)
        except (ConnectionError, OSError):
            pass  # peer vanished; cleanup below
        finally:
            await self._close_connection(conn)

    async def _handle_line(self, conn: _Connection, line: bytes) -> None:
        if not line.strip():
            return  # blank keep-alive lines are ignored
        try:
            frame = decode_frame(line)
        except ProtocolError as exc:
            self._send_error(conn, exc.code, str(exc))
            return
        request_id = frame.get("id")
        op = frame.get("op")
        if not isinstance(op, str):
            self._send_error(conn, "bad_frame",
                             "frame must carry an 'op' string",
                             request_id=request_id)
            return
        if op not in OPS:
            self._send_error(conn, "unknown_op",
                             f"unknown op {op!r}; expected one of {OPS}",
                             request_id=request_id, op=op)
            return
        if self._stopping and op != "shutdown":
            self._send_error(conn, "shutting_down",
                             "server is draining; op rejected",
                             request_id=request_id, op=op)
            return
        self._m_frames.labels(op).inc()
        handler = getattr(self, f"_op_{op}")
        span = None
        if self.spans.enabled:
            trace = frame.get("trace")
            if isinstance(trace, str) and trace:
                # The op span opens even for a trace id the handler will
                # later reject — a failed traced request must still show
                # up in /tracez.
                span = self.spans.span(f"op:{op}", trace=trace,
                                       op=op, peer=conn.name)
        started = perf_counter()
        try:
            await handler(conn, frame, request_id)
        except ProtocolError as exc:
            if span is not None:
                span.attrs["error"] = exc.code
            self._send_error(conn, exc.code, str(exc),
                             request_id=request_id, op=op,
                             details=getattr(exc, "details", None))
        except ReproError as exc:
            if span is not None:
                span.attrs["error"] = "bad_request"
            self._send_error(conn, "bad_request", str(exc),
                             request_id=request_id, op=op)
        except (ConnectionError, OSError):
            raise
        except Exception as exc:  # the server must never die on a frame
            if span is not None:
                span.attrs["error"] = "internal"
            self._send_error(conn, "internal",
                             f"{type(exc).__name__}: {exc}",
                             request_id=request_id, op=op)
        finally:
            self._m_op_seconds.labels(op).observe(perf_counter() - started)
            if span is not None:
                span.finish()

    def _send(self, conn: _Connection, frame: dict) -> None:
        conn.writer.write(encode_frame(frame))

    def _send_error(self, conn: _Connection, code: str, message: str,
                    *, request_id=None, op: Optional[str] = None,
                    details: Optional[dict] = None) -> None:
        self._m_errors.labels(code).inc()
        if code == "unauthorized":
            self._m_auth_failures.inc()
        if self.flight is not None:
            self.flight.record_error(code, message, op=op, peer=conn.name)
            self._maybe_dump(f"error_{code}")
        self._send(conn, error_frame(code, message, request_id=request_id,
                                     op=op, details=details))

    # ------------------------------------------------------------------
    # flight recorder + health
    # ------------------------------------------------------------------
    def _maybe_dump(self, reason: str, *, force: bool = False) -> None:
        """Kick off a flight-recorder dump in the background (subject to
        the recorder's rate limit unless ``force``)."""
        if self.flight is None:
            return
        path = self.flight.plan_dump(reason, force=force)
        if path is not None:
            self._spawn(self._write_flight_dump(path, reason))

    async def _write_flight_dump(self, path: str, reason: str) -> None:
        # Blocking file I/O leaves the loop, same as checkpoint writes.
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.flight.dump, path, reason)

    def _health_probe(self) -> dict:
        """The ``/healthz`` payload (cheap, synchronous).

        Single-tenant keys are unchanged from pre-tenancy servers;
        multi-tenant probes add a bounded per-namespace breakdown
        (at most 32 namespaces listed, totals always exact).
        """
        last = self._last_tick_at
        window_total = 0
        queries_total = 0
        namespaces: dict[str, dict] = {}
        truncated = 0
        for ns in self.tenants.namespaces():
            window = len(ns.session.monitor.manager)
            queries = len(ns.session.queries())
            window_total += window
            queries_total += queries
            if len(namespaces) < 32:
                namespaces[ns.name] = {
                    "epoch": ns.session.epoch,
                    "now_seq": ns.session.monitor.manager.now_seq,
                    "window_size": window,
                    "queries": queries,
                }
            else:
                truncated += 1
        payload = {
            "protocol": PROTOCOL_VERSION,
            "role": self.role,
            "window_size": window_total,
            "last_tick_age_seconds": (
                perf_counter() - last if last is not None else None
            ),
            "connections": len(self._connections),
            "subscribers": sum(
                len(s) for s in self._subscribers.values()
            ),
            "queries": queries_total,
        }
        default = self._default_namespace()
        if not self.multi_tenant and default is not None:
            payload["epoch"] = default.session.epoch
            payload["now_seq"] = default.session.monitor.manager.now_seq
        else:
            payload["multi_tenant"] = True
            payload["namespaces"] = namespaces
            if truncated:
                payload["namespaces_truncated"] = truncated
        return payload

    # ------------------------------------------------------------------
    # event fan-out
    # ------------------------------------------------------------------
    async def _event_pump(self, conn: _Connection) -> None:
        """Single writer task draining one connection's event queue.

        After a write failure the pump keeps *consuming* (and
        discarding) frames until the close sentinel arrives — a blocked
        producer awaiting queue space on a dead connection must never
        hang the ingest path.
        """
        failed = False
        while True:
            frame = await conn.events.get()
            if frame is _CLOSE:
                return
            if failed:
                continue
            try:
                conn.writer.write(frame)
                await conn.writer.drain()
            except (ConnectionError, OSError):
                failed = True  # reader side will clean the connection up

    async def _fan_out_deltas(self, ns: Namespace) -> int:
        """Deliver one namespace's pending answer deltas to its
        subscribers; returns the number of delta events enqueued.

        Under the ``block`` policy this awaits queue space, so the
        caller's ingest ack is delayed until every subscriber queue took
        the delta; under ``drop`` the delta is discarded and the
        subscriber marked lagged.
        """
        return await self._fan_out_delta_list(ns, ns.session.drain_deltas())

    async def _fan_out_delta_list(self, ns: Namespace, deltas) -> int:
        """Enqueue an already-drained delta list to ``ns``'s subscribers
        (the standby tailer drains deltas itself so it can journal them,
        then hands them here)."""
        if not deltas:
            return 0
        enqueued = 0
        deepest = 0
        for delta in deltas:
            subscribers = self._subscribers.get((ns.name, delta.query))
            if not subscribers:
                continue
            base = {
                "event": "delta",
                "query": delta.query,
                "tick": delta.tick,
                "entered": [pair_to_wire(p) for p in delta.entered],
                "left": [pair_to_wire(p) for p in delta.left],
            }
            if delta.trace is not None:
                base["trace"] = delta.trace
            for conn in list(subscribers):
                frame = base
                if delta.query in conn.lagged:
                    frame = dict(base)
                    frame["lagged"] = True
                payload = encode_frame(frame)
                if self.backpressure == "block":
                    # Bookkeeping precedes the await: the frame above
                    # already consumed the lagged flag, and no other
                    # handler may observe it half-updated while this
                    # one waits for queue space.
                    conn.lagged.discard(delta.query)
                    await conn.events.put(payload)
                    self._m_deltas.inc()
                    enqueued += 1
                else:
                    try:
                        conn.events.put_nowait(payload)
                    except asyncio.QueueFull:
                        conn.lagged.add(delta.query)
                        self._m_dropped.inc()
                        self._m_sub_drops.labels(
                            self._peer_label(conn)
                        ).inc()
                    else:
                        conn.lagged.discard(delta.query)
                        self._m_deltas.inc()
                        enqueued += 1
                deepest = max(deepest, conn.events.qsize())
                label = self._peer_label(conn)
                self._m_sub_queue.labels(label).set(conn.events.qsize())
                self._m_sub_lagged.labels(label).set(len(conn.lagged))
        self._m_queue_depth.set(deepest)
        if enqueued:
            self._m_ns_deltas.labels(ns.name).inc(enqueued)
        return enqueued

    # ------------------------------------------------------------------
    # ops
    # ------------------------------------------------------------------
    async def _op_ingest(self, conn, frame, request_id) -> None:
        if self.role != "primary":
            raise ProtocolError(
                "not_primary",
                "this server is a standby; ingest on the primary or "
                "promote this server first",
            )
        ns = self._require_namespace(conn)
        rows = frame.get("rows")
        if not isinstance(rows, list):
            raise ProtocolError("bad_request",
                                "ingest needs a 'rows' list")
        timestamps = frame.get("timestamps")
        if timestamps is not None and not isinstance(timestamps, list):
            raise ProtocolError("bad_request",
                                "'timestamps' must be a list when present")
        trace = trace_of(frame)
        requested = len(rows)
        granted = ns.grant(requested)
        if granted < requested:
            # Partial grant: admit exactly the affordable prefix, then
            # report the cut — Monitor.extend semantics on the wire
            # (the 'ingested' detail really entered the stream).
            rows = rows[:granted]
            if timestamps is not None:
                timestamps = timestamps[:granted]
        if granted:
            count, now_seq, deltas = await self._run_tick(
                ns, rows, timestamps, trace,
            )
        else:
            count = deltas = 0
            now_seq = ns.session.monitor.manager.now_seq
        if granted < requested:
            raise self._quota_reject(
                ns, "ingest_rows_per_sec",
                f"ingest rate quota: {requested} rows requested, "
                f"{count} admitted",
                requested=requested, ingested=count, now_seq=now_seq,
            )
        ack = ok_frame("ingest", request_id, ingested=count,
                       now_seq=now_seq, deltas=deltas)
        if trace is not None:
            ack["trace"] = trace
        self._send(conn, ack)

    async def _run_tick(self, ns: Namespace, rows, timestamps, trace
                        ) -> tuple[int, int, int]:
        """One engine tick in ``ns``'s scheduling lane.

        Multi-tenant servers route through the fair multiplexer (round
        robin over ready namespaces, one in-flight tick per namespace);
        single-tenant servers call straight through — identical
        semantics, no scheduling hop.
        """
        if self.mux is None:
            return await self._ingest_tick(ns, rows, timestamps, trace)
        result = await self.mux.submit(
            ns.name,
            lambda: self._ingest_tick(ns, rows, timestamps, trace),
        )
        return result

    async def _ingest_tick(self, ns: Namespace, rows, timestamps, trace
                           ) -> tuple[int, int, int]:
        """Ingest + replicate + fan out one batch; returns
        ``(count, now_seq, delta_events)``."""
        started = perf_counter()
        count, now_seq = ns.session.ingest(
            rows, timestamps=timestamps, trace=trace,
        )
        self._m_ingested.inc(count)
        self._m_ns_ingested.labels(ns.name).inc(count)
        await self._replicate_rows(ns, rows, timestamps, count, now_seq)
        deltas = await self._fan_out_deltas(ns)
        elapsed = perf_counter() - started
        tick_record = {"tick": now_seq, "rows": count,
                       "deltas": deltas, "seconds": elapsed}
        if self.multi_tenant:
            tick_record["ns"] = ns.name
        if trace is not None:
            tick_record["trace"] = trace
        self.ticks.append(tick_record)
        self._last_tick_at = perf_counter()
        self._refresh_ns_gauges(ns)
        if self.flight is not None:
            self.flight.record_tick(tick_record)
            if self.flight.is_slow_tick(elapsed):
                self._maybe_dump("slow_tick")
        return count, now_seq, deltas

    async def _replicate_rows(self, ns: Namespace, rows, timestamps,
                              count, now_seq) -> None:
        """Mirror one admitted batch to every replication subscriber.

        Replication always *blocks* for queue space regardless of the
        delta backpressure policy: a standby that missed a batch would
        hit a sequence gap and die, so losslessness beats latency here.
        The ingest ack therefore waits until every replica queue took
        the event — same contract as the ``block`` delta policy.
        The ``namespace`` field routes the batch on multi-tenant
        standbys; pre-tenancy tailers ignore it.
        """
        if count <= 0 or not self._replicas:
            return
        payload = encode_frame({
            "event": "rows",
            "first_seq": now_seq - count + 1,
            "now_seq": now_seq,
            "epoch": ns.session.epoch,
            "namespace": ns.name,
            "rows": [list(row) for row in rows],
            "timestamps": (list(timestamps)
                           if timestamps is not None else None),
        })
        for replica in list(self._replicas):
            await replica.events.put(payload)
            self._m_replicated.inc(count)

    async def _op_auth(self, conn, frame, request_id) -> None:
        """Authenticate this connection into a namespace (or as admin).

        Multi-tenant only; a single-tenant server rejects the op — its
        connections already own the open default namespace.
        """
        if not self.multi_tenant:
            raise ProtocolError(
                "bad_request", "this server has no tenants configured"
            )
        if frame.get("admin"):
            self.tenants.authenticate_admin(frame.get("token"))
            conn.admin = True
            self._send(conn, ok_frame("auth", request_id, admin=True,
                                      role=self.role))
            return
        name = frame.get("namespace")
        self.tenants.authenticate(name, frame.get("token"))
        ns = self.tenants.namespace(name)
        conn.namespace = ns
        self._send(conn, ok_frame(
            "auth", request_id, namespace=ns.name,
            epoch=ns.session.epoch,
            now_seq=ns.session.monitor.manager.now_seq,
        ))

    async def _op_register(self, conn, frame, request_id) -> None:
        ns = self._require_namespace(conn)
        max_queries = ns.spec.quotas.max_queries
        if max_queries is not None \
                and len(ns.session.queries()) >= max_queries:
            raise self._quota_reject(
                ns, "max_queries",
                f"namespace {ns.name!r} already has {max_queries} "
                f"registered queries",
                limit=max_queries,
            )
        handle_id = ns.session.register(
            frame.get("scoring"), frame.get("k"), frame.get("n"),
        )
        self._refresh_ns_gauges(ns)
        self._send(conn, ok_frame("register", request_id, query=handle_id))

    async def _op_unregister(self, conn, frame, request_id) -> None:
        ns = self._require_namespace(conn)
        handle_id = frame.get("query")
        ns.session.unregister(handle_id)
        # Subscribers of a query that just vanished get a closed event
        # (subscribe-then-unregister must not strand them waiting).
        subscribers = self._subscribers.pop((ns.name, handle_id), set())
        closed = encode_frame({"event": "closed", "query": handle_id})
        # All registry bookkeeping completes before the first await so
        # a handler scheduled at the put() below never sees a
        # half-unregistered query.
        for subscriber in subscribers:
            subscriber.subscriptions.discard(handle_id)
            subscriber.lagged.discard(handle_id)
            self._m_subscribers.dec()
        ns.subscriptions -= len(subscribers)
        self._refresh_ns_gauges(ns)
        for subscriber in subscribers:
            await subscriber.events.put(closed)
        self._send(conn, ok_frame("unregister", request_id,
                                  query=handle_id))

    async def _op_snapshot(self, conn, frame, request_id) -> None:
        ns = self._require_namespace(conn)
        handle_id = frame.get("query")
        if handle_id is not None:
            answer = ns.session.results(handle_id)
        else:
            answer = ns.session.snapshot(
                frame.get("scoring"), frame.get("k"), frame.get("n"),
            )
        self._send(conn, ok_frame(
            "snapshot", request_id,
            tick=ns.session.monitor.manager.now_seq,
            answer=[pair_to_wire(p) for p in answer],
        ))

    async def _op_subscribe(self, conn, frame, request_id) -> None:
        ns = self._require_namespace(conn)
        handle_id = frame.get("query")
        record = ns.session.record(handle_id)  # raises unknown_query
        if handle_id not in conn.subscriptions:
            max_subscribers = ns.spec.quotas.max_subscribers
            if max_subscribers is not None \
                    and ns.subscriptions >= max_subscribers:
                raise self._quota_reject(
                    ns, "max_subscribers",
                    f"namespace {ns.name!r} already has "
                    f"{max_subscribers} active subscriptions",
                    limit=max_subscribers,
                )
            conn.subscriptions.add(handle_id)
            self._subscribers.setdefault(
                (ns.name, handle_id), set()
            ).add(conn)
            ns.subscriptions += 1
            self._m_subscribers.inc()
        # The baseline answer ships in the ack: deltas replayed on top
        # of it reproduce results() at every later tick.
        answer = ns.session.results(record.handle_id)
        self._send(conn, ok_frame(
            "subscribe", request_id, query=handle_id,
            tick=ns.session.monitor.manager.now_seq,
            answer=[pair_to_wire(p) for p in answer],
        ))

    async def _op_unsubscribe(self, conn, frame, request_id) -> None:
        ns = self._require_namespace(conn)
        handle_id = frame.get("query")
        if handle_id in conn.subscriptions:
            conn.subscriptions.discard(handle_id)
            conn.lagged.discard(handle_id)
            subscribers = self._subscribers.get((ns.name, handle_id))
            if subscribers is not None:
                subscribers.discard(conn)
                if not subscribers:
                    del self._subscribers[(ns.name, handle_id)]
            ns.subscriptions -= 1
            self._m_subscribers.dec()
        self._send(conn, ok_frame("unsubscribe", request_id,
                                  query=handle_id))

    def _checkpoint_document(self, ns: Namespace) -> tuple[str, dict]:
        # The snapshot happens synchronously on the event loop (so no
        # ingest can interleave and the document is tick-consistent);
        # only the blocking file write leaves the loop.
        try:
            return checkpoint_module.checkpoint_document(ns.session)
        except ReproError as exc:
            raise ProtocolError("checkpoint_failed", str(exc)) from exc

    async def _op_checkpoint(self, conn, frame, request_id) -> None:
        scope = frame.get("scope")
        if scope not in (None, "all"):
            raise ProtocolError("bad_request",
                                "'scope' must be \"all\" when present")
        if scope == "all":
            await self._checkpoint_all(conn, frame, request_id)
            return
        ns = self._require_namespace(conn)
        ship = bool(frame.get("ship"))
        default_name = f"{ns.name}.ckpt" if self.multi_tenant \
            else "checkpoint.json"
        path = frame.get("path", default_name)
        if not ship and (not isinstance(path, str) or not path):
            raise ProtocolError("bad_request",
                                "'path' must be a non-empty string")
        if not ship and self.multi_tenant and os.path.basename(path) != path:
            # Tenants name their checkpoint inside the server's
            # checkpoint dir; absolute/relative paths would let one
            # namespace overwrite another's files (or anything else).
            raise ProtocolError(
                "bad_request",
                "'path' must be a bare file name on a multi-tenant "
                "server (it lands in the server's checkpoint dir)",
            )
        if self.checkpoint_dir is not None and not os.path.isabs(path):
            path = os.path.join(self.checkpoint_dir, path)
        start = perf_counter()
        document, meta = self._checkpoint_document(ns)
        if ship:
            # Bootstrap path for standbys: the document travels inline
            # on this connection instead of touching disk.  Issued right
            # after ``replicate`` on the same connection, it is
            # guaranteed consistent with the replication feed — both
            # serialize on the event loop.
            elapsed = perf_counter() - start
            meta["seconds"] = elapsed
            self._send(conn, ok_frame("checkpoint", request_id,
                                      state=json.loads(document), **meta))
            return
        loop = asyncio.get_running_loop()
        try:
            await loop.run_in_executor(
                None,
                checkpoint_module.write_checkpoint_document,
                document, path, ns.session.epoch,
            )
        except OSError as exc:
            raise ProtocolError("checkpoint_failed",
                                f"cannot write {path!r}: {exc}") from exc
        elapsed = perf_counter() - start
        self._m_checkpoint_seconds.observe(elapsed)
        meta["path"] = path
        meta["seconds"] = elapsed
        self._send(conn, ok_frame("checkpoint", request_id, **meta))

    async def _checkpoint_all(self, conn, frame, request_id) -> None:
        """Checkpoint every live namespace (admin only on multi-tenant
        servers): per-namespace ``<ns>.ckpt`` files in the checkpoint
        dir, or — with ``ship`` — an inline ``states`` map (the
        multi-tenant standby bootstrap)."""
        if self.multi_tenant:
            self._require_admin(conn, "checkpoint scope \"all\"")
        ship = bool(frame.get("ship"))
        namespaces = list(self.tenants.namespaces())
        start = perf_counter()
        documents = [
            (ns, *self._checkpoint_document(ns)) for ns in namespaces
        ]
        if ship:
            states = {ns.name: json.loads(doc) for ns, doc, _ in documents}
            self._send(conn, ok_frame(
                "checkpoint", request_id, states=states,
                namespaces=sorted(states),
                seconds=perf_counter() - start,
            ))
            return
        if self.checkpoint_dir is None:
            raise ProtocolError(
                "bad_request",
                "checkpoint scope \"all\" needs the server started "
                "with a checkpoint dir (repro serve --checkpoint-dir)",
            )
        loop = asyncio.get_running_loop()
        saved = {}
        for ns, document, meta in documents:
            path = os.path.join(self.checkpoint_dir, f"{ns.name}.ckpt")
            try:
                await loop.run_in_executor(
                    None,
                    checkpoint_module.write_checkpoint_document,
                    document, path, ns.session.epoch,
                )
            except OSError as exc:
                raise ProtocolError(
                    "checkpoint_failed",
                    f"cannot write {path!r}: {exc}",
                ) from exc
            meta["path"] = path
            saved[ns.name] = meta
        elapsed = perf_counter() - start
        self._m_checkpoint_seconds.observe(elapsed)
        self._send(conn, ok_frame(
            "checkpoint", request_id, namespaces=sorted(saved),
            saved=saved, seconds=elapsed,
        ))

    async def _op_replicate(self, conn, frame, request_id) -> None:
        """Register this connection as a replication subscriber: every
        batch admitted from now on is mirrored to it as a ``rows``
        event.  The ack carries ``now_seq`` so the standby knows where
        the feed starts relative to the checkpoint it bootstraps from.
        """
        if self.multi_tenant:
            self._require_admin(conn, "replicate")
        self._replicas.add(conn)
        payload: dict = {"role": self.role}
        default = self._default_namespace()
        if not self.multi_tenant and default is not None:
            payload["now_seq"] = default.session.monitor.manager.now_seq
            payload["epoch"] = default.session.epoch
        else:
            payload["namespaces"] = {
                ns.name: {
                    "now_seq": ns.session.monitor.manager.now_seq,
                    "epoch": ns.session.epoch,
                }
                for ns in self.tenants.namespaces()
            }
        self._send(conn, ok_frame("replicate", request_id, **payload))

    async def _op_promote(self, conn, frame, request_id) -> None:
        """Promote a standby to primary: stop tailing, bump the fencing
        epoch, start accepting ingest.  The epoch bump fences the old
        primary — its checkpoints now carry a lower epoch and
        :func:`~repro.serve.checkpoint.write_checkpoint_document`
        refuses to let them clobber the promoted lineage's files.
        """
        if self.multi_tenant:
            self._require_admin(conn, "promote")
        if self.role == "primary":
            raise ProtocolError("bad_request",
                                "this server is already the primary")
        if self.standby is not None:
            self.standby.stop()
        for ns in self.tenants.namespaces():
            ns.session.epoch += 1
        self.role = "primary"
        payload: dict = {"role": self.role}
        default = self._default_namespace()
        if not self.multi_tenant and default is not None:
            payload["epoch"] = default.session.epoch
            payload["now_seq"] = default.session.monitor.manager.now_seq
        else:
            payload["namespaces"] = {
                ns.name: {
                    "epoch": ns.session.epoch,
                    "now_seq": ns.session.monitor.manager.now_seq,
                }
                for ns in self.tenants.namespaces()
            }
        self._send(conn, ok_frame("promote", request_id, **payload))

    async def _op_epoch(self, conn, frame, request_id) -> None:
        """Cheap liveness/catch-up probe: role, fencing epoch, and the
        engine's current sequence number (what failover drills poll).

        On a multi-tenant server an authenticated connection gets its
        own namespace's epoch/seq; an admin additionally gets the full
        per-namespace map; an unauthenticated probe learns only the
        role (liveness without tenant enumeration).
        """
        payload: dict = {"role": self.role}
        if conn.namespace is not None:
            payload["epoch"] = conn.namespace.session.epoch
            payload["now_seq"] = \
                conn.namespace.session.monitor.manager.now_seq
            if self.multi_tenant:
                payload["namespace"] = conn.namespace.name
        if self.multi_tenant and conn.admin:
            payload["namespaces"] = {
                ns.name: {
                    "epoch": ns.session.epoch,
                    "now_seq": ns.session.monitor.manager.now_seq,
                }
                for ns in self.tenants.namespaces()
            }
        if self.standby is not None:
            payload["standby"] = self.standby.stats()
        self._send(conn, ok_frame("epoch", request_id, **payload))

    async def _op_stats(self, conn, frame, request_id) -> None:
        ns = None if conn.admin and conn.namespace is None \
            else self._require_namespace(conn)
        payload = ns.session.stats() if ns is not None else {}
        payload["serve"] = {
            "protocol": PROTOCOL_VERSION,
            "role": self.role,
            "epoch": ns.session.epoch if ns is not None else None,
            "backpressure": self.backpressure,
            "queue_depth": self.queue_depth,
            "connections": len(self._connections),
            "subscriptions": sum(
                len(s) for s in self._subscribers.values()
            ),
            "replicas": len(self._replicas),
            "obs_port": self.obs.port if self.obs is not None else None,
            "tracing": bool(self.spans.enabled),
        }
        if self.multi_tenant:
            tenancy: dict = {}
            if ns is not None:
                tenancy.update(
                    namespace=ns.name,
                    quotas=ns.spec.quotas.spec(),
                    subscriptions=ns.subscriptions,
                )
            if conn.admin:
                tenancy["namespaces"] = {
                    other.name: {
                        "window_size": len(other.session.monitor.manager),
                        "now_seq": other.session.monitor.manager.now_seq,
                        "epoch": other.session.epoch,
                        "queries": len(other.session.queries()),
                        "subscriptions": other.subscriptions,
                    }
                    for other in self.tenants.namespaces()
                }
                if self.mux is not None:
                    tenancy["mux"] = self.mux.stats()
            payload["serve"]["tenancy"] = tenancy
        if self.standby is not None:
            payload["serve"]["standby"] = self.standby.stats()
        if frame.get("metrics"):
            payload["metrics"] = self.registry.snapshot()
        self._send(conn, ok_frame("stats", request_id, stats=payload))

    async def _op_shutdown(self, conn, frame, request_id) -> None:
        if self.multi_tenant:
            self._require_admin(conn, "shutdown")
        self._send(conn, ok_frame("shutdown", request_id))
        try:
            await conn.writer.drain()
        except (ConnectionError, OSError):
            pass
        self._spawn(self.stop())


class BackgroundServer:
    """A :class:`ServeServer` on a daemon thread with its own event loop.

    The process-embedding used by tests, the benchmark and notebook
    experiments::

        with BackgroundServer(session) as server:
            client = ServeClient(port=server.port)

    ``repro serve`` itself runs the server on the main thread instead
    (signal handlers only work there).
    """

    def __init__(self, session: ServerMonitor, **server_kwargs) -> None:
        self.server = ServeServer(session, **server_kwargs)
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def obs_port(self) -> Optional[int]:
        """The sidecar's resolved port (``None`` when not started)."""
        return self.server.obs_port

    def start(self) -> "BackgroundServer":
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=10.0):
            raise TimeoutError("server did not start within 10s")
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def _run(self) -> None:
        async def main() -> None:
            try:
                await self.server.start()
            except BaseException as exc:
                self._startup_error = exc
                self._started.set()
                raise
            self._loop = asyncio.get_running_loop()
            self._started.set()
            await self.server.serve_until_stopped()

        try:
            asyncio.run(main())
        except BaseException:
            if not self._started.is_set():
                self._started.set()

    def stop(self) -> None:
        if self._loop is not None and self._thread is not None \
                and self._thread.is_alive():
            future = asyncio.run_coroutine_threadsafe(
                self.server.stop(), self._loop
            )
            try:
                future.result(timeout=10.0)
            except (TimeoutError, asyncio.CancelledError):
                pass
        if self._thread is not None:
            self._thread.join(timeout=10.0)

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
