"""The serving session layer: one :class:`ServerMonitor` per server.

Sits between the wire (:mod:`repro.serve.server`) and the engine
(:class:`~repro.core.monitor.TopKPairsMonitor`):

* owns the monitor plus a **query registry** keyed by client-visible
  string handles (``"q1"``, ``"q2"``, ...) — clients never see
  :class:`~repro.core.monitor.QueryHandle` objects;
* names scoring functions by the CLI's factory vocabulary (``closest`` /
  ``furthest`` / ``similar`` / ``dissimilar``) and shares one function
  *instance* per name, so queries registered over the wire land in the
  same skyband group exactly like library callers sharing an instance;
* extracts per-tick **answer deltas**: every continuous query gets an
  ``on_change`` listener (via
  :meth:`~repro.core.monitor.TopKPairsMonitor.set_on_change`) that
  stamps the entered/left pairs with the tick they happened on; the
  server drains them after each ingest and fans them out to
  subscribers;
* carries **trace context** through the engine: a traced ingest runs
  under a ``tick`` span (:mod:`repro.obs.spans`) and stamps its trace id
  onto every :class:`DeltaEvent` the tick produced — the listener fires
  synchronously inside ``extend``, so the active trace is plain
  call-stack state, no thread-locals needed.

Everything here is synchronous and asyncio-free, so the whole session
layer is testable without a socket and reusable by the checkpoint
machinery.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.core.monitor import QueryHandle, TopKPairsMonitor
from repro.core.pair import Pair
from repro.exceptions import ProtocolError
from repro.obs.spans import NULL_SPANS
from repro.scoring.base import ScoringFunction
from repro.scoring.library import (
    k_closest_pairs,
    k_furthest_pairs,
    top_k_dissimilar_pairs,
    top_k_similar_pairs,
)

__all__ = ["DeltaEvent", "QueryRecord", "SCORING_NAMES", "ServerMonitor"]

#: wire-level scoring-function vocabulary -> factory (paper s1..s4).
SCORING_NAMES = {
    "closest": k_closest_pairs,
    "furthest": k_furthest_pairs,
    "similar": top_k_similar_pairs,
    "dissimilar": top_k_dissimilar_pairs,
}


class DeltaEvent:
    """One continuous query's answer change at one stream tick.

    ``trace`` is the id of the traced ingest that caused the change
    (``None`` for untraced ingests) — the hand-off that lets one client
    request be followed to every subscriber it touched.
    """

    __slots__ = ("query", "tick", "entered", "left", "trace")

    def __init__(self, query: str, tick: int,
                 entered: list[Pair], left: list[Pair],
                 trace: Optional[str] = None) -> None:
        self.query = query
        self.tick = tick
        self.entered = entered
        self.left = left
        self.trace = trace

    def __repr__(self) -> str:
        return (
            f"DeltaEvent(query={self.query!r}, tick={self.tick}, "
            f"+{len(self.entered)}/-{len(self.left)})"
        )


class QueryRecord:
    """Registry entry: the wire-visible spec plus the engine handle."""

    __slots__ = ("handle_id", "scoring", "k", "n", "handle")

    def __init__(self, handle_id: str, scoring: str, k: int, n: int,
                 handle: QueryHandle) -> None:
        self.handle_id = handle_id
        self.scoring = scoring
        self.k = k
        self.n = n
        self.handle = handle

    def spec(self) -> dict:
        """The JSON-able registration spec (checkpoint + stats view)."""
        return {
            "handle": self.handle_id,
            "scoring": self.scoring,
            "k": self.k,
            "n": self.n,
        }


class ServerMonitor:
    """A :class:`TopKPairsMonitor` wrapped for network serving."""

    def __init__(
        self,
        window_size: int,
        num_attributes: int,
        *,
        time_horizon: Optional[float] = None,
        strategy: str = "auto",
        seed: int = 0,
        audit: Optional[bool] = None,
        recorder=None,
        spans=None,
    ) -> None:
        # The constructor arguments are kept verbatim: they are the
        # "monitor" section of every checkpoint this session writes.
        self.config = {
            "window_size": window_size,
            "num_attributes": num_attributes,
            "time_horizon": time_horizon,
            "strategy": strategy,
            "seed": seed,
        }
        self.monitor = TopKPairsMonitor(
            window_size, num_attributes, strategy=strategy,
            time_horizon=time_horizon, seed=seed, audit=audit,
            recorder=recorder,
        )
        #: the span recorder traced ingests report to (the server adopts
        #: this instance so op spans and tick spans share one ring)
        self.spans = spans if spans is not None else NULL_SPANS
        #: the tenancy namespace this session serves (multi-tenant
        #: servers set it; checkpoints record it so a restore can route
        #: the document back to its namespace).  ``"default"`` matches
        #: single-tenant servers and pre-tenancy checkpoints.
        self.namespace = "default"
        #: fencing epoch (monotonic across failovers): checkpoints carry
        #: it in their header, a promoted standby bumps it by one, and
        #: checkpoint writers refuse to clobber a higher-epoch file — the
        #: split-brain guard for the warm-standby protocol.
        self.epoch = 0
        self._scoring_instances: dict[str, ScoringFunction] = {}
        self._queries: dict[str, QueryRecord] = {}
        self._next_handle = 1
        self._pending_deltas: list[DeltaEvent] = []
        self._active_trace: Optional[str] = None

    # ------------------------------------------------------------------
    # query registry
    # ------------------------------------------------------------------
    def scoring_for(self, name: str) -> ScoringFunction:
        """The session-wide shared instance for a named scoring function
        (shared instances keep wire queries in one skyband group)."""
        if name not in SCORING_NAMES:
            raise ProtocolError(
                "bad_request",
                f"unknown scoring {name!r}; expected one of "
                f"{sorted(SCORING_NAMES)}",
            )
        instance = self._scoring_instances.get(name)
        if instance is None:
            factory = SCORING_NAMES[name]
            instance = factory(self.config["num_attributes"])
            self._scoring_instances[name] = instance
        return instance

    def register(self, scoring: str, k: int, n: Optional[int] = None,
                 *, handle_id: Optional[str] = None) -> str:
        """Register a continuous query; returns its wire handle.

        Registering the same spec twice is allowed and yields two
        independent handles (they share one skyband, so the duplicate is
        cheap) — clients that crash and re-register must never be turned
        away.  ``handle_id`` pins the wire handle explicitly (checkpoint
        restore re-registers queries under their saved names).
        """
        if not isinstance(k, int) or isinstance(k, bool) or k < 1:
            raise ProtocolError("bad_request", f"k must be an int >= 1, got {k!r}")
        if n is not None and (not isinstance(n, int) or isinstance(n, bool)
                              or n < 2):
            raise ProtocolError(
                "bad_request", f"n must be an int >= 2, got {n!r}"
            )
        scoring_fn = self.scoring_for(scoring)
        if handle_id is None:
            handle_id = f"q{self._next_handle}"
            self._next_handle += 1
            while handle_id in self._queries:  # skip pinned handles
                handle_id = f"q{self._next_handle}"
                self._next_handle += 1
        elif handle_id in self._queries:
            raise ProtocolError(
                "bad_request", f"handle {handle_id!r} is already registered"
            )
        handle = self.monitor.register_query(
            scoring_fn, k=k, n=n, continuous=True,
        )
        self.monitor.set_on_change(
            handle, self._make_listener(handle_id)
        )
        record = QueryRecord(
            handle_id, scoring, k,
            n if n is not None else self.config["window_size"], handle,
        )
        self._queries[handle_id] = record
        return handle_id

    def _make_listener(self, handle_id: str):
        def on_change(entered: list[Pair], left: list[Pair]) -> None:
            self._pending_deltas.append(DeltaEvent(
                handle_id, self.monitor.manager.now_seq, entered, left,
                self._active_trace,
            ))
        return on_change

    def unregister(self, handle_id: str) -> None:
        record = self._queries.pop(handle_id, None)
        if record is None:
            raise ProtocolError(
                "unknown_query", f"no registered query {handle_id!r}"
            )
        self.monitor.unregister_query(record.handle)

    def record(self, handle_id: str) -> QueryRecord:
        record = self._queries.get(handle_id)
        if record is None:
            raise ProtocolError(
                "unknown_query", f"no registered query {handle_id!r}"
            )
        return record

    def queries(self) -> list[QueryRecord]:
        """Registered queries in registration order."""
        return list(self._queries.values())

    # ------------------------------------------------------------------
    # ingest + delta extraction
    # ------------------------------------------------------------------
    def ingest(
        self,
        rows: Iterable[Sequence[float]],
        *,
        timestamps: Optional[Iterable[float]] = None,
        trace: Optional[str] = None,
    ) -> tuple[int, int]:
        """Admit a batch of rows; returns ``(ingested, now_seq)``.

        The precise count comes from
        :meth:`~repro.core.monitor.TopKPairsMonitor.extend`'s return
        value — the server acknowledges exactly what entered the stream.
        Answer deltas produced by the ticks accumulate for
        :meth:`drain_deltas`.

        A non-``None`` ``trace`` runs the batch under a ``tick`` span
        and stamps the id onto every delta the ticks produce; the
        untraced path is byte-identical to before tracing existed.
        """
        if trace is None or not self.spans.enabled:
            count = self.monitor.extend(rows, timestamps=timestamps)
            return count, self.monitor.manager.now_seq
        self._active_trace = trace
        span = self.spans.span("tick", trace=trace)
        try:
            with span:
                count = self.monitor.extend(rows, timestamps=timestamps)
                span.attrs["rows"] = count
                span.attrs["now_seq"] = self.monitor.manager.now_seq
        finally:
            self._active_trace = None
        return count, self.monitor.manager.now_seq

    def drain_deltas(self) -> list[DeltaEvent]:
        """The per-tick answer deltas since the last drain (oldest
        first); draining transfers ownership to the caller."""
        deltas = self._pending_deltas
        self._pending_deltas = []
        return deltas

    # ------------------------------------------------------------------
    # answers + diagnostics
    # ------------------------------------------------------------------
    def results(self, handle_id: str) -> list[Pair]:
        """Current answer of a registered query, ascending by score."""
        return self.monitor.results(self.record(handle_id).handle)

    def snapshot(self, scoring: str, k: int,
                 n: Optional[int] = None) -> list[Pair]:
        """One-off snapshot answer (Algorithm 2) for an ad-hoc spec."""
        if not isinstance(k, int) or isinstance(k, bool) or k < 1:
            raise ProtocolError("bad_request", f"k must be an int >= 1, got {k!r}")
        return self.monitor.snapshot_query(self.scoring_for(scoring), k, n)

    def stats(self, *, include_metrics: bool = False) -> dict:
        """Engine stats plus the wire-level query registry."""
        payload = self.monitor.stats(include_metrics=include_metrics)
        payload["queries"] = [record.spec() for record in self.queries()]
        return payload
