"""Warm-standby replication: bootstrap, tail, promote.

A standby is a second ``repro serve`` process that keeps a *hot* copy of
a primary's engine state so failover costs an epoch bump instead of an
``O(N^2)`` replay bootstrap.  The protocol has three moves:

1. **bootstrap** — :func:`connect_standby` opens one synchronous
   connection to the primary and sends ``replicate`` *first*, then
   ``checkpoint`` with ``ship: true``.  Both ops serialize on the
   primary's event loop, so every batch admitted after the checkpoint
   snapshot is guaranteed to arrive on the replication feed — no gap,
   no double-apply window.  The shipped document is restored
   structurally (:func:`~repro.serve.checkpoint.restore_server_monitor`)
   into a fresh session: window, skiplists, skybands, staircases, query
   registry, epoch.
2. **tail** — the bootstrap connection is *detached* from the sync
   client (:meth:`~repro.serve.client.ServeClient.detach`) and adopted
   by a :class:`StandbyTailer` on the standby server's event loop.  The
   tailer applies every ``rows`` event through the ordinary ingest path
   (so the maintainer state stays exactly what the primary computes),
   journals the answer deltas to an optional JSONL delta log, and fans
   them out to the standby's own subscribers.  Events overlapping the
   checkpoint are skipped; a sequence gap, engine desync or epoch
   mismatch raises :class:`~repro.exceptions.ReplicationError` — a
   standby that cannot prove it is byte-identical to the primary must
   not keep serving.
3. **promote** — the ``promote`` op stops the tailer, bumps the fencing
   epoch by one and flips the role to primary.  The old primary's
   checkpoints now carry a stale epoch and
   :func:`~repro.serve.checkpoint.write_checkpoint_document` refuses to
   let them overwrite the promoted lineage's files (the split-brain
   guard).

See docs/serving.md for the failover runbook.
"""

from __future__ import annotations

import asyncio
import json
import socket
from typing import Optional

from repro.exceptions import ReplicationError, ServeError
from repro.serve.checkpoint import restore_server_monitor
from repro.serve.client import ServeClient
from repro.serve.protocol import pair_to_wire
from repro.serve.session import ServerMonitor
from repro.serve.tenancy import DEFAULT_NAMESPACE, NamespaceRegistry

__all__ = ["StandbyTailer", "connect_standby"]


def _append_lines(path: str, text: str) -> None:
    """Blocking JSONL append (runs on the executor, never the loop)."""
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(text)


class StandbyTailer:
    """Applies a primary's replication feed to a restored session.

    Owns the detached bootstrap socket; :meth:`run` adopts it onto the
    running event loop and consumes ``rows`` events until stopped,
    disconnected, or broken.  All engine access happens on the server's
    event loop, so replication applies serialize with client reads the
    same way primary-side ingests do.
    """

    def __init__(
        self,
        session: Optional[ServerMonitor] = None,
        sock: Optional[socket.socket] = None,
        *,
        leftover: bytes = b"",
        pending_events: Optional[list[dict]] = None,
        delta_log: Optional[str] = None,
        primary: str = "?",
        registry: Optional[NamespaceRegistry] = None,
    ) -> None:
        if sock is None:
            raise ServeError("StandbyTailer needs the detached feed socket")
        if session is None and registry is None:
            raise ServeError(
                "StandbyTailer needs a session or a namespace registry"
            )
        #: the single-tenant session (``None`` on a multi-tenant standby,
        #: where ``registry`` routes each feed event to its namespace)
        self.session = session
        #: multi-tenant routing table: ``rows`` events carry a
        #: ``namespace`` field and apply to that namespace's session
        self.registry = registry
        self.delta_log = delta_log
        self.primary = primary
        #: rows behind the primary at the last received event (0 when
        #: fully caught up; the bench reports its maximum as apply lag)
        self.lag_rows = 0
        self.events_applied = 0
        self.rows_applied = 0
        #: set when the feed ended without a stop() — the primary died
        #: or closed; the standby stays alive and promotable
        self.disconnected = False
        #: set when the tailer died on a ReplicationError
        self.error: Optional[str] = None
        self._sock: Optional[socket.socket] = sock
        self._buf = bytearray(leftover)
        self._pending = list(pending_events or ())
        self._server = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._stopped = False
        self._finished = False

    # ------------------------------------------------------------------
    def attach(self, server) -> None:
        """Give the tailer a server to fan replicated deltas out
        through (called by :meth:`ServeServer.start`)."""
        self._server = server

    def stop(self) -> None:
        """Stop tailing: promote and shutdown paths.  Idempotent."""
        self._stopped = True
        if self._writer is not None:
            self._writer.close()
        elif self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def stats(self) -> dict:
        """JSON-able tailer state (the ``epoch`` op and ``stats``
        responses embed this)."""
        payload = {
            "primary": self.primary,
            "applied_seq": (
                self.session.monitor.manager.now_seq
                if self.session is not None else None
            ),
            "events_applied": self.events_applied,
            "rows_applied": self.rows_applied,
            "lag_rows": self.lag_rows,
            "tailing": not (self._stopped or self._finished),
            "disconnected": self.disconnected,
            "error": self.error,
            "delta_log": self.delta_log,
        }
        if self.registry is not None:
            payload["namespaces"] = {
                ns.name: ns.session.monitor.manager.now_seq
                for ns in self.registry.namespaces()
            }
        return payload

    # ------------------------------------------------------------------
    # The tailer is a single task: nothing else writes these attrs, but
    # the RA202 segmentation cannot see that, so the multi-segment
    # mutations live in synchronous helpers (atomic between awaits).
    def _finish(self, *, disconnected: bool = False) -> None:
        self._finished = True
        if disconnected and not self._stopped:
            self.disconnected = True

    def _buffered_line(self) -> Optional[bytes]:
        """Pop one complete line off the byte buffer, if any."""
        newline = self._buf.find(b"\n")
        if newline < 0:
            return None
        line = bytes(self._buf[:newline + 1])
        del self._buf[:newline + 1]
        return line

    def _buffered_feed(self, chunk: bytes) -> None:
        self._buf.extend(chunk)

    def _note_lag(self, session: ServerMonitor, primary_seq: int) -> None:
        self.lag_rows = max(
            0, primary_seq - session.monitor.manager.now_seq
        )

    def _session_for(self, name: str, first: int
                     ) -> Optional[ServerMonitor]:
        """The session a ``rows`` event for namespace ``name`` applies
        to; ``None`` for foreign lanes a single-tenant tailer should
        skip.  A namespace born on the primary *after* bootstrap shows
        up as an unknown name whose feed starts at seq 1 — the registry
        lazily creates it; any other unknown name is a routing bug."""
        if self.registry is None:
            if self.session is None or name != self.session.namespace:
                return None
            return self.session
        ns = self.registry.get(name)
        if ns is not None:
            return ns.session
        if first != 1:
            raise ReplicationError(
                f"feed references unknown namespace {name!r} mid-stream "
                f"(first_seq={first}); the bootstrap checkpoint should "
                f"have covered it"
            )
        try:
            return self.registry.namespace(name).session
        except ServeError as exc:
            raise ReplicationError(
                f"cannot create namespace {name!r} for the replication "
                f"feed: {exc}"
            ) from exc

    # ------------------------------------------------------------------
    async def run(self) -> None:
        """Consume the replication feed until stop, EOF, or error."""
        if self._sock is None:
            return
        try:
            reader, writer = await asyncio.open_connection(sock=self._sock)
        except OSError:
            self._finish(disconnected=True)
            return
        self._writer = writer
        self._sock = None
        try:
            pending, self._pending = self._pending, []
            for event in pending:
                await self._apply(event)
            while not self._stopped:
                line = await self._read_line(reader)
                if line is None:
                    self._finish(disconnected=True)
                    break
                if not line.strip():
                    continue
                try:
                    event = json.loads(line)
                except ValueError as exc:
                    raise ReplicationError(
                        f"replication feed sent invalid JSON: {exc}"
                    ) from exc
                if isinstance(event, dict):
                    await self._apply(event)
        except (ConnectionError, OSError):
            self._finish(disconnected=True)
        except ReplicationError as exc:
            self.error = str(exc)
            raise
        finally:
            self._finish()
            writer.close()

    async def _read_line(self, reader: asyncio.StreamReader
                         ) -> Optional[bytes]:
        """One feed line, honoring bytes left over from the detached
        bootstrap client's buffer; ``None`` on EOF."""
        while True:
            line = self._buffered_line()
            if line is not None:
                return line
            chunk = await reader.read(65536)
            if not chunk:
                return None
            self._buffered_feed(chunk)

    async def _apply(self, event: dict) -> None:
        """Apply one feed frame.  Non-``rows`` events (deltas meant for
        ordinary subscribers, ``bye``) are ignored; ``rows`` events are
        ingested with overlap-skip against what the checkpoint already
        covers, and any other discontinuity is fatal."""
        if event.get("event") != "rows":
            return
        first = event.get("first_seq")
        now = event.get("now_seq")
        rows = event.get("rows")
        if not isinstance(first, int) or not isinstance(now, int) \
                or not isinstance(rows, list):
            raise ReplicationError(
                f"malformed rows event from the primary: {event!r}"
            )
        name = event.get("namespace", DEFAULT_NAMESPACE)
        if not isinstance(name, str) or not name:
            raise ReplicationError(
                f"malformed namespace on rows event: {event!r}"
            )
        session = self._session_for(name, first)
        if session is None:
            return  # another tenant's lane; not ours to apply
        epoch = event.get("epoch")
        if isinstance(epoch, int) and epoch != session.epoch:
            raise ReplicationError(
                f"epoch mismatch: the feed carries epoch {epoch} for "
                f"namespace {name!r} but this standby bootstrapped at "
                f"epoch {session.epoch} — refusing to mix lineages"
            )
        timestamps = event.get("timestamps")
        applied = session.monitor.manager.now_seq
        self._note_lag(session, now)
        if now <= applied:
            return  # the shipped checkpoint already covered this batch
        if first <= applied:
            # Partial overlap with the checkpoint: drop the covered
            # prefix, apply the rest.
            skip = applied - first + 1
            rows = rows[skip:]
            if timestamps is not None:
                timestamps = timestamps[skip:]
            first = applied + 1
        if first != applied + 1:
            raise ReplicationError(
                f"replication gap: namespace {name!r} applied up to seq "
                f"{applied} but the next event starts at seq {first}"
            )
        count, now_seq = session.ingest(rows, timestamps=timestamps)
        self.events_applied += 1
        self.rows_applied += count
        if now_seq != now:
            raise ReplicationError(
                f"replication desync: the primary reached seq {now} "
                f"for namespace {name!r} but this standby reached seq "
                f"{now_seq} applying the same batch"
            )
        deltas = session.drain_deltas()
        if self.delta_log is not None and deltas:
            lines = []
            for delta in deltas:
                entry = {
                    "query": delta.query,
                    "tick": delta.tick,
                    "entered": [pair_to_wire(p) for p in delta.entered],
                    "left": [pair_to_wire(p) for p in delta.left],
                    "epoch": session.epoch,
                }
                if self.registry is not None:
                    entry["namespace"] = name
                lines.append(
                    json.dumps(entry, separators=(",", ":")) + "\n"
                )
            text = "".join(lines)
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(
                None, _append_lines, self.delta_log, text,
            )
        if self._server is not None:
            target = self._server.tenants.get(name)
            if target is not None and target.session is session:
                await self._server._fan_out_delta_list(target, deltas)
        self._note_lag(session, now)


def connect_standby(
    host: str,
    port: int,
    *,
    mode: str = "structural",
    audit: Optional[bool] = None,
    recorder=None,
    delta_log: Optional[str] = None,
    timeout: float = 10.0,
    registry: Optional[NamespaceRegistry] = None,
    admin_token: Optional[str] = None,
):
    """Bootstrap a warm standby from a running primary.

    Subscribes to the replication feed *before* requesting the shipped
    checkpoint (both on one connection, so the primary's event loop
    serializes them): every batch admitted after the snapshot is on the
    feed, and batches the snapshot already covers are skipped by the
    tailer's overlap check.

    Single-tenant primary: returns ``(session, tailer)`` — the restored
    :class:`~repro.serve.session.ServerMonitor` plus a not-yet-running
    :class:`StandbyTailer`; hand both to
    :class:`~repro.serve.server.ServeServer` with ``role="standby"``.

    Multi-tenant primary (its hello carries ``multi_tenant: true``):
    pass the standby's own :class:`NamespaceRegistry` (built from the
    same tenants file) plus the primary's admin token — ``replicate``
    and ``checkpoint`` are admin ops there.  Every namespace document
    in the shipped ``states`` map is restored and installed into the
    registry, and the returned ``(registry, tailer)`` pair plugs into
    ``ServeServer(tenants=registry, role="standby", standby=tailer)``.
    Namespaces born on the primary *after* bootstrap are created lazily
    by the tailer through the registry's session factory.
    """
    client = ServeClient(host=host, port=port, timeout=timeout)
    try:
        hello = client.hello or {}
        multi = bool(hello.get("multi_tenant"))
        if multi:
            if registry is None:
                raise ServeError(
                    "the primary is multi-tenant; pass the standby's "
                    "namespace registry (and the primary's admin token) "
                    "to bootstrap every namespace"
                )
            token = admin_token if admin_token is not None \
                else registry.admin_token
            client.auth(token=token, admin=True)
            client.replicate()
            reply = client.checkpoint(ship=True, scope="all")
            states = reply.get("states")
            if not isinstance(states, dict):
                raise ServeError(
                    "primary did not ship a per-namespace states map"
                )
            for name in sorted(states):
                state = states[name]
                if not isinstance(state, dict):
                    raise ServeError(
                        f"namespace {name!r} shipped a malformed "
                        f"checkpoint state document"
                    )
                session = restore_server_monitor(
                    state, mode=mode, audit=audit, recorder=recorder,
                )
                if session.namespace != name:
                    raise ReplicationError(
                        f"shipped state keyed {name!r} embeds namespace "
                        f"{session.namespace!r} — refusing the "
                        f"misrouted document"
                    )
                registry.install(name, session)
            restored = registry
        else:
            if registry is not None:
                raise ServeError(
                    "a namespace registry was supplied but the primary "
                    "is single-tenant; bootstrap it without one"
                )
            client.replicate()
            reply = client.checkpoint(ship=True)
            state = reply.get("state")
            if not isinstance(state, dict):
                raise ServeError(
                    "primary did not ship a checkpoint state document"
                )
            restored = restore_server_monitor(
                state, mode=mode, audit=audit, recorder=recorder,
            )
    except BaseException:
        client.close()
        raise
    sock, leftover, events = client.detach()
    tailer = StandbyTailer(
        None if multi else restored,
        sock,
        leftover=leftover,
        pending_events=events,
        delta_log=delta_log,
        primary=f"{host}:{port}",
        registry=registry if multi else None,
    )
    return restored, tailer
