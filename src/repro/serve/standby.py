"""Warm-standby replication: bootstrap, tail, promote.

A standby is a second ``repro serve`` process that keeps a *hot* copy of
a primary's engine state so failover costs an epoch bump instead of an
``O(N^2)`` replay bootstrap.  The protocol has three moves:

1. **bootstrap** — :func:`connect_standby` opens one synchronous
   connection to the primary and sends ``replicate`` *first*, then
   ``checkpoint`` with ``ship: true``.  Both ops serialize on the
   primary's event loop, so every batch admitted after the checkpoint
   snapshot is guaranteed to arrive on the replication feed — no gap,
   no double-apply window.  The shipped document is restored
   structurally (:func:`~repro.serve.checkpoint.restore_server_monitor`)
   into a fresh session: window, skiplists, skybands, staircases, query
   registry, epoch.
2. **tail** — the bootstrap connection is *detached* from the sync
   client (:meth:`~repro.serve.client.ServeClient.detach`) and adopted
   by a :class:`StandbyTailer` on the standby server's event loop.  The
   tailer applies every ``rows`` event through the ordinary ingest path
   (so the maintainer state stays exactly what the primary computes),
   journals the answer deltas to an optional JSONL delta log, and fans
   them out to the standby's own subscribers.  Events overlapping the
   checkpoint are skipped; a sequence gap, engine desync or epoch
   mismatch raises :class:`~repro.exceptions.ReplicationError` — a
   standby that cannot prove it is byte-identical to the primary must
   not keep serving.
3. **promote** — the ``promote`` op stops the tailer, bumps the fencing
   epoch by one and flips the role to primary.  The old primary's
   checkpoints now carry a stale epoch and
   :func:`~repro.serve.checkpoint.write_checkpoint_document` refuses to
   let them overwrite the promoted lineage's files (the split-brain
   guard).

See docs/serving.md for the failover runbook.
"""

from __future__ import annotations

import asyncio
import json
import socket
from typing import Optional

from repro.exceptions import ReplicationError, ServeError
from repro.serve.checkpoint import restore_server_monitor
from repro.serve.client import ServeClient
from repro.serve.protocol import pair_to_wire
from repro.serve.session import ServerMonitor

__all__ = ["StandbyTailer", "connect_standby"]


def _append_lines(path: str, text: str) -> None:
    """Blocking JSONL append (runs on the executor, never the loop)."""
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(text)


class StandbyTailer:
    """Applies a primary's replication feed to a restored session.

    Owns the detached bootstrap socket; :meth:`run` adopts it onto the
    running event loop and consumes ``rows`` events until stopped,
    disconnected, or broken.  All engine access happens on the server's
    event loop, so replication applies serialize with client reads the
    same way primary-side ingests do.
    """

    def __init__(
        self,
        session: ServerMonitor,
        sock: socket.socket,
        *,
        leftover: bytes = b"",
        pending_events: Optional[list[dict]] = None,
        delta_log: Optional[str] = None,
        primary: str = "?",
    ) -> None:
        self.session = session
        self.delta_log = delta_log
        self.primary = primary
        #: rows behind the primary at the last received event (0 when
        #: fully caught up; the bench reports its maximum as apply lag)
        self.lag_rows = 0
        self.events_applied = 0
        self.rows_applied = 0
        #: set when the feed ended without a stop() — the primary died
        #: or closed; the standby stays alive and promotable
        self.disconnected = False
        #: set when the tailer died on a ReplicationError
        self.error: Optional[str] = None
        self._sock: Optional[socket.socket] = sock
        self._buf = bytearray(leftover)
        self._pending = list(pending_events or ())
        self._server = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._stopped = False
        self._finished = False

    # ------------------------------------------------------------------
    def attach(self, server) -> None:
        """Give the tailer a server to fan replicated deltas out
        through (called by :meth:`ServeServer.start`)."""
        self._server = server

    def stop(self) -> None:
        """Stop tailing: promote and shutdown paths.  Idempotent."""
        self._stopped = True
        if self._writer is not None:
            self._writer.close()
        elif self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def stats(self) -> dict:
        """JSON-able tailer state (the ``epoch`` op and ``stats``
        responses embed this)."""
        return {
            "primary": self.primary,
            "applied_seq": self.session.monitor.manager.now_seq,
            "events_applied": self.events_applied,
            "rows_applied": self.rows_applied,
            "lag_rows": self.lag_rows,
            "tailing": not (self._stopped or self._finished),
            "disconnected": self.disconnected,
            "error": self.error,
            "delta_log": self.delta_log,
        }

    # ------------------------------------------------------------------
    # The tailer is a single task: nothing else writes these attrs, but
    # the RA202 segmentation cannot see that, so the multi-segment
    # mutations live in synchronous helpers (atomic between awaits).
    def _finish(self, *, disconnected: bool = False) -> None:
        self._finished = True
        if disconnected and not self._stopped:
            self.disconnected = True

    def _buffered_line(self) -> Optional[bytes]:
        """Pop one complete line off the byte buffer, if any."""
        newline = self._buf.find(b"\n")
        if newline < 0:
            return None
        line = bytes(self._buf[:newline + 1])
        del self._buf[:newline + 1]
        return line

    def _buffered_feed(self, chunk: bytes) -> None:
        self._buf.extend(chunk)

    def _note_lag(self, primary_seq: int) -> None:
        self.lag_rows = max(
            0, primary_seq - self.session.monitor.manager.now_seq
        )

    # ------------------------------------------------------------------
    async def run(self) -> None:
        """Consume the replication feed until stop, EOF, or error."""
        if self._sock is None:
            return
        try:
            reader, writer = await asyncio.open_connection(sock=self._sock)
        except OSError:
            self._finish(disconnected=True)
            return
        self._writer = writer
        self._sock = None
        try:
            pending, self._pending = self._pending, []
            for event in pending:
                await self._apply(event)
            while not self._stopped:
                line = await self._read_line(reader)
                if line is None:
                    self._finish(disconnected=True)
                    break
                if not line.strip():
                    continue
                try:
                    event = json.loads(line)
                except ValueError as exc:
                    raise ReplicationError(
                        f"replication feed sent invalid JSON: {exc}"
                    ) from exc
                if isinstance(event, dict):
                    await self._apply(event)
        except (ConnectionError, OSError):
            self._finish(disconnected=True)
        except ReplicationError as exc:
            self.error = str(exc)
            raise
        finally:
            self._finish()
            writer.close()

    async def _read_line(self, reader: asyncio.StreamReader
                         ) -> Optional[bytes]:
        """One feed line, honoring bytes left over from the detached
        bootstrap client's buffer; ``None`` on EOF."""
        while True:
            line = self._buffered_line()
            if line is not None:
                return line
            chunk = await reader.read(65536)
            if not chunk:
                return None
            self._buffered_feed(chunk)

    async def _apply(self, event: dict) -> None:
        """Apply one feed frame.  Non-``rows`` events (deltas meant for
        ordinary subscribers, ``bye``) are ignored; ``rows`` events are
        ingested with overlap-skip against what the checkpoint already
        covers, and any other discontinuity is fatal."""
        if event.get("event") != "rows":
            return
        first = event.get("first_seq")
        now = event.get("now_seq")
        rows = event.get("rows")
        if not isinstance(first, int) or not isinstance(now, int) \
                or not isinstance(rows, list):
            raise ReplicationError(
                f"malformed rows event from the primary: {event!r}"
            )
        epoch = event.get("epoch")
        if isinstance(epoch, int) and epoch != self.session.epoch:
            raise ReplicationError(
                f"epoch mismatch: the feed carries epoch {epoch} but "
                f"this standby bootstrapped at epoch "
                f"{self.session.epoch} — refusing to mix lineages"
            )
        timestamps = event.get("timestamps")
        applied = self.session.monitor.manager.now_seq
        self._note_lag(now)
        if now <= applied:
            return  # the shipped checkpoint already covered this batch
        if first <= applied:
            # Partial overlap with the checkpoint: drop the covered
            # prefix, apply the rest.
            skip = applied - first + 1
            rows = rows[skip:]
            if timestamps is not None:
                timestamps = timestamps[skip:]
            first = applied + 1
        if first != applied + 1:
            raise ReplicationError(
                f"replication gap: standby applied up to seq {applied} "
                f"but the next event starts at seq {first}"
            )
        count, now_seq = self.session.ingest(rows, timestamps=timestamps)
        self.events_applied += 1
        self.rows_applied += count
        if now_seq != now:
            raise ReplicationError(
                f"replication desync: the primary reached seq {now} "
                f"but this standby reached seq {now_seq} applying the "
                f"same batch"
            )
        deltas = self.session.drain_deltas()
        if self.delta_log is not None and deltas:
            text = "".join(
                json.dumps({
                    "query": delta.query,
                    "tick": delta.tick,
                    "entered": [pair_to_wire(p) for p in delta.entered],
                    "left": [pair_to_wire(p) for p in delta.left],
                    "epoch": self.session.epoch,
                }, separators=(",", ":")) + "\n"
                for delta in deltas
            )
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(
                None, _append_lines, self.delta_log, text,
            )
        if self._server is not None:
            await self._server._fan_out_delta_list(deltas)
        self._note_lag(now)


def connect_standby(
    host: str,
    port: int,
    *,
    mode: str = "structural",
    audit: Optional[bool] = None,
    recorder=None,
    delta_log: Optional[str] = None,
    timeout: float = 10.0,
) -> tuple[ServerMonitor, StandbyTailer]:
    """Bootstrap a warm standby from a running primary.

    Subscribes to the replication feed *before* requesting the shipped
    checkpoint (both on one connection, so the primary's event loop
    serializes them): every batch admitted after the snapshot is on the
    feed, and batches the snapshot already covers are skipped by the
    tailer's overlap check.  Returns the restored session plus a
    not-yet-running :class:`StandbyTailer`; hand both to
    :class:`~repro.serve.server.ServeServer` with ``role="standby"``.
    """
    client = ServeClient(host=host, port=port, timeout=timeout)
    try:
        client.replicate()
        reply = client.checkpoint(ship=True)
        state = reply.get("state")
        if not isinstance(state, dict):
            raise ServeError(
                "primary did not ship a checkpoint state document"
            )
        session = restore_server_monitor(
            state, mode=mode, audit=audit, recorder=recorder,
        )
    except BaseException:
        client.close()
        raise
    sock, leftover, events = client.detach()
    tailer = StandbyTailer(
        session, sock,
        leftover=leftover,
        pending_events=events,
        delta_log=delta_log,
        primary=f"{host}:{port}",
    )
    return session, tailer
