"""Multi-tenant namespaces: auth, quotas, fair scheduling.

One ``repro serve`` process can host many *namespaces*, each owning a
fully isolated :class:`~repro.serve.session.ServerMonitor` — its own
sliding window, query registry, skyband groups and fencing epoch.  The
shape follows the publish/subscribe framing of the top-k literature
(PAPERS.md): many clients, one stream engine per client state, and the
per-client state kept separable so a later PR can shard it across
nodes.  Three pieces live here:

* :class:`NamespaceRegistry` — tenant specs (bearer token + quotas)
  loaded from a TOML/JSON file (:func:`load_tenants_file`), lazy
  session creation through a caller-supplied factory, constant-time
  token checks (:func:`hmac.compare_digest`), and hot-reload hooks the
  server drives from SIGHUP;
* :class:`TokenBucket` / :class:`TenantQuotas` — per-namespace limits:
  window objects, registered queries, subscribers, and an ingest
  rows/sec token bucket whose partial grants give ingest the exact
  ``Monitor.extend``-style "prefix admitted" semantics;
* :class:`FairMultiplexer` — round-robin tick scheduling over ready
  namespaces with at most one in-flight tick per namespace and a small
  bounded per-namespace submit queue, so one tenant's heavy ingest or
  slow subscribers (which stall its fan-out under the ``block``
  policy) cannot head-of-line-block every other tenant.

Everything here is engine-agnostic: the registry never imports the
server, and the multiplexer schedules opaque thunks — both are testable
without a socket (tests/serve/test_tenancy.py).
"""

from __future__ import annotations

import asyncio
import hashlib
import hmac
import json
import re
import time
from collections import deque
from typing import Callable, Iterator, Optional

from repro.exceptions import ProtocolError, ServeError, TenantConfigError
from repro.serve.session import ServerMonitor

__all__ = [
    "DEFAULT_NAMESPACE",
    "FairMultiplexer",
    "Namespace",
    "NamespaceRegistry",
    "TenantQuotas",
    "TenantSpec",
    "TokenBucket",
    "load_tenants_file",
    "save_tenants_file",
    "valid_namespace",
]

#: the namespace a single-tenant server serves (and the one rows events
#: without a ``namespace`` field belong to — pre-tenancy compatibility).
DEFAULT_NAMESPACE = "default"

#: namespace names become checkpoint file names (``<ns>.ckpt``) and
#: metric label values, so they must start with an alphanumeric (no
#: ``.``/``..`` traversal) and stay shell- and URL-safe.
_NAMESPACE_RE = re.compile(r"^[a-zA-Z0-9][a-zA-Z0-9._-]{0,63}$")

_QUOTA_FIELDS = (
    "max_window_objects",
    "max_queries",
    "max_subscribers",
    "ingest_rows_per_sec",
    "burst_rows",
)


def valid_namespace(name) -> bool:
    """Whether ``name`` is a legal namespace name."""
    return isinstance(name, str) and bool(_NAMESPACE_RE.match(name))


class TokenBucket:
    """A rows/sec rate limiter with whole-row grants.

    The bucket starts full (``burst`` tokens) and refills continuously
    at ``rate`` tokens/sec up to ``burst``.  :meth:`grant` admits as
    many whole rows as the bucket can pay for — possibly fewer than
    requested, possibly zero — so ingest can admit an exact prefix of a
    batch and report the cut, mirroring ``Monitor.extend`` semantics.

    ``clock`` is injectable (tests pin refill boundaries without
    sleeping); the default is :func:`time.monotonic`.
    """

    __slots__ = ("rate", "burst", "tokens", "_last", "_clock")

    def __init__(
        self,
        rate: float,
        burst: Optional[float] = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0:
            raise TenantConfigError(
                f"token bucket rate must be > 0, got {rate!r}"
            )
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else max(rate, 1.0)
        if self.burst < 1.0:
            raise TenantConfigError(
                f"token bucket burst must allow >= 1 row, got {burst!r}"
            )
        self._clock = clock
        self._last = clock()
        self.tokens = self.burst

    def grant(self, requested: int) -> int:
        """Admit up to ``requested`` rows; returns how many (0..n)."""
        if requested <= 0:
            return 0
        now = self._clock()
        elapsed = now - self._last
        self._last = now
        if elapsed > 0:
            self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        granted = min(requested, int(self.tokens))
        self.tokens -= granted
        return granted


class TenantQuotas:
    """Per-namespace resource limits; ``None`` means unlimited."""

    __slots__ = _QUOTA_FIELDS

    def __init__(
        self,
        *,
        max_window_objects: Optional[int] = None,
        max_queries: Optional[int] = None,
        max_subscribers: Optional[int] = None,
        ingest_rows_per_sec: Optional[float] = None,
        burst_rows: Optional[float] = None,
    ) -> None:
        self.max_window_objects = max_window_objects
        self.max_queries = max_queries
        self.max_subscribers = max_subscribers
        self.ingest_rows_per_sec = ingest_rows_per_sec
        self.burst_rows = burst_rows
        for field in ("max_window_objects", "max_queries",
                      "max_subscribers"):
            value = getattr(self, field)
            if value is not None and (
                    not isinstance(value, int) or isinstance(value, bool)
                    or value < 1):
                raise TenantConfigError(
                    f"quota {field} must be an int >= 1, got {value!r}"
                )
        for field in ("ingest_rows_per_sec", "burst_rows"):
            value = getattr(self, field)
            if value is not None and (
                    not isinstance(value, (int, float))
                    or isinstance(value, bool) or value <= 0):
                raise TenantConfigError(
                    f"quota {field} must be a number > 0, got {value!r}"
                )
        if burst_rows is not None and ingest_rows_per_sec is None:
            raise TenantConfigError(
                "quota burst_rows needs ingest_rows_per_sec"
            )

    @classmethod
    def from_spec(cls, spec: dict) -> "TenantQuotas":
        if not isinstance(spec, dict):
            raise TenantConfigError(
                f"quotas must be an object, got {type(spec).__name__}"
            )
        unknown = set(spec) - set(_QUOTA_FIELDS)
        if unknown:
            raise TenantConfigError(
                f"unknown quota field(s) {sorted(unknown)}; expected "
                f"{list(_QUOTA_FIELDS)}"
            )
        return cls(**spec)

    def spec(self) -> dict:
        """The JSON-able quota spec (``None`` fields omitted)."""
        return {
            field: getattr(self, field)
            for field in _QUOTA_FIELDS
            if getattr(self, field) is not None
        }

    def bucket(self, clock: Callable[[], float]) -> Optional[TokenBucket]:
        if self.ingest_rows_per_sec is None:
            return None
        return TokenBucket(
            self.ingest_rows_per_sec, self.burst_rows, clock=clock,
        )


#: the quota set of a single-tenant server: everything unlimited.
UNLIMITED = TenantQuotas()


class TenantSpec:
    """One tenant's declared identity: token, quotas, revocation."""

    __slots__ = ("name", "token", "quotas", "revoked")

    def __init__(self, name: str, token: str,
                 quotas: Optional[TenantQuotas] = None,
                 *, revoked: bool = False) -> None:
        if not valid_namespace(name):
            raise TenantConfigError(
                f"invalid namespace name {name!r} (must match "
                f"{_NAMESPACE_RE.pattern})"
            )
        if not isinstance(token, str) or len(token) < 8:
            raise TenantConfigError(
                f"tenant {name!r} needs a token string of >= 8 chars"
            )
        self.name = name
        self.token = token
        self.quotas = quotas if quotas is not None else TenantQuotas()
        self.revoked = bool(revoked)

    def fingerprint(self) -> str:
        """A short non-secret token digest (``repro tenants list``)."""
        digest = hashlib.sha256(self.token.encode("utf-8")).hexdigest()
        return digest[:12]

    @classmethod
    def from_config(cls, name: str, config: dict) -> "TenantSpec":
        if not isinstance(config, dict):
            raise TenantConfigError(
                f"tenant {name!r} must map to an object, got "
                f"{type(config).__name__}"
            )
        unknown = set(config) - {"token", "quotas", "revoked"}
        if unknown:
            raise TenantConfigError(
                f"tenant {name!r} has unknown field(s) {sorted(unknown)}"
            )
        quotas = TenantQuotas.from_spec(config.get("quotas", {}))
        return cls(
            name, config.get("token", ""), quotas,
            revoked=bool(config.get("revoked", False)),
        )

    def config(self) -> dict:
        """The JSON-able tenants-file entry (includes the token — this
        is what ``repro tenants`` writes back to the file)."""
        entry: dict = {"token": self.token}
        quotas = self.quotas.spec()
        if quotas:
            entry["quotas"] = quotas
        if self.revoked:
            entry["revoked"] = True
        return entry


def _parse_tenants_document(document: dict, origin: str
                            ) -> tuple[dict[str, TenantSpec], Optional[str]]:
    if not isinstance(document, dict):
        raise TenantConfigError(
            f"{origin}: top level must be an object"
        )
    unknown = set(document) - {"tenants", "admin_token"}
    if unknown:
        raise TenantConfigError(
            f"{origin}: unknown top-level field(s) {sorted(unknown)}"
        )
    admin_token = document.get("admin_token")
    if admin_token is not None and (
            not isinstance(admin_token, str) or len(admin_token) < 8):
        raise TenantConfigError(
            f"{origin}: admin_token must be a string of >= 8 chars"
        )
    tenants = document.get("tenants", {})
    if not isinstance(tenants, dict):
        raise TenantConfigError(f"{origin}: 'tenants' must be an object")
    specs: dict[str, TenantSpec] = {}
    for name, config in tenants.items():
        specs[name] = TenantSpec.from_config(name, config)
    return specs, admin_token


def load_tenants_file(path: str
                      ) -> tuple[dict[str, TenantSpec], Optional[str]]:
    """Parse a tenants file; returns ``(specs, admin_token)``.

    ``.toml`` files need :mod:`tomllib` (Python >= 3.11); everything
    else is parsed as JSON.  Both formats share one shape::

        admin_token = "..."            # optional, enables admin ops
        [tenants.alpha]
        token = "alpha-secret-token"
        [tenants.alpha.quotas]
        max_queries = 8
        ingest_rows_per_sec = 5000

    Raises :class:`~repro.exceptions.TenantConfigError` for a missing
    or malformed file — the server refuses to start (or keeps the old
    config on a SIGHUP reload) rather than guessing.
    """
    if path.endswith(".toml"):
        try:
            import tomllib
        except ImportError as exc:
            raise TenantConfigError(
                f"{path}: TOML tenants files need Python >= 3.11 "
                f"(tomllib); use the JSON format instead"
            ) from exc
        try:
            with open(path, "rb") as handle:
                document = tomllib.load(handle)
        except OSError as exc:
            raise TenantConfigError(
                f"cannot read tenants file {path}: {exc}"
            ) from exc
        except tomllib.TOMLDecodeError as exc:
            raise TenantConfigError(
                f"tenants file {path} is not valid TOML: {exc}"
            ) from exc
    else:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except OSError as exc:
            raise TenantConfigError(
                f"cannot read tenants file {path}: {exc}"
            ) from exc
        except ValueError as exc:
            raise TenantConfigError(
                f"tenants file {path} is not valid JSON: {exc}"
            ) from exc
    return _parse_tenants_document(document, path)


def save_tenants_file(path: str, specs: dict[str, TenantSpec],
                      admin_token: Optional[str]) -> None:
    """Write a tenants file (JSON only — ``repro tenants`` edits).

    TOML files are read-only for the admin CLI: rewriting them would
    drop comments, so mutations on a ``.toml`` config raise.
    """
    if path.endswith(".toml"):
        raise TenantConfigError(
            f"{path}: the tenants CLI only rewrites JSON files; edit "
            f"TOML configs by hand"
        )
    document: dict = {
        "tenants": {
            name: spec.config() for name, spec in sorted(specs.items())
        },
    }
    if admin_token is not None:
        document["admin_token"] = admin_token
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


class Namespace:
    """One tenant's live state: the lazily created session plus the
    runtime counters quota checks read."""

    __slots__ = ("name", "spec", "session", "bucket", "subscriptions")

    def __init__(self, name: str, spec: TenantSpec,
                 session: ServerMonitor,
                 bucket: Optional[TokenBucket] = None) -> None:
        self.name = name
        self.spec = spec
        self.session = session
        self.bucket = bucket
        #: live subscription count across this namespace's connections
        #: (maintained by the server; checked against max_subscribers)
        self.subscriptions = 0

    def grant(self, requested: int) -> int:
        """Rows the ingest rate limiter admits (all, when unlimited)."""
        if self.bucket is None:
            return requested
        return self.bucket.grant(requested)


class NamespaceRegistry:
    """Tenant specs plus their lazily materialized namespaces.

    ``factory(name, spec)`` builds a fresh :class:`ServerMonitor` the
    first time a namespace is touched (auth, restore, or replication
    feed).  ``open_default=True`` is the single-tenant mode: no tokens,
    one pre-installed ``default`` namespace — the server runs the same
    code path either way.
    """

    def __init__(
        self,
        specs: Optional[dict[str, TenantSpec]] = None,
        factory: Optional[Callable[[str, TenantSpec], ServerMonitor]] = None,
        *,
        admin_token: Optional[str] = None,
        path: Optional[str] = None,
        clock: Callable[[], float] = time.monotonic,
        open_default: bool = False,
    ) -> None:
        self.specs: dict[str, TenantSpec] = dict(specs or {})
        self.admin_token = admin_token
        self.path = path
        self.open = open_default
        self._factory = factory
        self._clock = clock
        self._namespaces: dict[str, Namespace] = {}

    # ------------------------------------------------------------------
    @classmethod
    def single(cls, session: ServerMonitor) -> "NamespaceRegistry":
        """Wrap one existing session as an open single-tenant registry
        (the ``default`` namespace, no auth, no quotas)."""
        registry = cls(open_default=True)
        registry.install(DEFAULT_NAMESPACE, session)
        return registry

    @classmethod
    def from_file(
        cls,
        path: str,
        factory: Callable[[str, TenantSpec], ServerMonitor],
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> "NamespaceRegistry":
        specs, admin_token = load_tenants_file(path)
        return cls(specs, factory, admin_token=admin_token, path=path,
                   clock=clock)

    # ------------------------------------------------------------------
    def authenticate(self, name, token) -> TenantSpec:
        """Validate a namespace bearer token; returns the spec.

        Every failure — unknown namespace, revoked tenant, wrong token —
        raises the same ``unauthorized`` code with the same message, so
        the error channel leaks nothing about which tenants exist; the
        token comparison itself is constant-time.
        """
        spec = self.specs.get(name) if isinstance(name, str) else None
        expected = spec.token if spec is not None and not spec.revoked \
            else ""
        supplied = token if isinstance(token, str) else ""
        # Compare even when the namespace is unknown, so the rejection
        # timing does not distinguish "no such tenant" from "bad token".
        matched = hmac.compare_digest(
            supplied.encode("utf-8"), expected.encode("utf-8")
        )
        if spec is None or spec.revoked or not expected or not matched:
            raise ProtocolError(
                "unauthorized",
                "namespace authentication failed (unknown namespace, "
                "revoked tenant, or wrong token)",
            )
        return spec

    def authenticate_admin(self, token) -> None:
        """Validate the file-level admin token (``auth`` with
        ``admin: true`` — replicate/promote/checkpoint-all/shutdown)."""
        expected = self.admin_token or ""
        supplied = token if isinstance(token, str) else ""
        matched = hmac.compare_digest(
            supplied.encode("utf-8"), expected.encode("utf-8")
        )
        if not expected or not matched:
            raise ProtocolError(
                "unauthorized", "admin authentication failed"
            )

    # ------------------------------------------------------------------
    def namespace(self, name: str) -> Namespace:
        """The live namespace, creating session + rate bucket on first
        touch (requires a spec unless the registry is open)."""
        namespace = self._namespaces.get(name)
        if namespace is not None:
            return namespace
        spec = self.specs.get(name)
        if spec is None:
            if not self.open:
                raise ProtocolError(
                    "unauthorized", f"unknown namespace {name!r}"
                )
            spec = TenantSpec(name, "open-access-token")
        if self._factory is None:
            raise ServeError(
                f"namespace {name!r} has no session and the registry "
                f"has no session factory"
            )
        session = self._factory(name, spec)
        session.namespace = name
        namespace = Namespace(
            name, spec, session, spec.quotas.bucket(self._clock),
        )
        self._namespaces[name] = namespace
        return namespace

    def get(self, name: str) -> Optional[Namespace]:
        """The live namespace, or ``None`` if never materialized."""
        return self._namespaces.get(name)

    def install(self, name: str, session: ServerMonitor) -> Namespace:
        """Adopt an externally built session (single-tenant wrap,
        checkpoint restore, standby bootstrap) as namespace ``name``."""
        if not valid_namespace(name):
            raise TenantConfigError(f"invalid namespace name {name!r}")
        spec = self.specs.get(name)
        if spec is None:
            spec = TenantSpec(name, "open-access-token")
        session.namespace = name
        namespace = Namespace(
            name, spec, session, spec.quotas.bucket(self._clock),
        )
        self._namespaces[name] = namespace
        return namespace

    def namespaces(self) -> Iterator[Namespace]:
        """Live namespaces in creation order."""
        return iter(list(self._namespaces.values()))

    def __len__(self) -> int:
        return len(self._namespaces)

    def __contains__(self, name: str) -> bool:
        return name in self._namespaces

    # ------------------------------------------------------------------
    def reload(self, specs: dict[str, TenantSpec],
               admin_token: Optional[str]) -> list[str]:
        """Swap in a freshly parsed tenants file (SIGHUP hot-reload).

        Live sessions survive: a tenant whose quotas changed gets a new
        rate bucket, a revoked or removed tenant keeps its window (an
        un-revoke restores access to the same data) but every new auth
        fails.  Returns the names of live namespaces that lost access —
        the server closes their connections.
        """
        self.specs = dict(specs)
        self.admin_token = admin_token
        stale: list[str] = []
        for name, namespace in self._namespaces.items():
            spec = self.specs.get(name)
            if spec is None or spec.revoked:
                if not self.open:
                    stale.append(name)
                continue
            if spec.quotas.spec() != namespace.spec.quotas.spec():
                namespace.bucket = spec.quotas.bucket(self._clock)
            namespace.spec = spec
        return stale


class FairMultiplexer:
    """Round-robin tick scheduling over ready namespaces.

    Engine ticks are CPU-bound and serialize on the event loop anyway;
    what the multiplexer controls is *ordering* and *admission*:

    * at most one in-flight tick per namespace — a namespace whose
      fan-out awaits a slow subscriber (``block`` policy) parks only
      its own lane;
    * dispatch is round-robin over namespaces with queued work, so a
      tenant hammering ingest cannot starve a light tenant: the light
      tenant's next tick is scheduled after at most one tick from each
      other ready namespace;
    * each namespace's submit queue is bounded (``max_pending``);
      :meth:`submit` applies backpressure to that namespace's own
      connections by awaiting a per-namespace semaphore.

    Dispatch is synchronous (driven from :meth:`submit` enqueues and
    job completions), so there is no scheduler task to leak and no
    cross-await mutable state: async methods delegate every mutation to
    synchronous helpers, which are atomic between awaits on a
    single-threaded loop.
    """

    def __init__(
        self,
        *,
        max_pending: int = 4,
        spawn: Optional[Callable] = None,
    ) -> None:
        if max_pending < 1:
            raise ServeError("max_pending must be >= 1")
        self.max_pending = max_pending
        self._spawn_cb = spawn
        self._queues: dict[str, deque] = {}
        self._rotation: deque[str] = deque()
        self._busy: set[str] = set()
        self._sems: dict[str, asyncio.Semaphore] = {}
        self._tasks: set[asyncio.Task] = set()
        self._stopped = False
        #: lifetime dispatch count per namespace (fairness diagnostics)
        self.dispatched: dict[str, int] = {}

    # ------------------------------------------------------------------
    async def submit(self, name: str, thunk: Callable) -> object:
        """Run ``thunk()`` in namespace ``name``'s lane; returns (or
        raises) its result.  Awaits when the namespace already has
        ``max_pending`` jobs queued — per-namespace backpressure that
        never blocks other namespaces' submitters."""
        if self._stopped:
            raise ServeError("multiplexer is stopped")
        sem = self._semaphore(name)
        await sem.acquire()
        if self._stopped:
            sem.release()
            raise ServeError("multiplexer is stopped")
        future = asyncio.get_running_loop().create_future()
        self._enqueue(name, thunk, future, sem)
        return await future

    def stop(self) -> None:
        """Fail every queued job and refuse new submits.  In-flight
        jobs finish on their own (the server cancels their tasks as
        part of its shutdown)."""
        self._stopped = True
        for queue in self._queues.values():
            while queue:
                _, future, sem = queue.popleft()
                sem.release()
                if not future.done():
                    future.set_exception(
                        ServeError("multiplexer stopped")
                    )
        self._queues.clear()
        self._rotation.clear()

    def stats(self) -> dict:
        """JSON-able scheduler state (``stats`` responses embed it)."""
        return {
            "namespaces": len(self._sems),
            "busy": len(self._busy),
            "queued": sum(len(q) for q in self._queues.values()),
            "dispatched": dict(self.dispatched),
        }

    # ------------------------------------------------------------------
    # synchronous internals: every mutation of scheduler state happens
    # inside these (atomic between awaits on a single-threaded loop).
    def _semaphore(self, name: str) -> asyncio.Semaphore:
        sem = self._sems.get(name)
        if sem is None:
            sem = asyncio.Semaphore(self.max_pending)
            self._sems[name] = sem
            self._queues[name] = deque()
            self._rotation.append(name)
            self.dispatched[name] = 0
        return sem

    def _enqueue(self, name, thunk, future, sem) -> None:
        self._queues[name].append((thunk, future, sem))
        self._dispatch()

    def _dispatch(self) -> None:
        """Start one job for every ready, non-busy namespace, visiting
        namespaces in round-robin order."""
        if self._stopped:
            return
        for _ in range(len(self._rotation)):
            name = self._rotation[0]
            self._rotation.rotate(-1)
            if name in self._busy:
                continue
            queue = self._queues[name]
            if not queue:
                continue
            thunk, future, sem = queue.popleft()
            self._busy.add(name)
            self.dispatched[name] += 1
            coro = self._run(name, thunk, future, sem)
            if self._spawn_cb is not None:
                self._spawn_cb(coro)
            else:
                task = asyncio.get_running_loop().create_task(coro)
                self._tasks.add(task)
                task.add_done_callback(self._tasks.discard)

    def _deliver(self, name, future, sem, result, error) -> None:
        self._busy.discard(name)
        sem.release()
        if not future.done():  # the submitter may have been cancelled
            if error is not None:
                future.set_exception(error)
            else:
                future.set_result(result)
        elif error is not None:
            raise error  # surface through the task reaper, not silence
        self._dispatch()

    async def _run(self, name, thunk, future, sem) -> None:
        try:
            result = await thunk()
        except (Exception, asyncio.CancelledError) as exc:
            self._deliver(name, future, sem, None, exc)
        else:
            self._deliver(name, future, sem, result, None)
