"""Stream substrate: objects, sliding windows, the stream manager and the
incremental pair-retrieval iterators used by the TA maintenance path."""

from repro.stream.manager import ArrivalEvent, StreamManager
from repro.stream.object import StreamObject
from repro.stream.pair_source import iter_pairs_by_age, iter_pairs_by_local_score
from repro.stream.window import CountBasedWindow, TimeBasedWindow

__all__ = [
    "ArrivalEvent",
    "CountBasedWindow",
    "StreamManager",
    "StreamObject",
    "TimeBasedWindow",
    "iter_pairs_by_age",
    "iter_pairs_by_local_score",
]
