"""The stream manager (paper §III-B, module 1).

Maintains the ``N`` most recent objects and ``D + 1`` sorted lists over
them:

* for every attribute ``0 <= i < D`` an indexable skip list sorted on the
  objects' i-th attribute values (ties broken by recency), used by the
  TA-based maintenance (Algorithm 5, Fig 6) to enumerate a new object's
  pairs in ascending local-score order;
* one list sorted on age, which is simply the window deque itself (objects
  arrive in age order, so no extra structure is needed).

Storage is ``O(N * D)``, which Theorem 4 proves is the lower bound: no
object inside the window may be dropped because a future arrival could form
a top-ranked pair with it, and all ``D`` attributes must be kept because
any subset may appear in a future scoring function.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from repro.exceptions import InvalidParameterError
from repro.stream.object import StreamObject
from repro.stream.window import CountBasedWindow, TimeBasedWindow
from repro.structures.skiplist import SkipList, SkipNode

__all__ = ["StreamManager", "ArrivalEvent"]


class ArrivalEvent:
    """What happened when one object was appended to the stream."""

    __slots__ = ("new", "expired")

    def __init__(self, new: StreamObject, expired: list[StreamObject]) -> None:
        self.new = new
        self.expired = expired

    def __repr__(self) -> str:
        gone = [o.seq for o in self.expired]
        return f"ArrivalEvent(new={self.new.seq}, expired={gone})"


class StreamManager:
    """Window storage plus the ``D + 1`` sorted attribute lists."""

    def __init__(
        self,
        window_size: int,
        num_attributes: int,
        *,
        time_horizon: Optional[float] = None,
        seed: int = 0,
        recorder=None,
    ) -> None:
        if num_attributes < 1:
            raise InvalidParameterError(
                f"need at least one attribute, got {num_attributes}"
            )
        self.num_attributes = num_attributes
        if time_horizon is not None:
            self._window: CountBasedWindow | TimeBasedWindow = TimeBasedWindow(
                time_horizon
            )
            self.window_size = window_size  # upper bound used for sanity only
        else:
            self._window = CountBasedWindow(window_size)
            self.window_size = window_size
        # One skip list per attribute, keyed (value, seq) so duplicates of a
        # value keep a deterministic order and node removal is exact.
        self._seed = seed
        self._obs = recorder
        self._attribute_lists: list[SkipList] = [
            SkipList(
                key=lambda obj, i=i: (obj.values[i], obj.seq),
                seed=seed + i,
                recorder=recorder,
            )
            for i in range(num_attributes)
        ]
        self._nodes: dict[int, list[SkipNode]] = {}
        self._next_seq = 1

    # ------------------------------------------------------------------
    @property
    def now_seq(self) -> int:
        """Sequence number of the most recent object (0 before any)."""
        return self._next_seq - 1

    def __len__(self) -> int:
        return len(self._window)

    def __iter__(self) -> Iterator[StreamObject]:
        """Window objects, oldest first (= the age-sorted list)."""
        return iter(self._window)

    def newest_first(self) -> Iterator[StreamObject]:
        """Window objects, most recent first."""
        return self._window.newest_first()

    def objects(self) -> list[StreamObject]:
        return list(self._window)

    def oldest(self) -> Optional[StreamObject]:
        return self._window.oldest()

    def attribute_list(self, attribute: int) -> SkipList:
        """The skip list sorted on ``attribute`` (0-based)."""
        return self._attribute_lists[attribute]

    def node_for(self, obj: StreamObject, attribute: int) -> SkipNode:
        """The skip-list node of ``obj`` in the list of ``attribute``."""
        return self._nodes[obj.seq][attribute]

    def seed_sequence(self, next_seq: int) -> None:
        """Fast-forward the arrival counter so the *next* appended object
        gets sequence number ``next_seq``.

        Checkpoint restore (:mod:`repro.serve.checkpoint`) replays the
        saved window into a fresh manager; the replayed objects must keep
        their original sequence numbers or every derived pair key (uid,
        age_key, score_key tie-breaks) would change.  Only allowed on a
        manager that has never admitted an object.
        """
        if self._next_seq != 1 or self._nodes:
            raise InvalidParameterError(
                "seed_sequence is only allowed on a fresh stream manager"
            )
        if next_seq < 1:
            raise InvalidParameterError(
                f"next_seq must be >= 1, got {next_seq}"
            )
        self._next_seq = next_seq

    def load_window(self, objects: Sequence[StreamObject]) -> None:
        """Bulk-install a restored window into a fresh manager.

        The checkpoint structural-restore path rebuilds the window
        without replaying arrivals: objects (oldest first, strictly
        increasing seqs) go straight into the window, and each of the
        ``D`` attribute lists is built with
        :meth:`~repro.structures.skiplist.SkipList.bulk_load` from one
        sorted pass — ``O(N D log N)`` for the sorts instead of ``N``
        incremental inserts *plus* the ``O(N^2)`` skyband bootstraps
        replay would trigger downstream.  Objects are pushed through the
        window's own admission (so capacity/timestamp rules still
        apply); any eviction means the window never fit its
        configuration and raises.
        """
        if self._next_seq != 1 or self._nodes:
            raise InvalidParameterError(
                "load_window is only allowed on a fresh stream manager"
            )
        objects = list(objects)
        previous_seq = 0
        for obj in objects:
            if len(obj.values) != self.num_attributes:
                raise InvalidParameterError(
                    f"expected {self.num_attributes} attribute values, "
                    f"got {len(obj.values)} (seq {obj.seq})"
                )
            if obj.seq <= previous_seq:
                raise InvalidParameterError(
                    f"window seqs must be strictly increasing: {obj.seq} "
                    f"after {previous_seq}"
                )
            previous_seq = obj.seq
            if self._window.push(obj):
                raise InvalidParameterError(
                    "window objects do not fit the window configuration "
                    "(bulk load evicted an object)"
                )
        nodes_by_seq: dict[int, list[SkipNode]] = {
            obj.seq: [None] * self.num_attributes for obj in objects
        }
        for attribute in range(self.num_attributes):
            ordered = sorted(
                objects, key=lambda obj: (obj.values[attribute], obj.seq)
            )
            skiplist = SkipList.bulk_load(
                ordered,
                key=lambda obj, i=attribute: (obj.values[i], obj.seq),
                seed=self._seed + attribute,
                recorder=self._obs,
            )
            self._attribute_lists[attribute] = skiplist
            node = skiplist.first_node()
            while node is not None:
                nodes_by_seq[node.value.seq][attribute] = node
                node = node.next_at(0)
        self._nodes = nodes_by_seq
        if objects:
            self._next_seq = objects[-1].seq + 1

    # ------------------------------------------------------------------
    def append(
        self,
        values: Sequence[float],
        *,
        timestamp: Optional[float] = None,
        payload: object = None,
    ) -> ArrivalEvent:
        """Admit one new object; returns it plus any expired objects.

        Expired objects are removed from every sorted list before the
        event is returned, so consumers always see a consistent window
        that *includes* the new object and *excludes* the expired ones.
        """
        if len(values) != self.num_attributes:
            raise InvalidParameterError(
                f"expected {self.num_attributes} attribute values, "
                f"got {len(values)}"
            )
        obj = StreamObject(self._next_seq, values, timestamp, payload)
        self._next_seq += 1
        expired = self._window.push(obj)
        for gone in expired:
            nodes = self._nodes.pop(gone.seq)
            for attribute, node in enumerate(nodes):
                self._attribute_lists[attribute].remove_node(node)
        self._nodes[obj.seq] = [
            self._attribute_lists[attribute].insert(obj)
            for attribute in range(self.num_attributes)
        ]
        return ArrivalEvent(obj, expired)

    def extend(self, rows: Sequence[Sequence[float]]) -> list[ArrivalEvent]:
        """Append many rows; returns one event per row."""
        return [self.append(values) for values in rows]
