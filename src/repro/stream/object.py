"""Stream objects.

Every element of the data stream is a :class:`StreamObject`: an immutable
record with a strictly increasing arrival *sequence number*, a tuple of
``D`` numeric attribute values, an optional timestamp (for time-based
windows) and an optional opaque payload for the application (stock symbol,
auction id, sensor id, ...).

The paper's *age* (§II-B: the i-th most recent object has age ``i``) shifts
on every arrival; storing the sequence number instead makes all age
comparisons time-invariant:

    ``age(now) = now - seq + 1``

so ``a`` is older than ``b`` exactly when ``a.seq < b.seq``.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

__all__ = ["StreamObject"]


class StreamObject:
    """One element of the data stream."""

    __slots__ = ("seq", "values", "timestamp", "payload")

    def __init__(
        self,
        seq: int,
        values: Sequence[float],
        timestamp: Optional[float] = None,
        payload: Any = None,
    ) -> None:
        self.seq = seq
        self.values = tuple(values)
        self.timestamp = timestamp
        self.payload = payload

    def age(self, now_seq: int) -> int:
        """The paper's age: 1 for the most recent object."""
        return now_seq - self.seq + 1

    def __getitem__(self, attribute: int) -> float:
        """Value of the object on ``attribute`` (0-based)."""
        return self.values[attribute]

    def __len__(self) -> int:
        return len(self.values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StreamObject):
            return NotImplemented
        return self.seq == other.seq

    def __hash__(self) -> int:
        return hash(self.seq)

    def __repr__(self) -> str:
        extra = f", payload={self.payload!r}" if self.payload is not None else ""
        return f"StreamObject(seq={self.seq}, values={self.values!r}{extra})"
