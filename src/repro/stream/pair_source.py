"""Incremental sorted-pair retrieval (paper §V-B.1, Fig 6).

When a new object ``o`` arrives, the TA-based maintenance (Algorithm 5)
needs, for every local term, the pairs of ``o`` enumerated in *ascending
local score* order without materializing all of them.  The stream
manager's sorted attribute lists make this possible:

* the partners sit in a skip list sorted on the attribute, with ``o``'s
  own node known, so partners above/below ``o`` form two sorted runs;
* the local function's declared trends say, per side, whether the best
  partner is the nearest one (walk *outward* from ``o``) or the farthest
  one (walk *inward* from the list's end);
* a two-cursor merge then yields partners in ascending local score.

A third source enumerates pairs of ``o`` in ascending *age*: the pair
``(o, o_j)`` has age ``o_j.age`` (``o`` is the newest object), so newest
partners first.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.scoring.local import LocalScoringFunction, Trend
from repro.stream.manager import StreamManager
from repro.stream.object import StreamObject
from repro.structures.skiplist import SkipList, SkipNode

__all__ = ["iter_pairs_by_local_score", "iter_pairs_by_age"]


def iter_pairs_by_local_score(
    manager: StreamManager,
    obj: StreamObject,
    attribute: int,
    local_fn: LocalScoringFunction,
) -> Iterator[tuple[StreamObject, float]]:
    """Yield ``(partner, local_score)`` for all pairs of ``obj`` on
    ``attribute`` in ascending local-score order.

    ``obj`` must already be inserted in the stream manager (it is the
    freshly arrived object).  Each window partner is yielded exactly once.
    """
    skiplist = manager.attribute_list(attribute)
    own_node = manager.node_for(obj, attribute)
    reference = obj.values[attribute]

    above = _side_cursor(
        skiplist, own_node, side="above", trend=local_fn.trend_above
    )
    below = _side_cursor(
        skiplist, own_node, side="below", trend=local_fn.trend_below
    )

    def scored(source: Iterator[StreamObject]) -> Iterator[tuple[StreamObject, float]]:
        for partner in source:
            yield partner, local_fn.score(reference, partner.values[attribute])

    yield from _merge_ascending(scored(above), scored(below))


def iter_pairs_by_age(
    manager: StreamManager, obj: StreamObject
) -> Iterator[StreamObject]:
    """Yield partners of ``obj`` in ascending *pair age* order.

    Since ``obj`` is the most recent object, the age of the pair
    ``(obj, partner)`` is the partner's age — so most recent partners
    come first.
    """
    for partner in manager.newest_first():
        if partner.seq != obj.seq:
            yield partner


# ----------------------------------------------------------------------
# cursors
# ----------------------------------------------------------------------
def _side_cursor(
    skiplist: SkipList,
    own_node: SkipNode,
    *,
    side: str,
    trend: Trend,
) -> Iterator[StreamObject]:
    """Partners on one side of ``own_node``, best local score first.

    ``INCREASING_AWAY`` walks outward from the object's node;
    ``DECREASING_AWAY`` walks inward from the relevant end of the list.
    """
    if trend is Trend.INCREASING_AWAY:
        if side == "above":
            node = own_node.next_at(0)
            while node is not None:
                yield node.value
                node = node.next_at(0)
        else:
            node = own_node.prev
            while node is not None:
                yield node.value
                node = node.prev
    else:
        if side == "above":
            # farthest above first: from the maximum end inward to own_node
            node: Optional[SkipNode] = (
                skiplist.node_at(len(skiplist) - 1) if len(skiplist) else None
            )
            while node is not None and node is not own_node:
                yield node.value
                node = node.prev
        else:
            # farthest below first: from the minimum end inward to own_node
            node = skiplist.first_node()
            while node is not None and node is not own_node:
                yield node.value
                node = node.next_at(0)


def _merge_ascending(
    a: Iterator[tuple[StreamObject, float]],
    b: Iterator[tuple[StreamObject, float]],
) -> Iterator[tuple[StreamObject, float]]:
    """Merge two score-ascending streams into one."""
    item_a = next(a, None)
    item_b = next(b, None)
    while item_a is not None and item_b is not None:
        if item_a[1] <= item_b[1]:
            yield item_a
            item_a = next(a, None)
        else:
            yield item_b
            item_b = next(b, None)
    while item_a is not None:
        yield item_a
        item_a = next(a, None)
    while item_b is not None:
        yield item_b
        item_b = next(b, None)
