"""Sliding windows.

Paper §II-B defines two window flavours.  The algorithms are developed for
*count-based* windows (the most recent ``N`` objects); the paper remarks
the techniques also apply to *time-based* windows (objects younger than
``T`` time units).  Both are implemented here as thin policy objects that
the stream manager consults to decide which objects expire on arrival.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator, Optional

from repro.exceptions import WindowError
from repro.stream.object import StreamObject

__all__ = ["CountBasedWindow", "TimeBasedWindow"]


class CountBasedWindow:
    """Holds the most recent ``capacity`` objects, oldest first."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise WindowError(f"window capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._objects: deque[StreamObject] = deque()

    def __len__(self) -> int:
        return len(self._objects)

    def __iter__(self) -> Iterator[StreamObject]:
        """Oldest to newest."""
        return iter(self._objects)

    def __contains__(self, obj: StreamObject) -> bool:
        return bool(self._objects) and self._objects[0].seq <= obj.seq <= self._objects[-1].seq

    def newest_first(self) -> Iterator[StreamObject]:
        return reversed(self._objects)

    def oldest(self) -> Optional[StreamObject]:
        return self._objects[0] if self._objects else None

    def newest(self) -> Optional[StreamObject]:
        return self._objects[-1] if self._objects else None

    def push(self, obj: StreamObject) -> list[StreamObject]:
        """Admit ``obj``; return the objects that expire (0 or 1 of them)."""
        self._objects.append(obj)
        expired: list[StreamObject] = []
        while len(self._objects) > self.capacity:
            expired.append(self._objects.popleft())
        return expired


class TimeBasedWindow:
    """Holds the objects whose timestamp is within ``horizon`` of the
    newest timestamp.  Timestamps must be non-decreasing.

    This realizes the paper's §II-B remark: the same pair algorithms run
    unchanged because expiry is still strictly oldest-first, which is the
    only property they rely on.
    """

    def __init__(self, horizon: float) -> None:
        if horizon <= 0:
            raise WindowError(f"time horizon must be > 0, got {horizon}")
        self.horizon = horizon
        self._objects: deque[StreamObject] = deque()

    def __len__(self) -> int:
        return len(self._objects)

    def __iter__(self) -> Iterator[StreamObject]:
        return iter(self._objects)

    def newest_first(self) -> Iterator[StreamObject]:
        return reversed(self._objects)

    def oldest(self) -> Optional[StreamObject]:
        return self._objects[0] if self._objects else None

    def newest(self) -> Optional[StreamObject]:
        return self._objects[-1] if self._objects else None

    def push(self, obj: StreamObject) -> list[StreamObject]:
        """Admit ``obj``; return every object that falls off the horizon."""
        if obj.timestamp is None:
            raise WindowError("time-based windows require object timestamps")
        if self._objects and obj.timestamp < self._objects[-1].timestamp:
            raise WindowError(
                "timestamps must be non-decreasing: "
                f"{obj.timestamp} after {self._objects[-1].timestamp}"
            )
        self._objects.append(obj)
        cutoff = obj.timestamp - self.horizon
        expired: list[StreamObject] = []
        while self._objects and self._objects[0].timestamp < cutoff:
            expired.append(self._objects.popleft())
        return expired
