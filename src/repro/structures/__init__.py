"""Data-structure substrates: skip list, heaps, selection, priority
search tree.  These back the stream manager, the skyband maintenance
module and the query answering module."""

from repro.structures.heap import Heap, MaxHeap, MinHeap
from repro.structures.pst import PrioritySearchTree, PSTNode
from repro.structures.selection import (
    median_of_medians,
    quickselect_smallest,
    select_smallest,
)
from repro.structures.skiplist import SkipList, SkipNode

__all__ = [
    "Heap",
    "MaxHeap",
    "MinHeap",
    "PrioritySearchTree",
    "PSTNode",
    "SkipList",
    "SkipNode",
    "median_of_medians",
    "quickselect_smallest",
    "select_smallest",
]
