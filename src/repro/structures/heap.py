"""Binary heaps with explicit min/max orientation and optional key.

Paper Algorithm 4 ("UpdateSkybandAndStaircase") maintains a *max-heap keyed
on the ages* of the K pairs with the smallest ages seen so far; ``top()``
then yields the K-th smallest age.  The standard library only ships a
min-heap over raw lists, so this module provides a small, well-tested heap
class used across the library (it also backs the naive baseline's per-object
candidate sets and the TA frontier queues).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Optional

from repro.exceptions import EmptyStructureError

__all__ = ["Heap", "MaxHeap", "MinHeap"]


class Heap:
    """An array-backed binary heap.

    Parameters
    ----------
    items:
        Initial items, heapified in ``O(n)``.
    key:
        Extracts the comparison key from an item (default: identity).
    max_heap:
        ``True`` for a max-heap (largest key on top), ``False`` for min.
    """

    def __init__(
        self,
        items: Iterable[Any] = (),
        *,
        key: Optional[Callable[[Any], Any]] = None,
        max_heap: bool = False,
    ) -> None:
        self._key = key if key is not None else _identity
        self._max = max_heap
        self._data: list[Any] = list(items)
        self._heapify()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._data)

    def __bool__(self) -> bool:
        return bool(self._data)

    def __iter__(self) -> Iterator[Any]:
        """Iterate items in arbitrary (heap) order."""
        return iter(self._data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "max" if self._max else "min"
        return f"Heap({kind}, size={len(self._data)})"

    # ------------------------------------------------------------------
    def _higher(self, a: Any, b: Any) -> bool:
        """Whether item ``a`` should sit above item ``b``."""
        ka, kb = self._key(a), self._key(b)
        return ka > kb if self._max else ka < kb

    def _heapify(self) -> None:
        for i in range(len(self._data) // 2 - 1, -1, -1):
            self._sift_down(i)

    def _sift_up(self, i: int) -> None:
        data = self._data
        item = data[i]
        while i > 0:
            parent = (i - 1) >> 1
            if self._higher(item, data[parent]):
                data[i] = data[parent]
                i = parent
            else:
                break
        data[i] = item

    def _sift_down(self, i: int) -> None:
        data = self._data
        size = len(data)
        item = data[i]
        while True:
            left = 2 * i + 1
            if left >= size:
                break
            best = left
            right = left + 1
            if right < size and self._higher(data[right], data[left]):
                best = right
            if self._higher(data[best], item):
                data[i] = data[best]
                i = best
            else:
                break
        data[i] = item

    # ------------------------------------------------------------------
    def push(self, item: Any) -> None:
        """Insert an item in ``O(log n)``."""
        self._data.append(item)
        self._sift_up(len(self._data) - 1)

    def peek(self) -> Any:
        """The top item (smallest key for a min-heap, largest for max)."""
        if not self._data:
            raise EmptyStructureError("heap is empty")
        return self._data[0]

    def pop(self) -> Any:
        """Remove and return the top item in ``O(log n)``."""
        if not self._data:
            raise EmptyStructureError("heap is empty")
        data = self._data
        top = data[0]
        last = data.pop()
        if data:
            data[0] = last
            self._sift_down(0)
        return top

    def pushpop(self, item: Any) -> Any:
        """Push then pop, faster than the two calls; returns the popped top."""
        if self._data and self._higher(self._data[0], item):
            item, self._data[0] = self._data[0], item
            self._sift_down(0)
        return item

    def replace_top(self, item: Any) -> Any:
        """Pop the top and push ``item`` in one ``O(log n)`` step."""
        if not self._data:
            raise EmptyStructureError("heap is empty")
        top = self._data[0]
        self._data[0] = item
        self._sift_down(0)
        return top

    def clear(self) -> None:
        self._data.clear()

    def check_invariants(self) -> None:
        """Validate the heap property (test helper)."""
        data = self._data
        for i in range(1, len(data)):
            parent = (i - 1) >> 1
            assert not self._higher(data[i], data[parent]), (
                f"heap property violated at index {i}"
            )


class MaxHeap(Heap):
    """A max-heap: :meth:`peek` returns the item with the *largest* key."""

    def __init__(self, items: Iterable[Any] = (), *,
                 key: Optional[Callable[[Any], Any]] = None) -> None:
        super().__init__(items, key=key, max_heap=True)


class MinHeap(Heap):
    """A min-heap: :meth:`peek` returns the item with the *smallest* key."""

    def __init__(self, items: Iterable[Any] = (), *,
                 key: Optional[Callable[[Any], Any]] = None) -> None:
        super().__init__(items, key=key, max_heap=False)


def _identity(value: Any) -> Any:
    return value
