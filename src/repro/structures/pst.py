"""Priority search tree over (age, score) points.

Paper §IV-A indexes the K-skyband pairs in a priority search tree
(McCreight [20]): a binary tree that is simultaneously

* a *min-heap on ages* — a node's point is at least as recent as every
  point below it (paper property 1), and
* a *search tree on scores* — every node carries a ``split`` key; all points
  in its left subtree have score keys ``<= split`` and all points in its
  right subtree have score keys ``> split`` (paper property 2: a node's
  score is larger than all its left cousins' and smaller than all its right
  cousins').

Construction follows the paper's Algorithm 1 (pull out the minimum-age
point, split the rest at the median score).  The skyband maintenance module
also needs ``O(log |SKB|)`` *insert* and *delete*:

* ``insert`` descends by score key, swapping the carried point with the
  resident point whenever the carried one is more recent (the classic PST
  sift-down), and attaches a fresh leaf at the end of the path;
* ``delete`` finds the point by score key and fills the hole by repeatedly
  promoting the more-recent child point (classic PST deletion).

Both operations preserve the heap and split invariants but can skew the
tree, so the tree is kept *weight balanced* scapegoat-style: subtree sizes
are tracked, and when an insertion path contains a node whose child exceeds
``ALPHA`` times its own weight, the highest such node is rebuilt with
Algorithm 1 (amortized ``O(log^2 m)`` per update, ``m = |SKB|``, which is
tiny — the expected skyband size is ``O(K log(N/K))``).  Deletions trigger
a full rebuild once half the tree has been removed, the standard scapegoat
deletion rule.

Points are duck-typed: anything exposing a totally ordered ``score_key``
and an integer-ordered ``age_key`` works.  In this library smaller
``age_key`` means *more recent* (see :mod:`repro.core.pair`).
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Iterator, Optional, Protocol, Sequence

from repro.exceptions import ItemNotFoundError
from repro.obs.recorder import NULL_RECORDER
from repro.structures.selection import quickselect_smallest

__all__ = ["AgeScorePoint", "PrioritySearchTree", "PSTNode"]

ALPHA = 0.70  # weight-balance factor for scapegoat rebuilds


class AgeScorePoint(Protocol):
    """Structural type of the points a :class:`PrioritySearchTree` stores."""

    @property
    def score_key(self) -> Any: ...

    @property
    def age_key(self) -> Any: ...


class PSTNode:
    """A tree node: one point, a score split key, children and a size."""

    __slots__ = ("point", "split", "left", "right", "size")

    def __init__(self, point: AgeScorePoint, split: Any) -> None:
        self.point = point
        self.split = split
        self.left: Optional[PSTNode] = None
        self.right: Optional[PSTNode] = None
        self.size = 1

    def is_leaf(self) -> bool:
        return self.left is None and self.right is None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PSTNode(point={self.point!r}, split={self.split!r}, size={self.size})"


class PrioritySearchTree:
    """A dynamic priority search tree on (age, score) points.

    Score keys must be unique across stored points (the library guarantees
    this via the footnote-1 tie-breaking key); ages may repeat freely.
    """

    def __init__(
        self,
        points: Sequence[AgeScorePoint] = (),
        *,
        recorder=None,
    ) -> None:
        self._root: Optional[PSTNode] = None
        self._obs = recorder if recorder is not None else NULL_RECORDER
        self._deletions_since_rebuild = 0
        if points:
            self._root = _build(sorted(points, key=lambda p: p.score_key))

    @classmethod
    def from_sorted(
        cls,
        points: Sequence[AgeScorePoint],
        *,
        recorder=None,
    ) -> "PrioritySearchTree":
        """Build from points already in ascending ``score_key`` order.

        Skips the constructor's re-sort — Algorithm 1 itself is ``O(m)``
        on sorted input (plus the age selections), so this is the path
        the skyband maintainer and the checkpoint structural restore use
        when they hold a score-sorted skyband.  Raises
        :class:`ValueError` when the input is out of order (a corrupt
        checkpoint must not become a silently broken tree).
        """
        for index in range(1, len(points)):
            if points[index].score_key <= points[index - 1].score_key:
                raise ValueError(
                    "from_sorted requires strictly ascending score keys: "
                    f"violation at position {index}"
                )
        tree = cls(recorder=recorder)
        if points:
            tree._root = _build(list(points))
        return tree

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._root.size if self._root is not None else 0

    def __bool__(self) -> bool:
        return self._root is not None

    def __iter__(self) -> Iterator[AgeScorePoint]:
        yield from self.points()

    def points(self) -> Iterator[AgeScorePoint]:
        """All stored points, in unspecified order."""
        stack = [self._root] if self._root is not None else []
        while stack:
            node = stack.pop()
            yield node.point
            if node.left is not None:
                stack.append(node.left)
            if node.right is not None:
                stack.append(node.right)

    @property
    def root(self) -> Optional[PSTNode]:
        return self._root

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def insert(self, point: AgeScorePoint) -> None:
        """Insert ``point`` in amortized ``O(log^2 m)``."""
        if self._obs.enabled:
            self._obs.on_pst_insert()
        if self._root is None:
            self._root = PSTNode(point, point.score_key)
            return
        path: list[PSTNode] = []
        node = self._root
        carried = point
        while True:
            path.append(node)
            node.size += 1
            if carried.age_key < node.point.age_key:
                carried, node.point = node.point, carried
            if carried.score_key <= node.split:
                if node.left is None:
                    node.left = PSTNode(carried, carried.score_key)
                    break
                node = node.left
            else:
                if node.right is None:
                    node.right = PSTNode(carried, carried.score_key)
                    break
                node = node.right
        self._rebalance_path(path)

    def delete(self, point: AgeScorePoint) -> None:
        """Delete the point with ``point.score_key``; raises
        :class:`ItemNotFoundError` if absent.  Amortized ``O(log m)``."""
        target_key = point.score_key
        parent: Optional[PSTNode] = None
        node = self._root
        went_left = False
        path: list[PSTNode] = []
        while node is not None:
            path.append(node)
            if node.point.score_key == target_key:
                break
            parent = node
            went_left = target_key <= node.split
            node = node.left if went_left else node.right
        if node is None:
            raise ItemNotFoundError(point)
        if self._obs.enabled:
            self._obs.on_pst_delete()
        for ancestor in path:
            ancestor.size -= 1
        empty = _fill_hole(node)
        if empty:
            if parent is None:
                self._root = None
            elif went_left:
                parent.left = None
            else:
                parent.right = None
        self._deletions_since_rebuild += 1
        if self._root is not None and self._deletions_since_rebuild > max(
            8, self._root.size
        ):
            self.rebuild()

    def rebuild(self) -> None:
        """Rebuild the whole tree with Algorithm 1 (perfect balance)."""
        start = perf_counter()
        pts = sorted(self.points(), key=lambda p: p.score_key)
        self._root = _build(pts)
        self._deletions_since_rebuild = 0
        if self._obs.enabled:
            self._obs.on_pst_rebuild(
                len(pts), perf_counter() - start, partial=False
            )

    def _rebalance_path(self, path: list[PSTNode]) -> None:
        """Rebuild the *highest* α-unbalanced subtree on the insert path."""
        for i, node in enumerate(path):
            threshold = ALPHA * node.size
            left = node.left.size if node.left is not None else 0
            right = node.right.size if node.right is not None else 0
            if left > threshold or right > threshold:
                start = perf_counter()
                rebuilt = _build(
                    sorted(_collect(node), key=lambda p: p.score_key)
                )
                if i == 0:
                    self._root = rebuilt
                else:
                    parent = path[i - 1]
                    if parent.left is node:
                        parent.left = rebuilt
                    else:
                        parent.right = rebuilt
                if self._obs.enabled:
                    self._obs.on_pst_rebuild(
                        rebuilt.size, perf_counter() - start, partial=True
                    )
                return

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def top_k(self, k: int, max_age_key: Any) -> list[AgeScorePoint]:
        """Paper Algorithm 2: the ``k`` smallest-score points among those
        with ``age_key <= max_age_key``, in ascending score order.

        Runs the modified post-order traversal (skip out-of-window nodes,
        stop after ``k`` post-order visits), then selects the ``k`` best
        from the visited nodes plus the marked ancestors left on the stack,
        in time ``O(log m + k)``.
        """
        if k <= 0 or self._root is None:
            return []
        if self._root.point.age_key > max_age_key:
            # The root is the most recent point; if even it is outside the
            # window, every point is.
            return []
        stack: list[PSTNode] = [self._root]
        marked: set[int] = set()
        visited: list[PSTNode] = []
        while len(visited) < k and stack:
            node = stack[-1]
            if node.is_leaf() or id(node) in marked:
                visited.append(node)
                stack.pop()
            else:
                marked.add(id(node))
                right = node.right
                if right is not None and right.point.age_key <= max_age_key:
                    stack.append(right)
                left = node.left
                if left is not None and left.point.age_key <= max_age_key:
                    stack.append(left)
        candidates = [n.point for n in visited]
        candidates.extend(n.point for n in stack if id(n) in marked)
        return quickselect_smallest(candidates, k, key=lambda p: p.score_key)

    def find(self, score_key: Any) -> Optional[AgeScorePoint]:
        """The stored point with this exact score key, or ``None``."""
        node = self._root
        while node is not None:
            if node.point.score_key == score_key:
                return node.point
            node = node.left if score_key <= node.split else node.right
        return None

    def min_score_point(self) -> Optional[AgeScorePoint]:
        """The stored point with the globally smallest score key.

        When a node has a left child, everything in its right subtree is
        larger than its split and hence than the left subtree's minimum, so
        the global minimum is the node's own point or lives down the left
        child; when the left child is missing it is the point or lives down
        the right child.  One root-to-leaf walk suffices.
        """
        best: Optional[AgeScorePoint] = None
        node = self._root
        while node is not None:
            if best is None or node.point.score_key < best.score_key:
                best = node.point
            node = node.left if node.left is not None else node.right
        return best

    # ------------------------------------------------------------------
    # validation (test helper)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Assert heap order, split partition and size bookkeeping."""
        if self._root is None:
            return
        _check(self._root, None, None, None)

    def height(self) -> int:
        def rec(node: Optional[PSTNode]) -> int:
            if node is None:
                return 0
            return 1 + max(rec(node.left), rec(node.right))

        return rec(self._root)


def _build(pts_sorted: list[AgeScorePoint]) -> Optional[PSTNode]:
    """Paper Algorithm 1 on a score-sorted list of points."""
    if not pts_sorted:
        return None
    min_index = 0
    for i in range(1, len(pts_sorted)):
        if pts_sorted[i].age_key < pts_sorted[min_index].age_key:
            min_index = i
    point = pts_sorted[min_index]
    rest = pts_sorted[:min_index] + pts_sorted[min_index + 1:]
    if not rest:
        return PSTNode(point, point.score_key)
    mid = (len(rest) - 1) // 2
    node = PSTNode(point, rest[mid].score_key)
    node.left = _build(rest[: mid + 1])
    node.right = _build(rest[mid + 1:])
    node.size = len(pts_sorted)
    return node


def _collect(node: PSTNode) -> list[AgeScorePoint]:
    out: list[AgeScorePoint] = []
    stack = [node]
    while stack:
        cur = stack.pop()
        out.append(cur.point)
        if cur.left is not None:
            stack.append(cur.left)
        if cur.right is not None:
            stack.append(cur.right)
    return out


def _fill_hole(node: PSTNode) -> bool:
    """Classic PST deletion: promote the more-recent child point upward
    until the hole reaches a leaf.  Returns ``True`` when the *original*
    ``node`` itself became an empty leaf that the caller must unlink."""
    while True:
        left, right = node.left, node.right
        if left is None and right is None:
            return node.size == 0
        if right is None or (
            left is not None and left.point.age_key <= right.point.age_key
        ):
            child = left
            is_left = True
        else:
            child = right
            is_left = False
        assert child is not None
        node.point = child.point
        child.size -= 1
        if child.is_leaf():
            if is_left:
                node.left = None
            else:
                node.right = None
            return False
        node = child


def _check(
    node: PSTNode,
    min_age_key: Any,
    lo: Any,
    hi: Any,
) -> int:
    """Recursive invariant check; returns subtree size."""
    if min_age_key is not None:
        assert node.point.age_key >= min_age_key, "heap order violated"
    if lo is not None:
        assert node.point.score_key > lo, "score below subtree range"
    if hi is not None:
        assert node.point.score_key <= hi, "score above subtree range"
    size = 1
    if node.left is not None:
        size += _check(node.left, node.point.age_key, lo, node.split)
    if node.right is not None:
        size += _check(node.right, node.point.age_key, node.split, hi)
    assert size == node.size, f"size mismatch: {size} != {node.size}"
    return size
