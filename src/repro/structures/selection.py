"""Linear-time selection of the k smallest items.

Paper Algorithm 2 (line 12) extracts the k pairs with the smallest scores
from the ``O(log |SKB| + k)`` candidates gathered during the PST traversal,
citing the median-of-medians selection algorithm of Blum, Floyd, Pratt,
Rivest and Tarjan [21] for the linear bound.  This module implements both

* :func:`select_smallest` — deterministic median-of-medians select,
  worst-case ``O(n)``, returning the k smallest items *sorted*, and
* :func:`quickselect_smallest` — the randomized variant (expected ``O(n)``)
  used by default in hot paths because its constants are far smaller.

Both take an optional ``key`` so callers can rank pairs by their score key.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Optional, Sequence

__all__ = ["select_smallest", "quickselect_smallest", "median_of_medians"]

_rng = random.Random(0x5EED)


def _identity(value: Any) -> Any:
    return value


def select_smallest(
    items: Sequence[Any],
    k: int,
    *,
    key: Optional[Callable[[Any], Any]] = None,
) -> list[Any]:
    """The ``k`` smallest items of ``items`` in ascending order.

    Deterministic: partitions around the median of medians, so the running
    time is ``O(n)`` even on adversarial inputs, plus ``O(k log k)`` for the
    final sort of the selected prefix.
    """
    key = key if key is not None else _identity
    if k <= 0:
        return []
    data = list(items)
    if k >= len(data):
        return sorted(data, key=key)
    _partial_select(data, k, key, deterministic=True)
    return sorted(data[:k], key=key)


def quickselect_smallest(
    items: Sequence[Any],
    k: int,
    *,
    key: Optional[Callable[[Any], Any]] = None,
    rng: Optional[random.Random] = None,
) -> list[Any]:
    """The ``k`` smallest items in ascending order, expected ``O(n)``.

    Uses random pivots; pass ``rng`` for reproducible pivot choices.
    """
    key = key if key is not None else _identity
    if k <= 0:
        return []
    data = list(items)
    if k >= len(data):
        return sorted(data, key=key)
    _partial_select(data, k, key, deterministic=False,
                    rng=rng if rng is not None else _rng)
    return sorted(data[:k], key=key)


def median_of_medians(
    items: Sequence[Any],
    *,
    key: Optional[Callable[[Any], Any]] = None,
) -> Any:
    """An approximate median: the median of the medians of groups of 5.

    Guaranteed to rank between the 30th and 70th percentile of ``items``,
    which is what the deterministic select needs from its pivot.
    """
    key = key if key is not None else _identity
    data = list(items)
    if not data:
        raise ValueError("median_of_medians of empty sequence")
    while len(data) > 5:
        groups = [data[i:i + 5] for i in range(0, len(data), 5)]
        data = [sorted(g, key=key)[len(g) // 2] for g in groups]
    return sorted(data, key=key)[len(data) // 2]


def _partial_select(
    data: list[Any],
    k: int,
    key: Callable[[Any], Any],
    *,
    deterministic: bool,
    rng: Optional[random.Random] = None,
) -> None:
    """Rearrange ``data`` in place so the k smallest occupy ``data[:k]``."""
    lo, hi = 0, len(data) - 1
    while lo < hi:
        if hi - lo < 16:
            data[lo:hi + 1] = sorted(data[lo:hi + 1], key=key)
            return
        if deterministic:
            pivot = median_of_medians(data[lo:hi + 1], key=key)
            pivot_key = key(pivot)
        else:
            assert rng is not None
            pivot_key = key(data[rng.randint(lo, hi)])
        lt, gt = _three_way_partition(data, lo, hi, pivot_key, key)
        # data[lo:lt] < pivot, data[lt:gt+1] == pivot, data[gt+1:hi+1] > pivot
        if k <= lt:
            hi = lt - 1
        elif k <= gt + 1:
            return  # the boundary falls inside the equal run: done
        else:
            lo = gt + 1


def _three_way_partition(
    data: list[Any],
    lo: int,
    hi: int,
    pivot_key: Any,
    key: Callable[[Any], Any],
) -> tuple[int, int]:
    """Dutch-flag partition of ``data[lo:hi+1]`` around ``pivot_key``.

    Returns ``(lt, gt)`` with items ``< pivot`` in ``[lo, lt)``, ``== pivot``
    in ``[lt, gt]`` and ``> pivot`` in ``(gt, hi]``.
    """
    i = lo
    lt = lo
    gt = hi
    while i <= gt:
        k_i = key(data[i])
        if k_i < pivot_key:
            data[i], data[lt] = data[lt], data[i]
            lt += 1
            i += 1
        elif k_i > pivot_key:
            data[i], data[gt] = data[gt], data[i]
            gt -= 1
        else:
            i += 1
    return lt, gt
