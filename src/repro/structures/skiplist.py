"""An indexable skip list.

The stream manager (paper §III-B, module 1) keeps ``D + 1`` lists of the
``N`` most recent objects, each sorted on one attribute.  Objects are
inserted and deleted continuously, and the TA-style maintenance algorithm
(paper Algorithm 5) walks outwards from a freshly inserted object's position
to enumerate its pairs in ascending local-score order.  That workload needs
a sorted container with

* ``O(log n)`` insert and delete,
* ``O(log n)`` rank queries (``index`` / ``bisect``),
* ``O(1)`` neighbour access from a known node (for the outward walk),
* ``O(log n)`` access by rank (``__getitem__``).

A classic indexable skip list (Pugh 1990, with the width augmentation) gives
all of these with straightforward code, so it is the sorted-list substrate
for the whole library.  The random level generator is seeded per-instance so
behaviour is reproducible in tests.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Iterable, Iterator, Optional

from repro.exceptions import EmptyStructureError, ItemNotFoundError
from repro.obs.recorder import NULL_RECORDER

__all__ = ["SkipList", "SkipNode"]

_MAX_LEVEL = 32
_P = 0.5


class SkipNode:
    """A node of the skip list.

    Exposed publicly because the pair-retrieval iterators (paper Fig 6)
    hold node references and walk ``next_at(0)`` / ``prev`` pointers.
    """

    __slots__ = ("key", "value", "forward", "width", "prev")

    def __init__(self, key: Any, value: Any, level: int) -> None:
        self.key = key
        self.value = value
        self.forward: list[Optional[SkipNode]] = [None] * level
        # width[i] = number of level-0 links skipped by forward[i]
        self.width: list[int] = [1] * level
        self.prev: Optional[SkipNode] = None

    @property
    def level(self) -> int:
        return len(self.forward)

    def next_at(self, level: int = 0) -> Optional["SkipNode"]:
        """The next node at ``level`` (``None`` at the end)."""
        return self.forward[level]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SkipNode(key={self.key!r}, value={self.value!r})"


class SkipList:
    """A sorted, indexable container with duplicate keys allowed.

    Items are ordered by ``key(value)`` if a key function is given, else by
    the values themselves.  Equal keys keep insertion order (the new item
    goes after existing equal keys), which gives the deterministic
    tie-breaking the paper's footnote 1 requires when values carry their
    own ids.
    """

    def __init__(
        self,
        values: Iterable[Any] = (),
        *,
        key: Optional[Callable[[Any], Any]] = None,
        seed: Optional[int] = None,
        recorder=None,
    ) -> None:
        self._key = key if key is not None else _identity
        self._obs = recorder if recorder is not None else NULL_RECORDER
        self._rng = random.Random(seed)
        self._head = SkipNode(None, None, _MAX_LEVEL)
        self._level = 1
        self._size = 0
        for value in values:
            self.insert(value)

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __iter__(self) -> Iterator[Any]:
        node = self._head.forward[0]
        while node is not None:
            yield node.value
            node = node.forward[0]

    def __contains__(self, value: Any) -> bool:
        key = self._key(value)
        node = self._find_first_node(key)
        while node is not None and node.key == key:
            if node.value == value:
                return True
            node = node.forward[0]
        return False

    def __getitem__(self, rank: int) -> Any:
        return self.node_at(rank).value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SkipList({list(self)!r})"

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def _random_level(self) -> int:
        level = 1
        while level < _MAX_LEVEL and self._rng.random() < _P:
            level += 1
        return level

    def insert(self, value: Any) -> SkipNode:
        """Insert ``value``; return its node.  ``O(log n)`` expected."""
        key = self._key(value)
        update: list[SkipNode] = [self._head] * _MAX_LEVEL
        rank: list[int] = [0] * _MAX_LEVEL
        node = self._head
        steps = 0
        for level in range(self._level - 1, -1, -1):
            if level < self._level - 1:
                rank[level] = rank[level + 1]
            nxt = node.forward[level]
            # "<= key" keeps equal keys in insertion order (new goes last);
            # descents compare cached node keys, never re-invoking _key
            while nxt is not None and nxt.key <= key:
                rank[level] += node.width[level]
                node = nxt
                nxt = node.forward[level]
                steps += 1
            update[level] = node
        if self._obs.enabled:
            self._obs.on_skiplist_traversal(steps)

        new_level = self._random_level()
        if new_level > self._level:
            for level in range(self._level, new_level):
                rank[level] = 0
                update[level] = self._head
                self._head.width[level] = self._size + 1
            self._level = new_level

        new_node = SkipNode(key, value, new_level)
        for level in range(new_level):
            pred = update[level]
            new_node.forward[level] = pred.forward[level]
            pred.forward[level] = new_node
            # split pred's width at the insertion point
            new_node.width[level] = pred.width[level] - (rank[0] - rank[level])
            pred.width[level] = (rank[0] - rank[level]) + 1
        for level in range(new_level, self._level):
            update[level].width[level] += 1

        succ = new_node.forward[0]
        new_node.prev = update[0] if update[0] is not self._head else None
        if succ is not None:
            succ.prev = new_node
        self._size += 1
        return new_node

    def remove(self, value: Any) -> None:
        """Remove one occurrence of ``value`` (matched by ``==``).

        Raises :class:`ItemNotFoundError` if absent.  ``O(log n)`` expected
        plus a scan over equal keys.
        """
        key = self._key(value)
        node = self._find_first_node(key)
        while node is not None and node.key == key:
            if node.value == value:
                self.remove_node(node)
                return
            node = node.forward[0]
        raise ItemNotFoundError(value)

    def remove_node(self, target: SkipNode) -> None:
        """Remove a node previously returned by :meth:`insert` / lookup."""
        key = target.key
        update: list[SkipNode] = [self._head] * self._level
        node = self._head
        steps = 0
        for level in range(self._level - 1, -1, -1):
            nxt = node.forward[level]
            while nxt is not None and (
                nxt.key < key
                or (nxt.key == key and nxt is not target
                    and _reaches(nxt, target))
            ):
                node = nxt
                nxt = node.forward[level]
                steps += 1
            update[level] = node
        if self._obs.enabled:
            self._obs.on_skiplist_traversal(steps)
        found = update[0].forward[0]
        if found is not target:
            raise ItemNotFoundError(target.value)
        for level in range(self._level):
            pred = update[level]
            if pred.forward[level] is target:
                pred.width[level] += target.width[level] - 1
                pred.forward[level] = target.forward[level]
            else:
                pred.width[level] -= 1
        succ = target.forward[0]
        if succ is not None:
            succ.prev = target.prev
        while self._level > 1 and self._head.forward[self._level - 1] is None:
            self._level -= 1
        self._size -= 1

    def clear(self) -> None:
        self._head = SkipNode(None, None, _MAX_LEVEL)
        self._level = 1
        self._size = 0

    @classmethod
    def bulk_load(
        cls,
        sorted_values: Iterable[Any],
        *,
        key: Optional[Callable[[Any], Any]] = None,
        seed: Optional[int] = None,
        recorder=None,
    ) -> "SkipList":
        """Build a list from already key-sorted values in ``O(n)``.

        One random level is drawn per value (same generator as
        :meth:`insert`, so a seeded bulk load is reproducible) and nodes
        are linked level by level with running position trackers instead
        of ``n`` top-down descents.  The resulting structure satisfies
        every :meth:`check_invariants` property; tail widths are set to
        the distance to the virtual one-past-the-end position, matching
        what incremental appends would have produced (``insert`` reads
        them when extending the list).

        Used by the checkpoint structural-restore path, which rebuilds
        the ``D`` per-attribute lists from the serialized window in one
        pass each.  Raises :class:`ValueError` when the input is not
        sorted by ``key``.
        """
        skiplist = cls(key=key, seed=seed, recorder=recorder)
        values = list(sorted_values)
        if not values:
            return skiplist
        size = len(values)
        head = skiplist._head
        # Last node linked at each level and its level-0 position
        # (head = position 0, i-th value = position i + 1).
        last_node: list[SkipNode] = [head] * _MAX_LEVEL
        last_pos = [0] * _MAX_LEVEL
        max_level = 1
        previous: Optional[SkipNode] = None
        for position, value in enumerate(values, start=1):
            node_key = skiplist._key(value)
            if previous is not None and node_key < previous.key:
                raise ValueError(
                    "bulk_load requires values sorted by key: item at "
                    f"position {position - 1} is out of order"
                )
            node_level = skiplist._random_level()
            node = SkipNode(node_key, value, node_level)
            node.prev = previous
            for level in range(node_level):
                pred = last_node[level]
                pred.forward[level] = node
                pred.width[level] = position - last_pos[level]
                last_node[level] = node
                last_pos[level] = position
            if node_level > max_level:
                max_level = node_level
            previous = node
        for level in range(max_level):
            last_node[level].width[level] = size + 1 - last_pos[level]
        skiplist._level = max_level
        skiplist._size = size
        return skiplist

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def _find_first_node(self, key: Any) -> Optional[SkipNode]:
        """First node whose key is >= ``key`` (or ``None``)."""
        node = self._head
        for level in range(self._level - 1, -1, -1):
            nxt = node.forward[level]
            while nxt is not None and nxt.key < key:
                node = nxt
                nxt = node.forward[level]
        return node.forward[0]

    def bisect_left(self, key: Any) -> int:
        """Rank of the first item with key >= ``key``."""
        node = self._head
        rank = 0
        for level in range(self._level - 1, -1, -1):
            nxt = node.forward[level]
            while nxt is not None and nxt.key < key:
                rank += node.width[level]
                node = nxt
                nxt = node.forward[level]
        return rank

    def bisect_right(self, key: Any) -> int:
        """Rank just past the last item with key <= ``key``."""
        node = self._head
        rank = 0
        for level in range(self._level - 1, -1, -1):
            nxt = node.forward[level]
            while nxt is not None and nxt.key <= key:
                rank += node.width[level]
                node = nxt
                nxt = node.forward[level]
        return rank

    def find_node(self, value: Any) -> SkipNode:
        """The node holding ``value`` (matched by ``==``)."""
        key = self._key(value)
        node = self._find_first_node(key)
        while node is not None and node.key == key:
            if node.value == value:
                return node
            node = node.forward[0]
        raise ItemNotFoundError(value)

    def node_at(self, rank: int) -> SkipNode:
        """The node at 0-based ``rank``; supports negative ranks."""
        if rank < 0:
            rank += self._size
        if not 0 <= rank < self._size:
            raise IndexError(rank)
        node = self._head
        remaining = rank + 1
        for level in range(self._level - 1, -1, -1):
            nxt = node.forward[level]
            while nxt is not None and node.width[level] <= remaining:
                remaining -= node.width[level]
                node = nxt
                nxt = node.forward[level]
        return node

    def index(self, value: Any) -> int:
        """Rank of ``value`` (first occurrence, matched by ``==``)."""
        key = self._key(value)
        rank = self.bisect_left(key)
        node = self._find_first_node(key)
        while node is not None and node.key == key:
            if node.value == value:
                return rank
            rank += 1
            node = node.forward[0]
        raise ItemNotFoundError(value)

    # ------------------------------------------------------------------
    # convenience accessors used by the algorithms
    # ------------------------------------------------------------------
    def first(self) -> Any:
        if self._size == 0:
            raise EmptyStructureError("skip list is empty")
        return self._head.forward[0].value

    def last(self) -> Any:
        if self._size == 0:
            raise EmptyStructureError("skip list is empty")
        return self.node_at(self._size - 1).value

    def first_node(self) -> Optional[SkipNode]:
        return self._head.forward[0]

    def irange(self, start_rank: int = 0, stop_rank: Optional[int] = None) -> Iterator[Any]:
        """Iterate values with ranks in ``[start_rank, stop_rank)``."""
        if stop_rank is None:
            stop_rank = self._size
        if start_rank >= stop_rank or start_rank >= self._size:
            return
        node = self.node_at(start_rank)
        count = stop_rank - start_rank
        while node is not None and count > 0:
            yield node.value
            node = node.forward[0]
            count -= 1

    def check_invariants(self) -> None:
        """Validate ordering, width bookkeeping and prev pointers
        (test helper)."""
        values = list(self)
        keys = [self._key(v) for v in values]
        assert keys == sorted(keys), "skip list keys out of order"
        assert len(values) == self._size, "size mismatch"
        # Descents rely on the cached node keys matching the key function.
        node = self._head.forward[0]
        while node is not None:
            assert node.key == self._key(node.value), "stale cached key"
            node = node.forward[0]
        # Level-0 positions: head at 0, i-th node at i + 1.
        positions: dict[int, int] = {id(self._head): 0}
        node = self._head.forward[0]
        index = 1
        while node is not None:
            positions[id(node)] = index
            index += 1
            node = node.forward[0]
        # A node's width at any level must equal the level-0 distance to
        # its successor there (tail widths are unused by the algorithms).
        for level in range(self._level):
            node = self._head
            while node.forward[level] is not None:
                successor = node.forward[level]
                distance = positions[id(successor)] - positions[id(node)]
                assert node.width[level] == distance, (
                    f"width mismatch at level {level}: "
                    f"{node.width[level]} != {distance}"
                )
                node = successor
        # prev pointers
        node = self._head.forward[0]
        prev = None
        while node is not None:
            assert node.prev is prev, "broken prev pointer"
            prev = node
            node = node.forward[0]


def _identity(value: Any) -> Any:
    return value


def _reaches(start: SkipNode, target: SkipNode) -> bool:
    """Whether ``target`` is reachable from ``start`` going forward at
    level 0 without passing a different key — i.e. ``start`` sits at or
    before ``target`` within a run of equal keys.  Used by
    :meth:`remove_node` to advance the descent up to (but not onto) the
    target among duplicates."""
    node: Optional[SkipNode] = start
    while node is not None and node.key == target.key:
        if node is target:
            return True
        node = node.forward[0]
    return False
