"""Tests for the empirical complexity-trend fitting, including fits of
the library's own measured behaviour against the paper's claims."""

from __future__ import annotations

import math
import random

import pytest

from repro.analysis.complexity import doubling_ratios, fit_power_law
from repro.analysis.cost_model import Counters
from repro.core.maintenance import SCaseMaintainer, TAMaintainer
from repro.scoring.library import k_closest_pairs
from repro.stream.manager import StreamManager


class TestFitPowerLaw:
    def test_exact_linear(self):
        fit = fit_power_law([1, 2, 4, 8], [3, 6, 12, 24])
        assert math.isclose(fit.exponent, 1.0)
        assert math.isclose(fit.coefficient, 3.0)
        assert math.isclose(fit.r_squared, 1.0)

    def test_exact_quadratic(self):
        fit = fit_power_law([1, 2, 3], [2, 8, 18])
        assert math.isclose(fit.exponent, 2.0)
        assert math.isclose(fit.coefficient, 2.0)

    def test_flat_series(self):
        fit = fit_power_law([1, 10, 100], [5, 5, 5])
        assert math.isclose(fit.exponent, 0.0, abs_tol=1e-12)

    def test_predict_roundtrip(self):
        fit = fit_power_law([2, 4, 8], [10, 20, 40])
        assert math.isclose(fit.predict(16), 80, rel_tol=1e-9)

    def test_noise_tolerated(self):
        rng = random.Random(1)
        xs = [2 ** i for i in range(3, 12)]
        ys = [7 * x ** 1.5 * rng.uniform(0.9, 1.1) for x in xs]
        fit = fit_power_law(xs, ys)
        assert 1.35 < fit.exponent < 1.65
        assert fit.r_squared > 0.95

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [1.0])
        with pytest.raises(ValueError):
            fit_power_law([1], [1.0])
        with pytest.raises(ValueError):
            fit_power_law([0, 1], [1.0, 2.0])
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [-1.0, 2.0])
        with pytest.raises(ValueError):
            fit_power_law([3, 3], [1.0, 2.0])


class TestDoublingRatios:
    def test_values(self):
        assert doubling_ratios([1, 2, 8]) == [2.0, 4.0]

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            doubling_ratios([1, 0])


def _pairs_considered(maintainer_cls, N, K, ticks, seed=0):
    """Pairs examined per arrival at steady state."""
    rng = random.Random(seed)
    counters = Counters()
    sf = k_closest_pairs(2)
    manager = StreamManager(N, 2)
    maintainer = maintainer_cls(sf, K, counters=counters)
    for _ in range(N):
        event = manager.append((rng.random(), rng.random()))
        maintainer.on_tick(manager, event.new, event.expired)
    counters.reset()
    for _ in range(ticks):
        event = manager.append((rng.random(), rng.random()))
        maintainer.on_tick(manager, event.new, event.expired)
    return counters.pairs_considered / ticks


class TestMeasuredTrends:
    """The paper's access-complexity claims, verified on op counts (which
    are deterministic and machine-independent, unlike wall time)."""

    def test_scase_examines_theta_N_pairs(self):
        Ns = [50, 100, 200, 400]
        ys = [_pairs_considered(SCaseMaintainer, N, 5, 80) for N in Ns]
        fit = fit_power_law(Ns, ys)
        assert 0.9 < fit.exponent < 1.1  # exactly N - 1 per arrival

    def test_ta_examines_sublinear_pairs(self):
        """Algorithm 5's bound is N^{d/(d+1)} = N^{2/3} for d = 2."""
        Ns = [100, 200, 400, 800]
        ys = [_pairs_considered(TAMaintainer, N, 5, 80) for N in Ns]
        fit = fit_power_law(Ns, ys)
        assert fit.exponent < 0.9  # clearly sublinear in N

    def test_ta_beats_scase_on_access_counts(self):
        for N in (200, 400):
            ta = _pairs_considered(TAMaintainer, N, 5, 60)
            scase = _pairs_considered(SCaseMaintainer, N, 5, 60)
            assert ta < scase
