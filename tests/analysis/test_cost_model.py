"""Tests for the operation-count cost model."""

from __future__ import annotations

from repro.analysis.cost_model import Counters, CountingScoringFunction
from repro.scoring.library import k_closest_pairs, sensor_scoring_function
from repro.stream.object import StreamObject


class TestCounters:
    def test_starts_at_zero(self):
        counters = Counters()
        assert counters.total() == 0
        assert all(v == 0 for _, v in counters.items())

    def test_reset(self):
        counters = Counters()
        counters.score_evaluations = 7
        counters.reset()
        assert counters.score_evaluations == 0

    def test_total_sums_everything(self):
        counters = Counters()
        counters.score_evaluations = 2
        counters.heap_ops = 3
        assert counters.total() == 5

    def test_snapshot_is_a_copy(self):
        counters = Counters()
        counters.pst_inserts = 1
        snap = counters.snapshot()
        counters.pst_inserts = 9
        assert snap["pst_inserts"] == 1

    def test_repr_mentions_nonzero_only(self):
        counters = Counters()
        counters.dominance_checks = 4
        assert "dominance_checks=4" in repr(counters)
        assert "heap_ops" not in repr(counters)


class TestCountingScoringFunction:
    def test_counts_and_delegates(self):
        counters = Counters()
        wrapped = CountingScoringFunction(k_closest_pairs(1), counters)
        a, b = StreamObject(1, (1.0,)), StreamObject(2, (4.0,))
        assert wrapped.score(a, b) == 3.0
        assert wrapped(a, b) == 3.0
        assert counters.score_evaluations == 2

    def test_forwards_global_surface(self):
        counters = Counters()
        inner = k_closest_pairs(2)
        wrapped = CountingScoringFunction(inner, counters)
        assert wrapped.is_global()
        assert wrapped.terms == inner.terms
        assert wrapped.combine([1.0, 2.0]) == 3.0
        assert wrapped.attributes == inner.attributes

    def test_wraps_arbitrary_functions(self):
        counters = Counters()
        wrapped = CountingScoringFunction(sensor_scoring_function(), counters)
        assert not wrapped.is_global()
        assert "sensor" in wrapped.name
