"""Tests for the closed-form expectations (Lemmas 1-2, Theorem 3)."""

from __future__ import annotations

import math
import random

import pytest

from repro.analysis.theory import (
    expected_new_skyband_pairs,
    expected_skyband_size,
    harmonic,
    skyband_membership_probability,
    ta_access_bound,
)
from repro.baselines.brute import BruteForceReference
from repro.scoring.library import k_closest_pairs


class TestHarmonic:
    def test_small_values(self):
        assert harmonic(0) == 0.0
        assert harmonic(1) == 1.0
        assert math.isclose(harmonic(4), 1 + 0.5 + 1 / 3 + 0.25)

    def test_asymptotic_agrees_with_exact(self):
        n = 999_999
        exact = harmonic(n)
        asymptotic = math.log(n) + 0.5772156649 + 1 / (2 * n)
        assert math.isclose(exact, asymptotic, rel_tol=1e-6)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            harmonic(-1)


class TestLemma1:
    def test_probability_capped_at_one(self):
        assert skyband_membership_probability(K=10, age=2) == 1.0

    def test_formula(self):
        assert skyband_membership_probability(K=4, age=10) == 0.04

    def test_age_one_always_member(self):
        assert skyband_membership_probability(K=1, age=1) == 1.0

    def test_decreasing_in_age(self):
        probs = [skyband_membership_probability(5, a) for a in range(2, 50)]
        assert probs == sorted(probs, reverse=True)


class TestTheorem3:
    def test_matches_K_log_N_over_K_shape(self):
        K = 20
        for N in (100, 1000, 10_000):
            size = expected_skyband_size(K, N)
            shape = K * math.log(N / K)
            assert 0.4 * shape < size < 4.0 * shape + 4 * K

    def test_grows_logarithmically_in_N(self):
        K = 10
        delta1 = expected_skyband_size(K, 1000) - expected_skyband_size(K, 100)
        delta2 = expected_skyband_size(K, 10_000) - expected_skyband_size(K, 1000)
        assert math.isclose(delta1, delta2, rel_tol=0.02)  # log growth

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            expected_skyband_size(0, 100)
        with pytest.raises(ValueError):
            expected_skyband_size(5, 1)

    def test_against_measured_skyband(self):
        """Empirical skyband size should be within a small constant factor
        of the estimate (scores ~ independent of ages for uniform data)."""
        rng = random.Random(1)
        K, N = 5, 60
        sf = k_closest_pairs(2)
        ref = BruteForceReference(sf, N)
        for _ in range(3 * N):
            ref.append((rng.random(), rng.random()))
        measured = len(ref.skyband(K))
        estimate = expected_skyband_size(K, N)
        assert estimate / 4 < measured < estimate * 4


class TestLemma2:
    def test_order_K(self):
        for K in (1, 10, 100):
            value = expected_new_skyband_pairs(K)
            assert value < 3 * K + 3

    def test_increasing_in_K(self):
        values = [expected_new_skyband_pairs(K) for K in (1, 5, 20, 80)]
        assert values == sorted(values)

    def test_validates(self):
        with pytest.raises(ValueError):
            expected_new_skyband_pairs(0)


class TestTABound:
    def test_formula(self):
        assert math.isclose(
            ta_access_bound(1, 100, 4), 2 * math.sqrt(100) * math.sqrt(4)
        )

    def test_sublinear_in_N(self):
        assert ta_access_bound(2, 10_000, 20) < 3 * 10_000

    def test_degrades_with_d(self):
        """Fig 12(c): more attributes means TA examines more pairs."""
        values = [ta_access_bound(d, 10_000, 20) for d in range(2, 7)]
        assert values == sorted(values)

    def test_validates(self):
        with pytest.raises(ValueError):
            ta_access_bound(0, 10, 10)
