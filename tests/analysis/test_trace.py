"""Tests for the trace recorder, including the steady-state balance
property it exists to expose."""

from __future__ import annotations

import io
import random

import pytest

from repro.analysis.cost_model import Counters
from repro.analysis.trace import TraceRecorder
from repro.core.maintenance import SCaseMaintainer
from repro.scoring.library import k_closest_pairs
from repro.stream.manager import StreamManager


def drive_with_trace(N, K, ticks, seed=0, counters=None):
    rng = random.Random(seed)
    manager = StreamManager(N, 2)
    maintainer = SCaseMaintainer(k_closest_pairs(2), K, counters=counters)
    recorder = TraceRecorder(counters=counters)
    for _ in range(ticks):
        event = manager.append((rng.random(), rng.random()))
        delta = maintainer.on_tick(manager, event.new, event.expired)
        recorder.observe(maintainer, delta)
    return recorder


class TestRecording:
    def test_one_row_per_tick(self):
        recorder = drive_with_trace(N=10, K=2, ticks=30)
        assert len(recorder) == 30
        assert recorder.rows[0]["tick"] == 1
        assert recorder.rows[-1]["tick"] == 30

    def test_counter_deltas_per_tick(self):
        counters = Counters()
        recorder = drive_with_trace(N=10, K=2, ticks=25, counters=counters)
        # Per-tick deltas must sum back to the cumulative totals.
        assert sum(recorder.series("score_evaluations")) == (
            counters.score_evaluations
        )
        assert sum(recorder.series("pairs_considered")) == (
            counters.pairs_considered
        )

    def test_mean_and_series(self):
        recorder = drive_with_trace(N=8, K=2, ticks=20)
        assert recorder.mean("skyband_size") > 0
        assert len(recorder.series("added")) == 20

    def test_mean_of_empty_raises(self):
        with pytest.raises(ValueError):
            TraceRecorder().mean("added")

    def test_to_csv_roundtrip_shape(self):
        recorder = drive_with_trace(N=8, K=2, ticks=10)
        out = io.StringIO()
        recorder.to_csv(out)
        lines = out.getvalue().strip().splitlines()
        assert len(lines) == 11  # header + rows
        assert lines[0].startswith("tick,skyband_size")


class TestSteadyStateProperties:
    def test_arrivals_balance_departures(self):
        """At steady state the skyband neither grows nor shrinks: pairs
        added per tick equal pairs removed + expired per tick."""
        recorder = drive_with_trace(N=30, K=4, ticks=300, seed=1)
        steady = recorder.steady_state()
        inflow = steady.mean("added")
        outflow = steady.mean("removed") + steady.mean("expired")
        assert inflow == pytest.approx(outflow, rel=0.15)

    def test_skyband_size_stabilizes(self):
        recorder = drive_with_trace(N=40, K=3, ticks=400, seed=2)
        first_half = recorder.rows[200:300]
        second_half = recorder.rows[300:]
        mean_a = sum(r["skyband_size"] for r in first_half) / 100
        mean_b = sum(r["skyband_size"] for r in second_half) / 100
        assert mean_a == pytest.approx(mean_b, rel=0.25)

    def test_staircase_never_exceeds_skyband(self):
        recorder = drive_with_trace(N=25, K=3, ticks=200, seed=3)
        for row in recorder.rows:
            assert row["staircase_size"] <= row["skyband_size"]
