"""Async-safety fixtures: per rule (RA201-RA205), one module holding a
minimal trigger and a near-miss that must stay clean."""

__all__ = []
