"""RA201: blocking calls inside (or reachable from) async def."""

import asyncio
import time

__all__ = [
    "blocks_directly",
    "blocks_transitively",
    "offloads_to_executor",
    "sleeps_properly",
    "sync_writer",
]


async def blocks_directly():
    time.sleep(0.5)  # trigger: blocking sleep on the event loop


def sync_writer(path, data):
    with open(path, "w") as handle:  # blocking I/O, fine in sync code
        handle.write(data)


async def blocks_transitively(path):
    sync_writer(path, "x")  # trigger: reaches open() one hop down


async def sleeps_properly():
    await asyncio.sleep(0.5)  # near-miss: async sleep is fine


async def offloads_to_executor(path):
    # near-miss: the blocking function is passed as a *value* to an
    # executor, not invoked on the loop — the sanctioned escape hatch
    loop = asyncio.get_running_loop()
    await loop.run_in_executor(None, sync_writer, path, "x")
