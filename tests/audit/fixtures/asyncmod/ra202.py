"""RA202: shared state mutated on both sides of an await, no lock."""

import asyncio

__all__ = ["Session"]

REGISTRY = {}


class Session:
    def __init__(self):
        self.pending = []
        self.flushed = 0
        self._lock = asyncio.Lock()
        self.queue = asyncio.Queue()

    async def races(self, item):
        self.pending.append(item)  # write, segment 0
        await self.queue.put(item)
        self.pending.pop()  # trigger: write, segment 1 — race window

    async def races_in_loop(self, items):
        for item in items:
            # trigger: iteration 2's append races iteration 1's await
            self.pending.append(item)
            await self.queue.put(item)

    async def races_global(self, key, value):
        REGISTRY[key] = value  # write, segment 0
        await self.queue.put(key)
        REGISTRY.pop(key)  # trigger: module state on the far side

    async def mutates_before_await_only(self, item):
        # near-miss: every mutation completes before the first await
        self.pending.append(item)
        self.flushed += 1
        await self.queue.put(item)

    async def mutates_under_lock(self, item):
        # near-miss: the lock serializes the whole critical section
        # (the inner await is bounded, so RA204 stays quiet too)
        async with self._lock:
            self.pending.append(item)
            await asyncio.wait_for(self.queue.put(item), timeout=1.0)
            self.pending.pop()

    async def counts_metrics(self, metric, item):
        # near-miss: metric verbs (inc/set/observe) are not state races
        metric.inc()
        await self.queue.put(item)
        metric.set(len(self.pending))
