"""RA203: fire-and-forget create_task/ensure_future."""

import asyncio

__all__ = ["fires_and_forgets", "keeps_reference", "awaits_task"]


async def work():
    await asyncio.sleep(0)


async def fires_and_forgets():
    asyncio.ensure_future(work())  # trigger: reference discarded
    asyncio.create_task(work())  # trigger: same, via create_task


async def keeps_reference(tasks):
    # near-miss: the task is retained (caller owns its lifecycle)
    task = asyncio.create_task(work())
    tasks.append(task)
    return task


async def awaits_task():
    # near-miss: awaiting retrieves the result/exception inline
    await asyncio.ensure_future(work())
