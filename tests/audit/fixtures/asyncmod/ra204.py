"""RA204: lock held across await of an unbounded operation."""

import asyncio

__all__ = ["Courier"]


class Courier:
    def __init__(self):
        self._lock = asyncio.Lock()
        self.queue = asyncio.Queue()
        self.delivered = []

    async def holds_lock_across_put(self, item):
        async with self._lock:
            await self.queue.put(item)  # trigger: unbounded under lock

    async def holds_lock_across_wait(self, event):
        async with self._lock:
            await event.wait()  # trigger: bare wait under lock

    async def bounded_under_lock(self, item):
        # near-miss: wait_for carries a timeout — bounded by design
        async with self._lock:
            await asyncio.wait_for(self.queue.put(item), timeout=1.0)

    async def copies_then_awaits(self, item):
        # near-miss: critical section shrunk — await happens lock-free
        async with self._lock:
            self.delivered.append(item)
        await self.queue.put(item)
