"""RA205: coroutine called but never awaited."""

import asyncio

__all__ = ["drops_coroutine", "awaits_coroutine", "spawns_coroutine"]


async def step():
    await asyncio.sleep(0)


async def drops_coroutine():
    step()  # trigger: coroutine object created and thrown away


async def awaits_coroutine():
    await step()  # near-miss: properly awaited


async def spawns_coroutine(tasks):
    # near-miss: the coroutine call is an argument, not a bare statement
    tasks.append(asyncio.create_task(step()))
