"""Mini project fixture: hot-path code in ``core/`` calling helpers in
a non-hot directory — the shape the file-list-based per-file lint
misses and call-graph propagation must catch."""

__all__ = []
