"""Helpers in a NON-hot directory, reachable from sweep_skyband.

``rank_filter`` is two call-hops from the hot entry point
(``sweep_skyband -> merge_candidates -> rank_filter``) and contains
RA105/RA106 violations the per-file lint cannot see (``analysis/`` is
not on the hot-path directory list).  ``stamp_tick`` adds an RA108.
``offline_report`` is NOT reachable from hot code and must stay
unflagged even though it has the same patterns.
"""

import time

__all__ = ["merge_candidates", "offline_report", "rank_filter", "stamp_tick"]


def merge_candidates(entries):
    stamp_tick()
    return rank_filter(entries)


def rank_filter(entries):
    out = []
    for entry in entries:
        if entry in [1, 2, 3]:
            out.insert(0, entry)
    return out


def stamp_tick():
    return time.time()


def offline_report(entries):
    """Same patterns, but nothing hot reaches this function."""
    out = []
    for entry in entries:
        if entry in [7, 8, 9]:
            out.insert(0, entry)
    return out
