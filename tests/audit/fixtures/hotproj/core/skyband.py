"""Hot-path entry point (lives under ``core/`` -> hot seed)."""

from hotproj.analysis.helpers import merge_candidates

__all__ = ["sweep_skyband"]


def sweep_skyband(entries):
    """The per-tick sweep; every function it reaches is hot."""
    return merge_candidates(entries)
