"""RA301 fixture: a mini serve tree with deliberate protocol drift."""

__all__ = []
