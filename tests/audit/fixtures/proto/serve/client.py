"""Client side: encoders for ingest/snapshot, plus one for
``undeclared`` — an op missing from OPS (the server will reject it)."""

__all__ = ["MiniClient"]


class MiniClient:
    def request(self, op, **fields):
        return {"op": op, **fields}

    def ingest(self, rows):
        return self.request("ingest", rows=rows)

    def snapshot(self):
        return self.request("snapshot")

    def probe(self):
        return self.request("undeclared")
