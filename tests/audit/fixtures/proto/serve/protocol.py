"""Declared op vocabulary.

``ingest`` and ``snapshot`` are fully wired (near-misses: must NOT be
flagged).  ``ghost`` has neither handler nor encoder (two findings);
``phantom`` has a handler but no client encoder (one finding).
"""

__all__ = ["OPS"]

OPS = ("ingest", "snapshot", "ghost", "phantom")
