"""Server side: handlers for ingest/snapshot/phantom, plus ``_op_rogue``
— an op the protocol never declared (unreachable dead code)."""

__all__ = ["MiniServer"]


class MiniServer:
    async def _op_ingest(self, conn, frame, request_id):
        return "ok"

    async def _op_snapshot(self, conn, frame, request_id):
        return "ok"

    async def _op_phantom(self, conn, frame, request_id):
        return "ok"

    async def _op_rogue(self, conn, frame, request_id):
        return "never dispatched"
