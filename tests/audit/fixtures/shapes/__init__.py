"""Call-graph shape fixtures: each module pins one tricky resolution
case (bound methods, import aliasing, decorators, recursion,
functools.partial)."""

__all__ = []
