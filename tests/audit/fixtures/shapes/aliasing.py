"""Import aliasing: ``from x import y as z`` and ``import a.b as c``."""

import shapes.targets as tgt
from shapes.targets import helper as renamed

__all__ = ["via_from_alias", "via_module_alias"]


def via_from_alias(x):
    return renamed(x)


def via_module_alias(x):
    return tgt.other_helper(x)
