"""Decorator-wrapped defs: the binding survives decoration, so calls
to the decorated name must still produce edges to it."""

import functools

__all__ = ["caller", "logged", "wrapped_step"]


def logged(fn):
    @functools.wraps(fn)
    def inner(*args, **kwargs):
        return fn(*args, **kwargs)
    return inner


@logged
def wrapped_step(x):
    return x * 2


def caller(x):
    return wrapped_step(x)
