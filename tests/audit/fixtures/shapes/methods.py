"""Bound-method resolution: self-calls, inherited methods, methods on
locals holding class instances, and ``self.attr`` instance types."""

__all__ = ["Base", "Engine", "Widget", "drive", "drive_attr"]


class Base:
    def inherited(self):
        return 0


class Widget(Base):
    def spin(self):
        return self.turn() + self.inherited()

    def turn(self):
        return 1


class Engine:
    def __init__(self):
        self.widget = Widget()

    def run(self):
        return self.widget.spin()


def drive():
    w = Widget()
    return w.spin()


def drive_attr(engine: Engine):
    return engine.run()
