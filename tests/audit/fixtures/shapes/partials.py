"""functools.partial: a *reference* edge (kind ``partial``), distinct
from invocation — RA201 propagation must not cross it."""

import functools
from functools import partial

from shapes.targets import helper

__all__ = ["bind_both_ways"]


def bind_both_ways():
    first = functools.partial(helper, 1)
    second = partial(helper, 2)
    return first, second
