"""Recursion and call cycles: traversal must terminate and keep the
self/mutual edges."""

__all__ = ["countdown", "ping", "pong"]


def countdown(n):
    if n <= 0:
        return 0
    return countdown(n - 1)


def ping(n):
    if n <= 0:
        return 0
    return pong(n - 1)


def pong(n):
    return ping(n - 1)
