"""Plain call targets the other shape modules resolve to."""

__all__ = ["helper", "other_helper"]


def helper(x):
    return x + 1


def other_helper(x):
    return x - 1
