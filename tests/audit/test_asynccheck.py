"""Tests for the async-safety rules (`repro.audit.asynccheck`):
every RA2xx rule has a fixture that triggers it and a near-miss that
must stay clean."""

from __future__ import annotations

import os

from repro.audit.asynccheck import async_violations
from repro.audit.callgraph import build_project

FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "fixtures")
ASYNCMOD = os.path.join(FIXTURES, "asyncmod")


def findings_for(module_basename):
    project = build_project([os.path.join(ASYNCMOD, module_basename)])
    return async_violations(project)


def by_subject(violations):
    out = {}
    for violation in violations:
        out.setdefault(violation.subject.rsplit(".", 1)[-1], set()).add(
            violation.rule
        )
    return out


class TestRA201Blocking:
    def setup_method(self):
        self.by_fn = by_subject(findings_for("ra201.py"))

    def test_direct_blocking_call_flagged(self):
        assert "RA201" in self.by_fn.get("blocks_directly", set())

    def test_transitive_blocking_via_sync_helper_flagged(self):
        assert "RA201" in self.by_fn.get("blocks_transitively", set())

    def test_chain_named_in_transitive_message(self):
        found = findings_for("ra201.py")
        transitive = next(
            v for v in found
            if v.subject.endswith("blocks_transitively")
        )
        assert "sync_writer" in transitive.message

    def test_async_sleep_clean(self):
        assert "sleeps_properly" not in self.by_fn

    def test_executor_offload_clean(self):
        # passing the blocking function as a value is the escape hatch
        assert "offloads_to_executor" not in self.by_fn

    def test_sync_function_itself_clean(self):
        assert "sync_writer" not in self.by_fn


class TestRA202SharedStateRace:
    def setup_method(self):
        self.by_fn = by_subject(findings_for("ra202.py"))

    def test_write_on_both_sides_of_await_flagged(self):
        assert "RA202" in self.by_fn.get("races", set())

    def test_write_plus_await_in_loop_flagged(self):
        assert "RA202" in self.by_fn.get("races_in_loop", set())

    def test_module_level_state_flagged(self):
        assert "RA202" in self.by_fn.get("races_global", set())

    def test_mutation_finished_before_await_clean(self):
        assert "mutates_before_await_only" not in self.by_fn

    def test_mutation_under_lock_clean(self):
        assert "mutates_under_lock" not in self.by_fn

    def test_metric_calls_are_not_mutations(self):
        assert "counts_metrics" not in self.by_fn

    def test_target_named_in_message(self):
        found = findings_for("ra202.py")
        races = next(v for v in found if v.subject.endswith(".races"))
        assert "self.pending" in races.message


class TestRA203FireAndForget:
    def setup_method(self):
        self.by_fn = by_subject(findings_for("ra203.py"))

    def test_discarded_spawns_flagged(self):
        found = findings_for("ra203.py")
        hits = [v for v in found if v.rule == "RA203"]
        assert len(hits) == 2  # ensure_future AND create_task
        assert all(
            v.subject.endswith("fires_and_forgets") for v in hits
        )

    def test_retained_task_clean(self):
        assert "keeps_reference" not in self.by_fn

    def test_awaited_spawn_clean(self):
        assert "awaits_task" not in self.by_fn


class TestRA204LockAcrossAwait:
    def setup_method(self):
        self.by_fn = by_subject(findings_for("ra204.py"))

    def test_unbounded_put_under_lock_flagged(self):
        assert "RA204" in self.by_fn.get("holds_lock_across_put", set())

    def test_bare_wait_under_lock_flagged(self):
        assert "RA204" in self.by_fn.get("holds_lock_across_wait", set())

    def test_wait_for_is_bounded_and_clean(self):
        assert "bounded_under_lock" not in self.by_fn

    def test_shrunk_critical_section_clean(self):
        assert "copies_then_awaits" not in self.by_fn


class TestRA205UnawaitedCoroutine:
    def setup_method(self):
        self.by_fn = by_subject(findings_for("ra205.py"))

    def test_bare_coroutine_call_flagged(self):
        assert "RA205" in self.by_fn.get("drops_coroutine", set())

    def test_awaited_call_clean(self):
        assert "awaits_coroutine" not in self.by_fn

    def test_spawned_call_clean(self):
        assert "spawns_coroutine" not in self.by_fn


class TestShippedServeLayerIsClean:
    def test_no_async_findings_in_src(self):
        import repro

        package_dir = os.path.dirname(os.path.abspath(repro.__file__))
        project = build_project([package_dir])
        assert async_violations(project) == []
