"""Tests for the opt-in :class:`MonitorAuditor` hook on the monitor."""

from __future__ import annotations

import time

import pytest

from repro.audit import MonitorAuditor
from repro.core.monitor import TopKPairsMonitor
from repro.datasets.synthetic import make_stream
from repro.exceptions import AuditViolationError
from repro.scoring.library import k_closest_pairs

from tests.conftest import random_rows


def make_audited_monitor(window=32, k=4, **audit_kwargs):
    monitor = TopKPairsMonitor(window, 2, audit=True, **audit_kwargs)
    monitor.register_query(k_closest_pairs(2), k=k)
    return monitor


class TestEnablement:
    def test_default_is_off(self):
        assert TopKPairsMonitor(16, 2).auditor is None

    def test_audit_true_attaches_auditor(self):
        monitor = TopKPairsMonitor(16, 2, audit=True)
        assert isinstance(monitor.auditor, MonitorAuditor)
        assert monitor.auditor.interval == 1

    def test_env_variable_enables(self, monkeypatch):
        monkeypatch.setenv("REPRO_AUDIT", "1")
        assert TopKPairsMonitor(16, 2).auditor is not None

    def test_env_variable_zero_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_AUDIT", "0")
        assert TopKPairsMonitor(16, 2).auditor is None

    def test_explicit_false_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_AUDIT", "1")
        assert TopKPairsMonitor(16, 2, audit=False).auditor is None

    def test_invalid_intervals_rejected(self):
        monitor = TopKPairsMonitor(16, 2)
        with pytest.raises(ValueError):
            MonitorAuditor(monitor, interval=0)
        with pytest.raises(ValueError):
            MonitorAuditor(monitor, cross_check_interval=-1)


class TestCleanStream:
    def test_synthetic_stream_every_tick_no_violations(self):
        monitor = make_audited_monitor()
        stream = make_stream("uniform", num_attributes=2, seed=3)
        for _, values in zip(range(200), stream):
            monitor.append(values)
        auditor = monitor.auditor
        assert auditor.violations == []
        assert auditor.ticks == 200
        assert auditor.checks_run == 200

    def test_sampling_interval_respected(self):
        monitor = make_audited_monitor(audit_interval=16)
        for values in random_rows(100, 2, seed=4):
            monitor.append(values)
        assert monitor.auditor.checks_run == 100 // 16

    def test_cross_checks_sampled_and_clean(self):
        monitor = make_audited_monitor(audit_cross_check_interval=25)
        for values in random_rows(100, 2, seed=5):
            monitor.append(values)
        auditor = monitor.auditor
        assert auditor.cross_checks_run == 4
        assert auditor.violations == []

    def test_batch_ingestion_audited_once_per_batch(self):
        monitor = make_audited_monitor()
        rows = random_rows(90, 2, seed=6)
        monitor.extend(rows, batch_size=10)
        auditor = monitor.auditor
        assert auditor.violations == []
        # One audit per batch boundary, not per row.
        assert auditor.ticks == 9


class TestCorruptionCaught:
    def _maintainer(self, monitor):
        return next(iter(monitor._groups.values())).maintainer

    def test_corrupt_pst_node_raises_at_next_tick(self):
        monitor = make_audited_monitor()
        rows = random_rows(60, 2, seed=7)
        for values in rows[:50]:
            monitor.append(values)
        pst = self._maintainer(monitor).pst
        root = pst.root
        child = root.left or root.right
        root.point, child.point = child.point, root.point
        with pytest.raises(AuditViolationError) as excinfo:
            monitor.append(rows[50])
        # The intervening tick may reshape the tree, so the swap can
        # surface as any PST structural rule (heap order / split keys).
        assert any(
            v.rule.startswith("PST-") for v in excinfo.value.violations
        )
        assert monitor.auditor.violations  # also accumulated

    def test_check_now_reports_without_stream_activity(self):
        monitor = make_audited_monitor()
        for values in random_rows(50, 2, seed=8):
            monitor.append(values)
        monitor.auditor.raise_on_violation = False
        maintainer = self._maintainer(monitor)
        maintainer.pst.delete(maintainer.skyband[0])
        found = monitor.auditor.check_now()
        assert any(v.rule == "SKB-PST" for v in found)

    def test_cross_check_catches_missing_member(self):
        # Remove a skyband member *consistently* (all structures agree):
        # only the brute-force recomputation can tell something is gone.
        from repro.core.skyband_update import update_skyband_and_staircase

        monitor = make_audited_monitor()
        for values in random_rows(50, 2, seed=9):
            monitor.append(values)
        monitor.auditor.raise_on_violation = False
        maintainer = self._maintainer(monitor)
        # Pick a victim outside every continuous answer, or its absence
        # would already trip the structural ANS-SNAP check.
        answered = {
            p.uid
            for handle in monitor._handles.values()
            for p in handle.state.answer
        }
        victim = next(
            p for p in maintainer.skyband if p.uid not in answered
        )
        survivors = [p for p in maintainer.skyband if p.uid != victim.uid]
        skyband, staircase = update_skyband_and_staircase(
            survivors, maintainer.K
        )
        maintainer._set_skyband(skyband, staircase)
        maintainer.pst.delete(victim)
        maintainer._by_oldest[victim.oldest_seq].remove(victim)
        if not maintainer._by_oldest[victim.oldest_seq]:
            del maintainer._by_oldest[victim.oldest_seq]
        assert monitor.auditor.check_now() == []  # structurally clean
        found = monitor.auditor.check_now(cross_check=True)
        assert any(v.rule == "SKB-BRUTE" for v in found)

    def test_raise_on_violation_false_collects(self):
        monitor = make_audited_monitor()
        monitor.auditor.raise_on_violation = False
        rows = random_rows(60, 2, seed=10)
        for values in rows[:50]:
            monitor.append(values)
        maintainer = self._maintainer(monitor)
        maintainer.pst.delete(maintainer.skyband[0])
        monitor.append(rows[50])  # does not raise
        assert any(
            v.rule == "SKB-PST" for v in monitor.auditor.violations
        )

    def test_audit_violation_error_payload(self):
        monitor = make_audited_monitor()
        rows = random_rows(40, 2, seed=11)
        for values in rows[:30]:
            monitor.append(values)
        maintainer = self._maintainer(monitor)
        maintainer.pst.delete(maintainer.skyband[0])
        with pytest.raises(AuditViolationError) as excinfo:
            monitor.append(rows[30])
        err = excinfo.value
        assert isinstance(err, AssertionError)
        assert err.violations
        assert "SKB-PST" in str(err)


class TestOverhead:
    def test_every_tick_audit_under_10x_on_1k_stream(self):
        rows = random_rows(1_000, 2, seed=12)

        def run(audit):
            monitor = TopKPairsMonitor(128, 2, audit=audit)
            monitor.register_query(k_closest_pairs(2), k=4)
            start = time.perf_counter()
            for values in rows:
                monitor.append(values)
            elapsed = time.perf_counter() - start
            if audit:
                assert monitor.auditor.violations == []
            return elapsed

        # Warm both paths once, then measure; the acceptance bar is
        # ~10x, asserted at 15x to keep noisy CI machines green.
        run(False)
        run(True)
        baseline = min(run(False) for _ in range(2))
        audited = min(run(True) for _ in range(2))
        assert audited < 15 * baseline, (
            f"audited={audited:.3f}s baseline={baseline:.3f}s "
            f"ratio={audited / baseline:.1f}x"
        )
