"""Tests for the project call graph (`repro.audit.callgraph`): edge
resolution on tricky shapes and transitive hot-path propagation."""

from __future__ import annotations

import os

from repro.audit.callgraph import (
    build_project,
    hot_functions,
    hot_path_violations,
)
from repro.audit.lint import analyze_paths, lint_paths

FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "fixtures")
SHAPES = os.path.join(FIXTURES, "shapes")
HOTPROJ = os.path.join(FIXTURES, "hotproj")


def edges_of(project, kinds=None):
    out = set()
    for edge_list in project.edges.values():
        for edge in edge_list:
            if kinds is None or edge.kind in kinds:
                out.add((edge.caller, edge.callee, edge.kind))
    return out


class TestShapes:
    def setup_method(self):
        self.project = build_project([SHAPES])
        self.edges = edges_of(self.project)

    def test_bound_methods_resolve(self):
        assert ("shapes.methods.Widget.spin",
                "shapes.methods.Widget.turn", "method") in self.edges
        assert ("shapes.methods.drive",
                "shapes.methods.Widget.spin", "method") in self.edges

    def test_inherited_method_resolves_through_base(self):
        assert ("shapes.methods.Widget.spin",
                "shapes.methods.Base.inherited", "method") in self.edges

    def test_self_attr_and_annotated_param_types(self):
        # self.widget = Widget() in __init__ types the attribute ...
        assert ("shapes.methods.Engine.run",
                "shapes.methods.Widget.spin", "method") in self.edges
        # ... and engine: Engine annotation types the parameter
        assert ("shapes.methods.drive_attr",
                "shapes.methods.Engine.run", "method") in self.edges

    def test_from_import_alias(self):
        assert ("shapes.aliasing.via_from_alias",
                "shapes.targets.helper", "direct") in self.edges

    def test_module_alias(self):
        assert ("shapes.aliasing.via_module_alias",
                "shapes.targets.other_helper", "direct") in self.edges

    def test_decorated_function_still_resolves(self):
        assert ("shapes.decorated.caller",
                "shapes.decorated.wrapped_step", "direct") in self.edges

    def test_recursion_and_cycles_terminate(self):
        assert ("shapes.recur.countdown",
                "shapes.recur.countdown", "direct") in self.edges
        assert ("shapes.recur.ping",
                "shapes.recur.pong", "direct") in self.edges
        assert ("shapes.recur.pong",
                "shapes.recur.ping", "direct") in self.edges
        # hot_functions must not loop forever on the cycle
        hot_functions(self.project)

    def test_functools_partial_is_a_reference_edge(self):
        partials = edges_of(self.project, kinds={"partial"})
        assert ("shapes.partials.bind_both_ways",
                "shapes.targets.helper", "partial") in partials
        # both spellings (functools.partial and bare partial) resolve
        count = sum(
            1 for edge_list in self.project.edges.values()
            for edge in edge_list
            if edge.kind == "partial"
            and edge.callee == "shapes.targets.helper"
        )
        assert count == 2


class TestHotPathPropagation:
    def setup_method(self):
        self.project = build_project([HOTPROJ])

    def test_hot_seeds_and_transitive_closure(self):
        hot = hot_functions(self.project)
        assert "hotproj.core.skyband.sweep_skyband" in hot
        assert "hotproj.analysis.helpers.merge_candidates" in hot
        assert "hotproj.analysis.helpers.rank_filter" in hot
        assert "hotproj.analysis.helpers.stamp_tick" in hot
        # not reachable from any hot seed
        assert "hotproj.analysis.helpers.offline_report" not in hot

    def test_witness_chain_runs_seed_to_function(self):
        hot = hot_functions(self.project)
        chain = hot["hotproj.analysis.helpers.rank_filter"]
        assert chain[0] == "hotproj.core.skyband.sweep_skyband"
        assert chain[-1] == "hotproj.analysis.helpers.rank_filter"
        assert len(chain) == 3  # two call-hops from the entry point

    def test_two_hop_helper_flagged_where_per_file_lint_is_blind(self):
        # The per-file pass cannot see it: analysis/ is not a hot dir.
        per_file = lint_paths([HOTPROJ])
        assert {v.rule for v in per_file} & {"RA105", "RA106", "RA108"} \
            == set()
        # The project pass can.
        found = hot_path_violations(self.project)
        rules = {v.rule for v in found}
        assert rules == {"RA105", "RA106", "RA108"}
        helper_path = os.path.join("analysis", "helpers.py")
        assert all(helper_path in v.location for v in found)

    def test_chain_is_named_in_the_message(self):
        found = hot_path_violations(self.project)
        ra105 = next(v for v in found if v.rule == "RA105")
        assert "sweep_skyband -> merge_candidates -> rank_filter" \
            in ra105.message

    def test_unreachable_function_with_same_patterns_clean(self):
        found = hot_path_violations(self.project)
        assert not any("offline_report" in v.message for v in found)

    def test_analyze_paths_carries_project_findings(self):
        result = analyze_paths([HOTPROJ])
        assert {v.rule for v in result.violations} \
            == {"RA105", "RA106", "RA108"}
        # with project analysis off, the tree looks clean
        result = analyze_paths([HOTPROJ], project=False)
        assert result.violations == []


class TestModuleModel:
    def test_module_names_from_package_walk(self):
        project = build_project([HOTPROJ])
        assert "hotproj.core.skyband" in project.modules
        assert "hotproj.analysis.helpers" in project.modules

    def test_syntax_error_file_is_skipped_not_fatal(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n")
        good = tmp_path / "fine.py"
        good.write_text("__all__ = []\n\ndef f():\n    return 1\n")
        project = build_project([str(tmp_path)])
        assert "fine" in project.modules
        assert "broken" not in project.modules
