"""Tests for RA301 protocol conformance (`repro.audit.conformance`)."""

from __future__ import annotations

import os

from repro.audit.callgraph import build_project
from repro.audit.conformance import conformance_violations

FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "fixtures")
PROTO = os.path.join(FIXTURES, "proto")


class TestProtocolDrift:
    def setup_method(self):
        self.found = conformance_violations(build_project([PROTO]))
        self.by_subject = {}
        for violation in self.found:
            self.by_subject.setdefault(violation.subject, []).append(
                violation
            )

    def test_exactly_the_planted_findings(self):
        assert {v.rule for v in self.found} == {"RA301"}
        assert len(self.found) == 5

    def test_undeclared_op_missing_handler_and_encoder(self):
        ghost = self.by_subject["ghost"]
        assert len(ghost) == 2
        messages = " | ".join(v.message for v in ghost)
        assert "_op_ghost" in messages and "client encoder" in messages
        assert all("protocol.py" in v.location for v in ghost)

    def test_op_with_handler_but_no_encoder(self):
        phantom = self.by_subject["phantom"]
        assert len(phantom) == 1
        assert "client encoder" in phantom[0].message

    def test_handler_for_undeclared_op(self):
        rogue = self.by_subject["rogue"]
        assert len(rogue) == 1
        assert "unreachable" in rogue[0].message
        assert "server.py" in rogue[0].location

    def test_client_encoding_undeclared_op(self):
        undeclared = self.by_subject["undeclared"]
        assert len(undeclared) == 1
        assert "client.py" in undeclared[0].location

    def test_fully_wired_ops_are_near_misses(self):
        assert "ingest" not in self.by_subject
        assert "snapshot" not in self.by_subject


class TestConformanceScope:
    def test_tree_without_protocol_module_is_silent(self, tmp_path):
        module = tmp_path / "plain.py"
        module.write_text("__all__ = []\n\ndef f():\n    return 1\n")
        project = build_project([str(tmp_path)])
        assert conformance_violations(project) == []

    def test_shipped_serve_layer_conforms(self):
        import repro

        package_dir = os.path.dirname(os.path.abspath(repro.__file__))
        project = build_project([package_dir])
        assert conformance_violations(project) == []
