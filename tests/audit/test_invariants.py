"""Tests for the runtime invariant checkers (`repro.audit.invariants`).

Two angles on every checker:

* **property-style** — random insert/delete workloads on the real
  structures must keep the checker silent;
* **mutation** — corrupting one node (swapping ages, breaking a split
  key, skewing a width) must make the checker report the matching rule.
"""

from __future__ import annotations

import random

import pytest

from repro.audit import (
    brute_force_skyband,
    check_maintainer,
    check_monitor,
    check_pst,
    check_skiplist,
    check_skyband,
    check_staircase,
    check_window,
    cross_check_monitor,
)
from repro.core.monitor import TopKPairsMonitor
from repro.core.staircase import KStaircase
from repro.scoring.library import k_closest_pairs
from repro.stream.manager import StreamManager
from repro.structures.pst import PrioritySearchTree
from repro.structures.skiplist import SkipList

from tests.conftest import make_pair_at, random_rows


def rules(violations):
    return {v.rule for v in violations}


def build_pairs(age_scores, now_seq=100):
    return [make_pair_at(a_s, now_seq=now_seq) for a_s in age_scores]


# ----------------------------------------------------------------------
# priority search tree
# ----------------------------------------------------------------------
class TestCheckPST:
    def test_empty_tree_clean(self):
        assert check_pst(PrioritySearchTree()) == []

    @pytest.mark.parametrize("seed", range(5))
    def test_random_insert_delete_sequences_stay_clean(self, seed):
        rng = random.Random(seed)
        pst = PrioritySearchTree()
        live = []
        for step in range(300):
            if live and rng.random() < 0.4:
                pair = live.pop(rng.randrange(len(live)))
                pst.delete(pair)
            else:
                pair = make_pair_at(
                    (rng.randint(1, 90), rng.random()), now_seq=100
                )
                pst.insert(pair)
                live.append(pair)
            assert check_pst(pst) == [], f"violation at step {step}"

    def test_swapped_ages_reported(self):
        # Swap the points of a parent and its child: the child's point
        # becomes more recent than the parent's — heap order broken.
        pst = PrioritySearchTree(
            build_pairs([(age, float(age)) for age in range(1, 20)])
        )
        root = pst.root
        child = root.left or root.right
        root.point, child.point = child.point, root.point
        found = rules(check_pst(pst))
        assert "PST-HEAP" in found

    def test_broken_split_key_reported(self):
        pst = PrioritySearchTree(
            build_pairs([(age, float(age)) for age in range(1, 20)])
        )
        node = pst.root
        while node.left is None and node.right is None:
            node = node.left or node.right
        # Move the split below every stored score: the left subtree now
        # holds keys above it.
        node.split = (float("-inf"),)
        assert "PST-SPLIT" in rules(check_pst(pst))

    def test_size_corruption_reported(self):
        pst = PrioritySearchTree(
            build_pairs([(age, float(age)) for age in range(1, 10)])
        )
        pst.root.size += 1
        assert rules(check_pst(pst)) == {"PST-SIZE"}

    def test_violation_carries_paper_reference_and_subject(self):
        pst = PrioritySearchTree(
            build_pairs([(age, float(age)) for age in range(1, 20)])
        )
        root = pst.root
        child = root.left or root.right
        root.point, child.point = child.point, root.point
        violation = [
            v for v in check_pst(pst) if v.rule == "PST-HEAP"
        ][0]
        assert "IV-A" in violation.paper_ref
        assert "PSTNode" in violation.subject


# ----------------------------------------------------------------------
# skip list
# ----------------------------------------------------------------------
class TestCheckSkipList:
    def test_empty_clean(self):
        assert check_skiplist(SkipList(seed=0)) == []

    @pytest.mark.parametrize("seed", range(5))
    def test_random_insert_remove_sequences_stay_clean(self, seed):
        rng = random.Random(seed)
        sl = SkipList(seed=seed)
        live = []
        for step in range(300):
            if live and rng.random() < 0.4:
                value = live.pop(rng.randrange(len(live)))
                sl.remove(value)
            else:
                value = rng.randint(0, 50)  # duplicates exercised
                sl.insert(value)
                live.append(value)
            assert check_skiplist(sl) == [], f"violation at step {step}"

    def _filled(self, n=40, seed=3):
        rng = random.Random(seed)
        return SkipList((rng.random() for _ in range(n)), seed=seed)

    def test_width_corruption_reported(self):
        sl = self._filled()
        node = sl._head.forward[0]
        node.width[0] += 1
        assert "SKIP-WIDTH" in rules(check_skiplist(sl))

    def test_order_corruption_reported(self):
        sl = self._filled()
        first = sl._head.forward[0]
        second = first.forward[0]
        first.key, second.key = second.key, first.key
        first.value, second.value = second.value, first.value
        assert "SKIP-ORDER" in rules(check_skiplist(sl))

    def test_stale_cached_key_reported(self):
        sl = self._filled()
        sl._head.forward[0].key = -1.0
        assert "SKIP-KEY" in rules(check_skiplist(sl))

    def test_broken_prev_pointer_reported(self):
        sl = self._filled()
        node = sl._head.forward[0].forward[0]
        node.prev = None
        assert "SKIP-PREV" in rules(check_skiplist(sl))

    def test_size_corruption_reported(self):
        sl = self._filled()
        sl._size += 2
        assert "SKIP-SIZE" in rules(check_skiplist(sl))


# ----------------------------------------------------------------------
# staircase / skyband
# ----------------------------------------------------------------------
class TestCheckStaircase:
    def test_valid_staircase_clean(self):
        sc = KStaircase([((1.0, -5, 1), -3), ((2.0, -4, 2), -7)])
        assert check_staircase(sc) == []

    def test_score_order_violation(self):
        sc = KStaircase([((2.0, -4, 2), -3), ((1.0, -5, 1), -7)])
        assert "STAIR-ORDER" in rules(check_staircase(sc))

    def test_age_monotonicity_violation(self):
        sc = KStaircase([((1.0, -5, 1), -9), ((2.0, -4, 2), -3)])
        assert "STAIR-AGE" in rules(check_staircase(sc))


class TestCheckSkyband:
    def test_valid_skyband_clean(self):
        # Ascending scores with ascending recency: nobody dominates.
        pairs = build_pairs([(10 - i, float(i)) for i in range(5)])
        pairs.sort(key=lambda p: p.score_key)
        assert check_skyband(pairs, K=1) == []

    def test_dominated_member_reported(self):
        # (age 2, score 1.0) dominates (age 5, score 2.0) — with K=1 the
        # second pair must not be a member.
        pairs = build_pairs([(2, 1.0), (5, 2.0)])
        pairs.sort(key=lambda p: p.score_key)
        assert "SKB-MIN" in rules(check_skyband(pairs, K=1))
        # ... but is a legitimate member at K=2.
        assert check_skyband(pairs, K=2) == []

    def test_out_of_order_reported(self):
        pairs = build_pairs([(2, 2.0), (3, 1.0)])  # descending scores
        assert "SKB-ORDER" in rules(check_skyband(pairs, K=5))

    def test_duplicate_reported(self):
        pair = build_pairs([(2, 1.0)])[0]
        assert "SKB-DUP" in rules(check_skyband([pair, pair], K=5))

    def test_expired_member_reported(self):
        pairs = build_pairs([(3, 1.0)])
        assert "SKB-WINDOW" in rules(
            check_skyband(pairs, K=5, window=[])
        )


# ----------------------------------------------------------------------
# stream manager / full monitor
# ----------------------------------------------------------------------
class TestCheckWindow:
    def test_live_manager_clean(self):
        mgr = StreamManager(16, 3)
        for values in random_rows(60, 3, seed=7):
            mgr.append(values)
            assert check_window(mgr) == []

    def test_node_index_corruption_reported(self):
        mgr = StreamManager(16, 2)
        for values in random_rows(20, 2, seed=1):
            mgr.append(values)
        seq = next(iter(mgr._nodes))
        mgr._nodes[seq + 1000] = mgr._nodes.pop(seq)
        assert "WIN-NODE" in rules(check_window(mgr))

    def test_attribute_list_drift_reported(self):
        mgr = StreamManager(16, 2)
        for values in random_rows(20, 2, seed=2):
            mgr.append(values)
        stale = mgr.objects()[0]
        node = mgr.node_for(stale, 0)
        mgr.attribute_list(0).remove_node(node)
        assert "WIN-LIST" in rules(check_window(mgr))


class TestMaintainerAndMonitorChecks:
    def _monitor(self, steps=120, window=32, k=4):
        monitor = TopKPairsMonitor(window, 2)
        scoring = k_closest_pairs(2)
        monitor.register_query(scoring, k=k)
        for values in random_rows(steps, 2, seed=11):
            monitor.append(values)
        return monitor

    def test_live_monitor_clean(self):
        monitor = self._monitor()
        assert check_monitor(monitor) == []
        assert cross_check_monitor(monitor) == []

    def test_stale_staircase_reported(self):
        monitor = self._monitor()
        group = next(iter(monitor._groups.values()))
        maintainer = group.maintainer
        # Simulate the forgotten-refresh-on-expiry bug: drop the last
        # staircase step so dominance tests use stale thresholds.
        points = maintainer.staircase.points()[:-1]
        maintainer._staircase = KStaircase(points)
        assert "STAIR-SYNC" in rules(check_maintainer(maintainer))

    def test_pst_desync_reported(self):
        monitor = self._monitor()
        maintainer = next(iter(monitor._groups.values())).maintainer
        maintainer.pst.delete(maintainer.skyband[0])
        assert "SKB-PST" in rules(check_maintainer(maintainer))

    def test_expiry_index_desync_reported(self):
        monitor = self._monitor()
        maintainer = next(iter(monitor._groups.values())).maintainer
        oldest_seq = next(iter(maintainer._by_oldest))
        maintainer._by_oldest[oldest_seq + 100_000] = \
            maintainer._by_oldest.pop(oldest_seq)
        assert "SKB-INDEX" in rules(check_maintainer(maintainer))

    def test_continuous_answer_desync_reported(self):
        monitor = self._monitor()
        handle = next(iter(monitor._handles.values()))
        handle.state._by_score = handle.state._by_score[:-1]
        assert "ANS-SNAP" in rules(check_monitor(monitor))

    def test_brute_force_catches_missing_skyband_member(self):
        monitor = self._monitor()
        maintainer = next(iter(monitor._groups.values())).maintainer
        victim = maintainer.skyband[0]
        # A consistent-looking but *incomplete* skyband: every structure
        # agrees, yet one rightful member is missing — only the
        # brute-force cross-check can notice.
        survivors = [p for p in maintainer.skyband if p.uid != victim.uid]
        from repro.core.skyband_update import update_skyband_and_staircase
        skyband, staircase = update_skyband_and_staircase(
            survivors, maintainer.K
        )
        maintainer._set_skyband(skyband, staircase)
        maintainer.pst.delete(victim)
        maintainer._by_oldest[victim.oldest_seq].remove(victim)
        if not maintainer._by_oldest[victim.oldest_seq]:
            del maintainer._by_oldest[victim.oldest_seq]
        assert check_maintainer(maintainer) == []
        assert "SKB-BRUTE" in rules(cross_check_monitor(monitor))


class TestBruteForceSkyband:
    def test_agrees_with_reference_implementation(self):
        from repro.baselines.brute import BruteForceReference

        scoring = k_closest_pairs(2)
        reference = BruteForceReference(scoring, window_size=24)
        rows = random_rows(40, 2, seed=5)
        for values in rows:
            reference.append(values)
        objects = list(reference._window)
        for K in (1, 3, 7):
            expected = {p.uid for p in reference.skyband(K)}
            actual = {
                p.uid
                for p in brute_force_skyband(objects, scoring, K)
            }
            assert actual == expected
