"""Tests for the project-specific static pass (`repro.audit.lint`)."""

from __future__ import annotations

import os
import textwrap

from repro.audit import RULES, lint_file, lint_paths, lint_source

import repro


def rules_of(violations):
    return {v.rule for v in violations}


def lint(source, path="pkg/module.py", **kwargs):
    return lint_source(textwrap.dedent(source), path, **kwargs)


def lintc(source, path="pkg/module.py", **kwargs):
    """Dedent, prepend an empty ``__all__`` (clean RA103), then lint."""
    return lint_source(
        CLEAN_HEADER + textwrap.dedent(source), path, **kwargs
    )


CLEAN_HEADER = '__all__ = []\n'


class TestRA100Parse:
    def test_syntax_error_reported(self):
        found = lint("def broken(:\n")
        assert rules_of(found) == {"RA100"}
        assert "module.py" in found[0].location


class TestRA101FloatScoreEquality:
    def test_score_equality_flagged(self):
        found = lintc(
            """
            def f(pair, other):
                return pair.score == other.score
            """
        )
        assert "RA101" in rules_of(found)

    def test_inequality_flagged(self):
        found = lintc(
            """
            def f(score, baseline):
                return score != baseline
            """
        )
        assert "RA101" in rules_of(found)

    def test_non_score_names_ignored(self):
        found = lintc(
            """
            def f(count, total):
                return count == total
            """
        )
        assert "RA101" not in rules_of(found)

    def test_tolerance_helper_exempt(self):
        found = lintc(
            """
            def scores_close(score, other, eps=1e-9):
                return score == other or abs(score - other) < eps
            """
        )
        assert "RA101" not in rules_of(found)

    def test_ordering_comparisons_allowed(self):
        found = lintc(
            """
            def f(pair, other):
                return pair.score < other.score
            """
        )
        assert "RA101" not in rules_of(found)


class TestRA102MutableDefault:
    def test_list_default_flagged(self):
        found = lintc("def f(items=[]):\n    return items\n")
        assert "RA102" in rules_of(found)

    def test_dict_set_call_defaults_flagged(self):
        found = lintc(
            "def f(a={}, b=set(), c=dict()):\n    return a, b, c\n"
        )
        assert sum(v.rule == "RA102" for v in found) == 3

    def test_immutable_defaults_clean(self):
        found = lintc(
            "def f(a=(), b=None, c=1, d='x', e=frozenset()):\n"
            + "    return a, b, c, d, e\n"
        )
        assert "RA102" not in rules_of(found)

    def test_lambda_default_flagged(self):
        found = lintc("g = lambda xs=[]: xs\n")
        assert "RA102" in rules_of(found)


class TestRA103RA104AllHygiene:
    def test_public_module_without_all_flagged(self):
        found = lint("def api():\n    return 1\n")
        assert "RA103" in rules_of(found)

    def test_private_module_exempt(self):
        found = lint("def api():\n    return 1\n", path="pkg/_helpers.py")
        assert "RA103" not in rules_of(found)

    def test_dunder_main_exempt(self):
        found = lint("def api():\n    return 1\n", path="pkg/__main__.py")
        assert "RA103" not in rules_of(found)

    def test_init_requires_all(self):
        found = lint("def api():\n    return 1\n", path="pkg/__init__.py")
        assert "RA103" in rules_of(found)

    def test_stale_export_flagged(self):
        found = lint('__all__ = ["missing"]\n')
        assert "RA104" in rules_of(found)
        assert "missing" in found[0].message

    def test_imported_and_conditional_names_count(self):
        found = lint(
            """
            __all__ = ["Sequence", "flag", "helper"]
            from typing import Sequence

            if True:
                flag = 1
            else:
                flag = 2

            def helper():
                return flag
            """
        )
        assert rules_of(found) == set()

    def test_augmented_all_recognized(self):
        found = lint(
            """
            __all__ = ["first"]
            __all__ += ["second"]
            __all__.append("third")

            first, second, third = 1, 2, 3
            """
        )
        assert rules_of(found) == set()


class TestRA105RA106HotPathRules:
    LIST_MEMBERSHIP = CLEAN_HEADER + textwrap.dedent(
        """
        def f(items):
            for item in items:
                if item in [1, 2, 3]:
                    return item
        """
    )
    INSERT_FRONT = CLEAN_HEADER + textwrap.dedent(
        """
        def f(items, out):
            for item in items:
                out.insert(0, item)
        """
    )

    def test_flagged_in_hot_path_modules(self):
        for path in ("src/repro/core/monitor.py",
                     "src/repro/structures/pst.py"):
            assert "RA105" in rules_of(
                lint_source(self.LIST_MEMBERSHIP, path)
            )
            assert "RA106" in rules_of(
                lint_source(self.INSERT_FRONT, path)
            )

    def test_ignored_outside_hot_paths(self):
        found = lint_source(
            self.LIST_MEMBERSHIP + self.INSERT_FRONT.replace("def f", "def g"),
            "src/repro/datasets/synthetic.py",
        )
        assert rules_of(found) == set()

    def test_ignored_outside_loops_even_in_hot_paths(self):
        source = CLEAN_HEADER + textwrap.dedent(
            """
            def f(item, out):
                out.insert(0, item)
                return item in [1, 2, 3]
            """
        )
        assert rules_of(lint_source(source, "src/repro/core/x.py")) == set()

    def test_hot_path_override_parameter(self):
        found = lint_source(
            self.LIST_MEMBERSHIP, "anywhere/else.py", hot_path=True
        )
        assert "RA105" in rules_of(found)


class TestRA108WallClockTiming:
    WALL_CLOCK = CLEAN_HEADER + textwrap.dedent(
        """
        import time

        def f():
            return time.time()
        """
    )

    def test_flagged_in_hot_path_modules(self):
        for path in ("src/repro/core/maintenance.py",
                     "src/repro/structures/skiplist.py",
                     "src/repro/stream/manager.py",
                     "src/repro/obs/recorder.py"):
            assert "RA108" in rules_of(lint_source(self.WALL_CLOCK, path))

    def test_aliased_module_import_flagged(self):
        found = lintc(
            """
            import time as t

            def f():
                return t.time()
            """,
            path="src/repro/core/x.py",
        )
        assert "RA108" in rules_of(found)

    def test_from_import_flagged(self):
        found = lintc(
            """
            from time import time

            def f():
                return time()
            """,
            path="src/repro/core/x.py",
        )
        assert "RA108" in rules_of(found)

    def test_perf_counter_clean(self):
        found = lintc(
            """
            from time import perf_counter
            import time

            def f():
                return perf_counter() + time.perf_counter()
            """,
            path="src/repro/core/x.py",
        )
        assert "RA108" not in rules_of(found)

    def test_other_modules_time_attr_clean(self):
        found = lintc(
            """
            def f(event):
                return event.time()
            """,
            path="src/repro/core/x.py",
        )
        assert "RA108" not in rules_of(found)

    def test_ignored_outside_hot_paths(self):
        found = lint_source(self.WALL_CLOCK, "src/repro/datasets/loader.py")
        assert "RA108" not in rules_of(found)

    def test_suppressible(self):
        found = lintc(
            "import time\n"
            + "def f():\n"
            + "    return time.time()  "
            + "# audit: allow[RA108] epoch stamp for export metadata\n",
            path="src/repro/core/x.py",
        )
        assert "RA108" not in rules_of(found)


class TestRA107BareExcept:
    def test_bare_except_flagged(self):
        found = lintc(
            """
            def f():
                try:
                    return 1
                except:
                    return 2
            """
        )
        assert "RA107" in rules_of(found)

    def test_typed_except_clean(self):
        found = lintc(
            """
            def f():
                try:
                    return 1
                except Exception:
                    return 2
            """
        )
        assert "RA107" not in rules_of(found)


class TestSuppression:
    def test_allow_tag_with_reason_suppresses(self):
        found = lintc(
            "def f(score, other):\n"
            + "    return score == other  "
            + "# audit: allow[RA101] sentinel compare, not arithmetic\n"
        )
        assert "RA101" not in rules_of(found)

    def test_bare_tag_does_not_suppress(self):
        found = lintc(
            "def f(score, other):\n"
            + "    return score == other  # audit: allow[RA101]\n"
        )
        assert "RA101" in rules_of(found)

    def test_tag_only_covers_named_rule(self):
        found = lintc(
            "def f(score, items=[]):\n"
            + "    return score == 1.0 or items  "
            + "# audit: allow[RA101] fixture\n"
        )
        assert "RA102" in rules_of(found)


class TestDriversAndShippedTree:
    def test_every_rule_has_catalogue_entry(self):
        for rule_id in ("RA100", "RA101", "RA102", "RA103",
                        "RA104", "RA105", "RA106", "RA107", "RA108"):
            assert rule_id in RULES

    def test_violation_location_has_line_and_column(self):
        found = lintc("def f(items=[]):\n    return items\n")
        location = found[0].location
        path, line, _col = location.rsplit(":", 2)
        assert path.endswith("module.py")
        assert int(line) >= 2

    def test_lint_file_and_paths_agree(self, tmp_path):
        bad = tmp_path / "core" / "bad.py"
        bad.parent.mkdir()
        bad.write_text("def f(xs=[]):\n    return xs\n")
        (tmp_path / "core" / "__pycache__").mkdir()
        (tmp_path / "core" / "__pycache__" / "junk.py").write_text("(((")
        from_file = lint_file(str(bad))
        from_tree = lint_paths([str(tmp_path)])
        assert rules_of(from_file) == {"RA102", "RA103"}
        assert from_tree == from_file  # __pycache__ skipped

    def test_shipped_tree_is_clean(self):
        package_dir = os.path.dirname(os.path.abspath(repro.__file__))
        assert lint_paths([package_dir]) == []
