"""Tests for strict/baseline gating, the JSON/SARIF emitters, stale
suppression detection (RA109) and the single-source rule catalogue."""

from __future__ import annotations

import io
import json
import os
import textwrap

import pytest

from repro.audit.baseline import (
    load_baseline,
    partition_violations,
    render_baseline,
)
from repro.audit.emit import to_json, to_sarif
from repro.audit.lint import analyze_paths
from repro.audit.rules import CATALOG, RULES, explain_rule, render_markdown
from repro.cli import run_lint
from repro.exceptions import ReproError

HERE = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(os.path.dirname(HERE))


def write_module(tmp_path, name, source):
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


class TestSuppressionsAndStaleAllows:
    def test_comma_separated_rule_list_suppresses_both(self, tmp_path):
        write_module(
            tmp_path, "core/hot.py",
            """\
            __all__ = []
            import time

            def f(items):
                for item in items:
                    if item in [1] and time.time():  # audit: allow[RA105,RA108] fixture needs both
                        return item
            """,
        )
        result = analyze_paths([str(tmp_path)])
        assert result.violations == []
        assert result.warnings == []  # both tags matched -> none stale

    def test_stale_allow_becomes_ra109_warning(self, tmp_path):
        write_module(
            tmp_path, "plain.py",
            """\
            __all__ = []

            def f(items=[]):  # audit: allow[RA102] shared sentinel list
                return items  # audit: allow[RA105] nothing fires here
            """,
        )
        result = analyze_paths([str(tmp_path)])
        assert result.violations == []  # RA102 suppressed
        assert [w.rule for w in result.warnings] == ["RA109"]
        assert "RA105" in result.warnings[0].message

    def test_allow_text_inside_docstring_is_inert(self, tmp_path):
        write_module(
            tmp_path, "docs_only.py",
            '''\
            __all__ = []

            def f():
                """Suppress with ``# audit: allow[RA105] reason``."""
                return 1
            ''',
        )
        result = analyze_paths([str(tmp_path)])
        assert result.violations == []
        assert result.warnings == []  # quoted tag neither fires nor rots

    def test_suppression_applies_to_project_scope_findings(self, tmp_path):
        write_module(
            tmp_path, "svc.py",
            """\
            __all__ = []
            import time

            async def handler():
                time.sleep(0.1)  # audit: allow[RA201] startup path, loop not serving yet
            """,
        )
        result = analyze_paths([str(tmp_path)])
        assert result.violations == []
        assert result.warnings == []


class TestBaseline:
    def make_violations(self, tmp_path):
        write_module(
            tmp_path, "bad.py",
            """\
            __all__ = []

            def f(items=[]):
                return items
            """,
        )
        return analyze_paths([str(tmp_path)]).violations

    def test_roundtrip_and_partition(self, tmp_path):
        violations = self.make_violations(tmp_path)
        assert [v.rule for v in violations] == ["RA102"]
        baseline_file = tmp_path / "baseline.json"
        baseline_file.write_text(render_baseline(violations))
        keys = load_baseline(str(baseline_file))
        new, grandfathered, unused = partition_violations(violations, keys)
        assert new == [] and len(grandfathered) == 1 and unused == []

    def test_line_shift_does_not_break_the_match(self, tmp_path):
        violations = self.make_violations(tmp_path)
        baseline_keys = {
            (v.rule, v.location.rsplit(":", 2)[0].replace(os.sep, "/"),
             v.message)
            for v in violations
        }
        # same finding, different line -> still grandfathered
        (tmp_path / "bad.py").write_text(
            "__all__ = []\n\n\n\n\ndef f(items=[]):\n    return items\n"
        )
        shifted = analyze_paths([str(tmp_path)]).violations
        new, grandfathered, _ = partition_violations(shifted, baseline_keys)
        assert new == [] and len(grandfathered) == 1

    def test_unused_entries_reported(self, tmp_path):
        violations = self.make_violations(tmp_path)
        keys = {("RA999", "gone.py", "never existed")}
        new, _grandfathered, unused = partition_violations(violations, keys)
        assert len(new) == 1
        assert unused == [("RA999", "gone.py", "never existed")]

    def test_missing_file_is_empty_and_garbage_raises(self, tmp_path):
        assert load_baseline(str(tmp_path / "absent.json")) == set()
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ReproError):
            load_baseline(str(bad))
        foreign = tmp_path / "foreign.json"
        foreign.write_text('{"format": "something-else"}')
        with pytest.raises(ReproError):
            load_baseline(str(foreign))


class TestEmitters:
    def sample(self, tmp_path):
        write_module(
            tmp_path, "bad.py",
            "__all__ = []\n\ndef f(items=[]):\n    return items\n",
        )
        return analyze_paths([str(tmp_path)])

    def test_json_document(self, tmp_path):
        result = self.sample(tmp_path)
        document = json.loads(to_json(result.violations, result.warnings))
        assert document["tool"] == "repro-lint"
        assert document["violations"][0]["rule"] == "RA102"
        assert document["violations"][0]["line"] == 3

    def test_sarif_document(self, tmp_path):
        result = self.sample(tmp_path)
        document = json.loads(
            to_sarif(result.violations, result.warnings,
                     track_baseline=True)
        )
        assert document["version"] == "2.1.0"
        run = document["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert "RA102" in rule_ids
        result0 = run["results"][0]
        assert result0["ruleId"] == "RA102"
        assert result0["baselineState"] == "new"
        region = result0["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 3
        assert region["startColumn"] >= 1  # SARIF columns are 1-based


class TestStrictCli:
    def run(self, argv):
        out = io.StringIO()
        code = run_lint(argv, out)
        return code, out.getvalue()

    def test_write_baseline_then_strict_passes(self, tmp_path):
        write_module(
            tmp_path, "bad.py",
            "__all__ = []\n\ndef f(items=[]):\n    return items\n",
        )
        baseline = tmp_path / "bl.json"
        code, output = self.run([
            str(tmp_path), "--write-baseline", "--baseline", str(baseline),
        ])
        assert code == 0 and "1 finding(s)" in output
        code, output = self.run([
            str(tmp_path), "--strict", "--baseline", str(baseline),
        ])
        assert code == 0
        assert "[baselined]" in output and "1 baselined" in output

    def test_strict_fails_on_new_finding_only(self, tmp_path):
        write_module(
            tmp_path, "bad.py",
            "__all__ = []\n\ndef f(items=[]):\n    return items\n",
        )
        baseline = tmp_path / "bl.json"
        self.run([str(tmp_path), "--write-baseline",
                  "--baseline", str(baseline)])
        write_module(
            tmp_path, "worse.py",
            "__all__ = []\n\ndef g(extra={}):\n    return extra\n",
        )
        code, output = self.run([
            str(tmp_path), "--strict", "--baseline", str(baseline),
        ])
        assert code == 1
        assert "worse.py" in output

    def test_non_strict_fails_on_any_finding(self, tmp_path):
        write_module(
            tmp_path, "bad.py",
            "__all__ = []\n\ndef f(items=[]):\n    return items\n",
        )
        code, _ = self.run([str(tmp_path)])
        assert code == 1

    def test_sarif_out_file(self, tmp_path):
        write_module(
            tmp_path, "bad.py",
            "__all__ = []\n\ndef f(items=[]):\n    return items\n",
        )
        out_file = tmp_path / "report.sarif"
        code, output = self.run([
            str(tmp_path), "--format", "sarif", "--out", str(out_file),
        ])
        assert code == 1 and str(out_file) in output
        document = json.loads(out_file.read_text())
        assert document["runs"][0]["results"][0]["ruleId"] == "RA102"

    def test_explain_prints_rationale_and_example(self):
        code, output = self.run(["--explain", "RA202"])
        assert code == 0
        assert "scheduling point" in output
        assert "async def update" in output

    def test_explain_unknown_rule_errors(self):
        with pytest.raises(SystemExit):
            self.run(["--explain", "RA999"])

    def test_repo_is_clean_under_strict_with_empty_baseline(self):
        src = os.path.join(REPO_ROOT, "src")
        baseline = os.path.join(REPO_ROOT, ".audit-baseline.json")
        assert load_baseline(baseline) == set()  # empty by policy
        code, output = self.run([src, "--strict", "--baseline", baseline])
        assert code == 0, output


class TestSingleSourceOfTruth:
    def test_every_rule_explained(self):
        for rule in CATALOG:
            text = explain_rule(rule.id)
            assert text is not None
            assert rule.id in text and "Example" in text and "Fix" in text

    def test_rules_mapping_covers_all_families(self):
        for rule_id in ("RA100", "RA109", "RA201", "RA202", "RA203",
                        "RA204", "RA205", "RA301"):
            assert rule_id in RULES

    def test_docs_catalogue_matches_render_markdown(self):
        docs_path = os.path.join(REPO_ROOT, "docs", "audit.md")
        with open(docs_path, encoding="utf-8") as handle:
            docs = handle.read()
        begin, end = "<!-- RULES:BEGIN -->", "<!-- RULES:END -->"
        assert begin in docs and end in docs
        block = docs.split(begin, 1)[1].split(end, 1)[0].strip("\n")
        assert block == render_markdown().strip("\n"), (
            "docs/audit.md rule catalogue has drifted from "
            "repro.audit.rules.render_markdown(); regenerate the block"
        )

    def test_audit_umbrella_lint_flag(self):
        from repro.cli import run_audit

        out = io.StringIO()
        code = run_audit(["--steps", "40", "--window", "32", "--lint"], out)
        assert code == 0
        assert "lint:" in out.getvalue()
