"""Tests for the basic maintainer, the linear scan and the brute-force
reference."""

from __future__ import annotations

import random

from repro.analysis.cost_model import Counters
from repro.baselines.basic import BasicMaintainer
from repro.baselines.brute import BruteForceReference
from repro.baselines.linear import linear_top_k
from repro.core.maintenance import SCaseMaintainer
from repro.core.pair import dominates
from repro.scoring.library import k_closest_pairs
from repro.stream.manager import StreamManager


def random_rows(count, d, seed):
    rng = random.Random(seed)
    return [tuple(rng.random() for _ in range(d)) for _ in range(count)]


class TestBasicMaintainer:
    def test_same_skyband_as_scase(self):
        sf = k_closest_pairs(2)
        mgr_a, mgr_b = StreamManager(20, 2), StreamManager(20, 2)
        basic = BasicMaintainer(sf, K=4)
        scase = SCaseMaintainer(sf, K=4)
        for row in random_rows(90, 2, seed=1):
            ev_a = mgr_a.append(row)
            basic.on_tick(mgr_a, ev_a.new, ev_a.expired)
            ev_b = mgr_b.append(row)
            scase.on_tick(mgr_b, ev_b.new, ev_b.expired)
        assert {p.uid for p in basic.skyband} == {p.uid for p in scase.skyband}

    def test_dominance_checks_exceed_scase_staircase_checks(self):
        """The staircase's whole purpose: far fewer comparisons (Fig 12)."""
        sf = k_closest_pairs(2)
        counters_basic, counters_scase = Counters(), Counters()
        mgr_a, mgr_b = StreamManager(60, 2), StreamManager(60, 2)
        basic = BasicMaintainer(sf, K=8, counters=counters_basic)
        scase = SCaseMaintainer(sf, K=8, counters=counters_scase)
        for row in random_rows(200, 2, seed=2):
            ev_a = mgr_a.append(row)
            basic.on_tick(mgr_a, ev_a.new, ev_a.expired)
            ev_b = mgr_b.append(row)
            scase.on_tick(mgr_b, ev_b.new, ev_b.expired)
        # Basic pays per-pair prefix scans; SCase pays one binary search
        # (counted as one staircase check) per pair.
        assert counters_basic.dominance_checks > (
            counters_scase.staircase_checks
        )


class TestLinearScan:
    def test_matches_prefix_of_skyband(self):
        sf = k_closest_pairs(2)
        manager = StreamManager(15, 2)
        maintainer = SCaseMaintainer(sf, K=5)
        ref = BruteForceReference(sf, 15)
        for row in random_rows(50, 2, seed=3):
            event = manager.append(row)
            maintainer.on_tick(manager, event.new, event.expired)
            ref.append(row)
        now = manager.now_seq
        for k, n in ((1, 15), (3, 8), (5, 4)):
            got = linear_top_k(maintainer.skyband, k, n, now)
            assert [p.uid for p in got] == [p.uid for p in ref.top_k(k, n)]

    def test_counts_scanned_pairs(self):
        sf = k_closest_pairs(2)
        manager = StreamManager(15, 2)
        maintainer = SCaseMaintainer(sf, K=5)
        for row in random_rows(50, 2, seed=4):
            event = manager.append(row)
            maintainer.on_tick(manager, event.new, event.expired)
        counters = Counters()
        linear_top_k(maintainer.skyband, 2, 15, manager.now_seq,
                     counters=counters)
        assert counters.answer_scans >= 2

    def test_empty_skyband(self):
        assert linear_top_k([], 3, 10, 5) == []


class TestBruteForceReference:
    def test_all_pairs_count(self):
        sf = k_closest_pairs(1)
        ref = BruteForceReference(sf, 10)
        for v in range(5):
            ref.append((float(v),))
        assert len(ref.all_pairs()) == 10  # C(5, 2)

    def test_window_filtering(self):
        sf = k_closest_pairs(1)
        ref = BruteForceReference(sf, 3)
        for v in range(5):
            ref.append((float(v),))
        assert len(ref.all_pairs()) == 3  # C(3, 2)
        assert len(ref.all_pairs(n=2)) == 1

    def test_skyband_members_have_few_dominators(self):
        sf = k_closest_pairs(2)
        ref = BruteForceReference(sf, 12)
        for row in random_rows(30, 2, seed=5):
            ref.append(row)
        K = 3
        pairs = ref.all_pairs()
        skyband = {p.uid for p in ref.skyband(K)}
        for p in pairs:
            dominators = sum(1 for q in pairs if dominates(q, p))
            assert (dominators < K) == (p.uid in skyband)
