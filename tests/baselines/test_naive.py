"""Tests for the naive / naive++ competitor (paper §VI-B)."""

from __future__ import annotations

import random

from repro.analysis.cost_model import Counters
from repro.baselines.brute import BruteForceReference
from repro.baselines.naive import NaiveAlgorithm
from repro.scoring.library import k_closest_pairs, k_furthest_pairs


def random_rows(count, d, seed):
    rng = random.Random(seed)
    return [tuple(rng.random() for _ in range(d)) for _ in range(count)]


class TestCorrectnessAtFullWindow:
    def test_matches_brute_force(self):
        sf = k_closest_pairs(2)
        naive = NaiveAlgorithm(sf, K=5, window_size=20)
        ref = BruteForceReference(sf, 20)
        for i, row in enumerate(random_rows(80, 2, seed=1)):
            naive.append(row)
            ref.append(row)
            for k in (1, 3, 5):
                assert [p.uid for p in naive.top_k(k)] == [
                    p.uid for p in ref.top_k(k)
                ], (i, k)
        naive.check_invariants()

    def test_furthest_pairs(self):
        sf = k_furthest_pairs(2)
        naive = NaiveAlgorithm(sf, K=4, window_size=15)
        ref = BruteForceReference(sf, 15)
        for row in random_rows(50, 2, seed=2):
            naive.append(row)
            ref.append(row)
        assert [p.uid for p in naive.top_k(4)] == [p.uid for p in ref.top_k(4)]

    def test_short_stream(self):
        sf = k_closest_pairs(1)
        naive = NaiveAlgorithm(sf, K=3, window_size=10)
        naive.append((1.0,))
        assert naive.top_k(3) == []
        naive.append((2.0,))
        assert len(naive.top_k(3)) == 1

    def test_plus_plus_is_exact_for_its_own_query(self):
        """naive++ built with (k, n) answers exactly that query."""
        sf = k_closest_pairs(2)
        k, n = 3, 12
        naive_pp = NaiveAlgorithm.plus_plus(sf, k, n)
        ref = BruteForceReference(sf, n)
        for row in random_rows(60, 2, seed=3):
            naive_pp.append(row)
            ref.append(row)
            assert [p.uid for p in naive_pp.top_k(k)] == [
                p.uid for p in ref.top_k(k)
            ]


class TestStorage:
    def test_space_is_O_KN(self):
        sf = k_closest_pairs(2)
        K, N = 4, 25
        naive = NaiveAlgorithm(sf, K=K, window_size=N)
        for row in random_rows(100, 2, seed=4):
            naive.append(row)
        assert naive.stored_pairs <= K * N

    def test_expiry_removes_references(self):
        sf = k_closest_pairs(2)
        naive = NaiveAlgorithm(sf, K=3, window_size=8)
        for row in random_rows(40, 2, seed=5):
            naive.append(row)
            naive.check_invariants()


class TestCost:
    def test_expiry_triggers_rescans(self):
        """The expensive part of naive: refilling damaged best-lists costs
        extra score evaluations beyond the per-arrival O(N)."""
        sf = k_closest_pairs(2)
        N, K, ticks = 30, 5, 200
        counters = Counters()
        naive = NaiveAlgorithm(sf, K=K, window_size=N, counters=counters)
        for row in random_rows(ticks, 2, seed=6):
            naive.append(row)
        # A pure per-arrival pass would cost < ticks * N evaluations;
        # naive's refills push it clearly above that.
        assert counters.score_evaluations > ticks * N
