"""Tests for the supreme / supreme++ oracle competitor (paper §VI-B)."""

from __future__ import annotations

import random

from repro.analysis.cost_model import Counters
from repro.baselines.brute import BruteForceReference
from repro.baselines.supreme import SupremeAlgorithm
from repro.scoring.library import k_closest_pairs


def random_rows(count, d, seed):
    rng = random.Random(seed)
    return [tuple(rng.random() for _ in range(d)) for _ in range(count)]


class TestExactness:
    """Supreme is a *cost* model, never an approximation."""

    def test_snapshot_answers_exact(self):
        sf = k_closest_pairs(2)
        supreme = SupremeAlgorithm(sf, K=5, window_size=20, num_attributes=2)
        ref = BruteForceReference(sf, 20)
        for row in random_rows(70, 2, seed=1):
            supreme.append(row)
            ref.append(row)
            for k, n in ((1, 20), (3, 10), (5, 6)):
                assert [p.uid for p in supreme.top_k(k, n)] == [
                    p.uid for p in ref.top_k(k, n)
                ]

    def test_continuous_answers_exact(self):
        sf = k_closest_pairs(2)
        supreme = SupremeAlgorithm(sf, K=4, window_size=15, num_attributes=2)
        ref = BruteForceReference(sf, 15)
        supreme.register_continuous(query_id=1, k=3, n=10)
        for row in random_rows(60, 2, seed=2):
            supreme.append(row)
            ref.append(row)
            assert [p.uid for p in supreme.answer(1)] == [
                p.uid for p in ref.top_k(3, 10)
            ]

    def test_plus_plus_exact_for_its_query(self):
        sf = k_closest_pairs(2)
        k, n = 2, 8
        supreme_pp = SupremeAlgorithm.plus_plus(sf, k, n, num_attributes=2)
        ref = BruteForceReference(sf, n)
        for row in random_rows(40, 2, seed=3):
            supreme_pp.append(row)
            ref.append(row)
            assert [p.uid for p in supreme_pp.top_k(k)] == [
                p.uid for p in ref.top_k(k)
            ]


class TestChargeableAccounting:
    def test_maintenance_charges_exactly_new_pair_scores(self):
        """Lower bound: one score evaluation per new in-window pair."""
        sf = k_closest_pairs(2)
        N, ticks = 12, 40
        counters = Counters()
        supreme = SupremeAlgorithm(
            sf, K=3, window_size=N, num_attributes=2, counters=counters
        )
        for row in random_rows(ticks, 2, seed=4):
            supreme.append(row)
        # Arrival t sees min(t, N) - 1 partners.
        want = sum(min(t, N) - 1 for t in range(1, ticks + 1))
        assert counters.score_evaluations == want

    def test_query_charges_O_k(self):
        sf = k_closest_pairs(2)
        counters = Counters()
        supreme = SupremeAlgorithm(
            sf, K=6, window_size=15, num_attributes=2, counters=counters
        )
        for row in random_rows(40, 2, seed=5):
            supreme.append(row)
        counters.answer_scans = 0
        supreme.top_k(4, 15)
        assert counters.answer_scans == 4

    def test_chargeable_time_accumulates(self):
        sf = k_closest_pairs(2)
        supreme = SupremeAlgorithm(sf, K=3, window_size=20, num_attributes=2)
        assert supreme.chargeable_seconds == 0.0
        for row in random_rows(30, 2, seed=6):
            supreme.append(row)
        assert supreme.chargeable_seconds > 0.0

    def test_supreme_plus_plus_charges_only_window_n(self):
        """supreme++ with window n charges O(n) per arrival, not O(N)."""
        sf = k_closest_pairs(2)
        counters_small = Counters()
        counters_big = Counters()
        small = SupremeAlgorithm.plus_plus(
            sf, 2, 10, num_attributes=2, counters=counters_small
        )
        big = SupremeAlgorithm.plus_plus(
            sf, 2, 40, num_attributes=2, counters=counters_big
        )
        for row in random_rows(120, 2, seed=7):
            small.append(row)
            big.append(row)
        assert counters_small.score_evaluations < counters_big.score_evaluations
