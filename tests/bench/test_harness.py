"""Tests for the benchmark harness helpers."""

from __future__ import annotations

import time

from repro.baselines.naive import NaiveAlgorithm
from repro.baselines.supreme import SupremeAlgorithm
from repro.bench import harness
from repro.core.monitor import TopKPairsMonitor
from repro.scoring.library import k_closest_pairs


class TestParameters:
    def test_table1_shape(self):
        params = harness.PaperParameters
        assert params.K_DEFAULT == 20
        assert params.D_DEFAULT == 3
        assert params.D_SWEEP == [2, 3, 4, 5, 6]
        assert params.N_DEFAULT in params.N_SWEEP
        assert sorted(params.N_SWEEP) == params.N_SWEEP
        assert set(params.DISTRIBUTIONS) == {
            "uniform", "correlated", "anticorrelated"
        }

    def test_scale_is_positive(self):
        assert harness.SCALE > 0
        assert all(n >= 10 for n in harness.PaperParameters.N_SWEEP)


class TestRows:
    def test_synthetic_rows_shape(self):
        rows = harness.synthetic_rows(20, 3, distribution="correlated")
        assert len(rows) == 20
        assert all(len(row) == 3 for row in rows)

    def test_synthetic_rows_deterministic(self):
        assert harness.synthetic_rows(10, 2, seed=5) == harness.synthetic_rows(
            10, 2, seed=5
        )

    def test_sensor_rows_are_time_temp_humidity(self):
        rows = harness.sensor_rows(30)
        assert all(len(row) == 3 for row in rows)
        times = [row[0] for row in rows]
        assert min(times) >= 0


class TestTimers:
    def test_time_monitor_returns_elapsed(self):
        monitor = TopKPairsMonitor(10, 2)
        monitor.register_query(k_closest_pairs(2), k=2)
        elapsed = harness.time_monitor(
            monitor, harness.synthetic_rows(15, 2)
        )
        assert elapsed > 0
        assert len(monitor.manager) == 10

    def test_time_naive(self):
        naive = NaiveAlgorithm(k_closest_pairs(2), K=2, window_size=10)
        assert harness.time_naive(naive, harness.synthetic_rows(12, 2)) > 0

    def test_time_supreme_counts_chargeable_only(self):
        supreme = SupremeAlgorithm(
            k_closest_pairs(2), K=2, window_size=10, num_attributes=2
        )
        rows = harness.synthetic_rows(12, 2)
        wall_start = time.perf_counter()
        chargeable = harness.time_supreme(supreme, rows)
        wall = time.perf_counter() - wall_start
        assert 0 < chargeable < wall  # oracle work is off the clock

    def test_us_per(self):
        assert harness.us_per(0.002, 100) == 20.0
        assert harness.us_per(1.0, 0) == 1e6  # guards division by zero
