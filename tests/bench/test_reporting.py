"""Tests for the benchmark reporting helpers."""

from __future__ import annotations

import pytest

from repro.bench.reporting import (
    BENCH_SCHEMA_VERSION,
    format_figure,
    git_revision,
    stamp_result,
)


class TestStampResult:
    def test_adds_provenance_fields(self):
        result = stamp_result({"rows": 10}, suite="serve")
        assert result["schema_version"] == BENCH_SCHEMA_VERSION
        assert result["suite"] == "serve"
        assert "git_revision" in result
        assert result["rows"] == 10

    def test_stamps_in_place_and_returns_same_dict(self):
        payload = {"x": 1}
        assert stamp_result(payload, suite="t") is payload
        assert payload["suite"] == "t"

    def test_overwrites_stale_stamp(self):
        payload = {"schema_version": -1, "suite": "old",
                   "git_revision": "dead"}
        stamp_result(payload, suite="new")
        assert payload["schema_version"] == BENCH_SCHEMA_VERSION
        assert payload["suite"] == "new"
        assert payload["git_revision"] == git_revision()

    def test_git_revision_shape(self):
        revision = git_revision()
        # None outside a checkout; a short hex id inside one.
        if revision is not None:
            assert 4 <= len(revision) <= 40
            int(revision, 16)

    def test_git_revision_none_when_git_missing(self, monkeypatch):
        import subprocess as sp

        def boom(*args, **kwargs):
            raise OSError("git not found")

        monkeypatch.setattr(sp, "run", boom)
        assert git_revision() is None


class TestFormatFigure:
    def test_basic_table(self):
        text = format_figure(
            "Fig X", "N", [10, 20],
            {"algo": [1.5, 2.5], "other": [3.0, 4.0]},
        )
        lines = text.splitlines()
        assert lines[0] == "Fig X"
        assert "N" in lines[2]
        assert "algo [us/update]" in lines[2]
        assert "1.50" in text
        assert "4.00" in text

    def test_alignment_columns_consistent(self):
        text = format_figure(
            "T", "x", [1, 1000], {"a": [1.0, 123456.78]}
        )
        rows = text.splitlines()[2:]
        widths = {len(r) for r in rows}
        assert len(widths) == 1  # all rows padded to the same width

    def test_custom_unit_and_precision(self):
        text = format_figure(
            "T", "x", [1], {"a": [3.14159]}, unit="pairs", precision=4
        )
        assert "a [pairs]" in text
        assert "3.1416" in text

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_figure("T", "x", [1, 2], {"a": [1.0]})

    def test_string_x_values(self):
        text = format_figure(
            "T", "dist", ["uniform", "correlated"], {"a": [1.0, 2.0]}
        )
        assert "uniform" in text
        assert "correlated" in text

    def test_empty_x_values(self):
        text = format_figure("T", "x", [], {"a": []})
        assert "T" in text
