"""Tests for the benchmark reporting helpers."""

from __future__ import annotations

import pytest

from repro.bench.reporting import format_figure


class TestFormatFigure:
    def test_basic_table(self):
        text = format_figure(
            "Fig X", "N", [10, 20],
            {"algo": [1.5, 2.5], "other": [3.0, 4.0]},
        )
        lines = text.splitlines()
        assert lines[0] == "Fig X"
        assert "N" in lines[2]
        assert "algo [us/update]" in lines[2]
        assert "1.50" in text
        assert "4.00" in text

    def test_alignment_columns_consistent(self):
        text = format_figure(
            "T", "x", [1, 1000], {"a": [1.0, 123456.78]}
        )
        rows = text.splitlines()[2:]
        widths = {len(r) for r in rows}
        assert len(widths) == 1  # all rows padded to the same width

    def test_custom_unit_and_precision(self):
        text = format_figure(
            "T", "x", [1], {"a": [3.14159]}, unit="pairs", precision=4
        )
        assert "a [pairs]" in text
        assert "3.1416" in text

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_figure("T", "x", [1, 2], {"a": [1.0]})

    def test_string_x_values(self):
        text = format_figure(
            "T", "dist", ["uniform", "correlated"], {"a": [1.0, 2.0]}
        )
        assert "uniform" in text
        assert "correlated" in text

    def test_empty_x_values(self):
        text = format_figure("T", "x", [], {"a": []})
        assert "T" in text
