"""Shared test utilities and fixtures."""

from __future__ import annotations

import itertools
import random

import pytest

from repro.core.pair import Pair
from repro.stream.object import StreamObject

_newer_seq = itertools.count(10_000)


def make_objects(values_list, start_seq=1):
    """Build StreamObjects with consecutive sequence numbers."""
    return [
        StreamObject(start_seq + i, values if isinstance(values, tuple) else (values,))
        for i, values in enumerate(values_list)
    ]


def make_pair_at(age_score, now_seq=100):
    """Build a Pair whose (age, score) at ``now_seq`` equals the given
    tuple — handy for geometry-level tests.

    The pair's older member gets ``seq = now_seq - age + 1`` and the newer
    member a fresh larger seq, so ``pair.age(now_seq) == age``.
    """
    age, score = age_score
    older = StreamObject(now_seq - age + 1, (0.0,))
    newer = StreamObject(next(_newer_seq), (0.0,))
    return Pair(older, newer, score)


def random_rows(n, d, seed=0):
    rng = random.Random(seed)
    return [tuple(rng.random() for _ in range(d)) for _ in range(n)]


@pytest.fixture
def rng():
    return random.Random(0xC0FFEE)
