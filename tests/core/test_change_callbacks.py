"""Tests for the continuous-query change-notification callback."""

from __future__ import annotations

import random

from repro.baselines.brute import BruteForceReference
from repro.core.monitor import TopKPairsMonitor
from repro.scoring.library import k_closest_pairs


class Recorder:
    def __init__(self):
        self.events: list[tuple[list, list]] = []

    def __call__(self, entered, left):
        self.events.append((list(entered), list(left)))


class TestOnChange:
    def test_events_replay_to_current_answer(self):
        """Folding all change events over the initial answer must yield
        the final answer — callbacks miss nothing and invent nothing."""
        sf = k_closest_pairs(2)
        monitor = TopKPairsMonitor(15, 2)
        recorder = Recorder()
        handle = monitor.register_query(sf, k=3, n=12, on_change=recorder)
        current = {p.uid for p in monitor.results(handle)}
        rng = random.Random(1)
        for _ in range(80):
            monitor.append((rng.random(), rng.random()))
        for entered, left in recorder.events:
            for pair in left:
                current.discard(pair.uid)
            for pair in entered:
                current.add(pair.uid)
        assert current == {p.uid for p in monitor.results(handle)}
        assert recorder.events  # the answer did change along the way

    def test_no_event_when_answer_stable(self):
        sf = k_closest_pairs(1)
        monitor = TopKPairsMonitor(50, 1)
        recorder = Recorder()
        monitor.append((0.0,))
        monitor.append((0.001,))
        handle = monitor.register_query(sf, k=1, on_change=recorder)
        # A far-away newcomer cannot displace the existing closest pair.
        monitor.append((100.0,))
        assert recorder.events == []
        assert len(monitor.results(handle)) == 1

    def test_events_never_report_empty_diffs(self):
        sf = k_closest_pairs(2)
        monitor = TopKPairsMonitor(10, 2)
        recorder = Recorder()
        monitor.register_query(sf, k=2, on_change=recorder)
        rng = random.Random(2)
        for _ in range(40):
            monitor.append((rng.random(), rng.random()))
        for entered, left in recorder.events:
            assert entered or left

    def test_callback_answers_stay_exact(self):
        """The callback machinery must not perturb correctness."""
        sf = k_closest_pairs(2)
        N, k, n = 12, 3, 10
        monitor = TopKPairsMonitor(N, 2)
        ref = BruteForceReference(sf, N)
        handle = monitor.register_query(sf, k=k, n=n, on_change=Recorder())
        rng = random.Random(3)
        for _ in range(60):
            row = (rng.random(), rng.random())
            monitor.append(row)
            ref.append(row)
            assert [p.uid for p in monitor.results(handle)] == [
                p.uid for p in ref.top_k(k, n)
            ]
