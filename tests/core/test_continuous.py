"""Tests for continuous query answering (paper §IV-B)."""

from __future__ import annotations

import random

import pytest

from repro.analysis.cost_model import Counters
from repro.baselines.brute import BruteForceReference
from repro.core.continuous import ContinuousQueryState
from repro.core.maintenance import SCaseMaintainer
from repro.core.query import TopKPairsQuery
from repro.scoring.library import k_closest_pairs, k_furthest_pairs
from repro.stream.manager import StreamManager


def random_rows(count, d, seed):
    rng = random.Random(seed)
    return [tuple(rng.random() for _ in range(d)) for _ in range(count)]


def drive_continuous(rows, N, K, k, n, sf=None, d=2):
    """Stream rows; after each tick check the answer against brute force.

    Returns the final state for further assertions.
    """
    sf = sf if sf is not None else k_closest_pairs(d)
    manager = StreamManager(N, d)
    maintainer = SCaseMaintainer(sf, K)
    ref = BruteForceReference(sf, N)
    state = ContinuousQueryState(TopKPairsQuery(sf, k, n, continuous=True))
    state.initialize(maintainer.pst, manager.now_seq)
    for row in rows:
        event = manager.append(row)
        delta = maintainer.on_tick(manager, event.new, event.expired)
        ref.append(row)
        answer = state.apply(delta, maintainer.pst, manager.now_seq)
        want = ref.top_k(k, n)
        assert [p.uid for p in answer] == [p.uid for p in want]
    return state


class TestContinuousCorrectness:
    @pytest.mark.parametrize("k,n", [(1, 10), (3, 10), (5, 25), (8, 5)])
    def test_always_matches_brute_force(self, k, n):
        drive_continuous(
            random_rows(150, 2, seed=k * 10 + n), N=25, K=8, k=k, n=n
        )

    def test_k_equals_K_and_n_equals_N(self):
        drive_continuous(random_rows(120, 2, seed=9), N=20, K=5, k=5, n=20)

    def test_furthest_pairs(self):
        drive_continuous(
            random_rows(100, 2, seed=3), N=20, K=4, k=4, n=15,
            sf=k_furthest_pairs(2),
        )

    def test_tiny_window(self):
        drive_continuous(random_rows(60, 2, seed=4), N=4, K=2, k=2, n=3)

    def test_answer_sorted_by_score(self):
        state = drive_continuous(
            random_rows(80, 2, seed=5), N=15, K=5, k=5, n=10
        )
        keys = [p.score_key for p in state.answer]
        assert keys == sorted(keys)


class TestRecomputeFallback:
    def test_recompute_happens_but_rarely(self):
        """§IV-B: the from-scratch fallback fires with probability ~k/n, so
        for k << n it must be much rarer than one-per-tick."""
        ticks = 300
        k, n = 3, 50
        sf = k_closest_pairs(2)
        manager = StreamManager(60, 2)
        maintainer = SCaseMaintainer(sf, 6)
        state = ContinuousQueryState(TopKPairsQuery(sf, k, n, continuous=True))
        state.initialize(maintainer.pst, 0)
        for row in random_rows(ticks, 2, seed=6):
            event = manager.append(row)
            delta = maintainer.on_tick(manager, event.new, event.expired)
            state.apply(delta, maintainer.pst, manager.now_seq)
        assert 0 < state.recompute_count < ticks * 0.5

    def test_counters_track_recomputations(self):
        counters = Counters()
        sf = k_closest_pairs(2)
        manager = StreamManager(10, 2)
        maintainer = SCaseMaintainer(sf, 3)
        state = ContinuousQueryState(
            TopKPairsQuery(sf, 3, 8, continuous=True), counters=counters
        )
        state.initialize(maintainer.pst, 0)
        for row in random_rows(80, 2, seed=7):
            event = manager.append(row)
            delta = maintainer.on_tick(manager, event.new, event.expired)
            state.apply(delta, maintainer.pst, manager.now_seq)
        assert counters.recomputations == state.recompute_count


class TestAnswerLifecycle:
    def test_initialize_mid_stream(self):
        sf = k_closest_pairs(2)
        manager = StreamManager(20, 2)
        maintainer = SCaseMaintainer(sf, 4)
        ref = BruteForceReference(sf, 20)
        rows = random_rows(50, 2, seed=8)
        for row in rows[:30]:
            event = manager.append(row)
            maintainer.on_tick(manager, event.new, event.expired)
            ref.append(row)
        state = ContinuousQueryState(
            TopKPairsQuery(sf, 4, 15, continuous=True)
        )
        state.initialize(maintainer.pst, manager.now_seq)
        assert [p.uid for p in state.answer] == [
            p.uid for p in ref.top_k(4, 15)
        ]
        for row in rows[30:]:
            event = manager.append(row)
            delta = maintainer.on_tick(manager, event.new, event.expired)
            ref.append(row)
            state.apply(delta, maintainer.pst, manager.now_seq)
            assert [p.uid for p in state.answer] == [
                p.uid for p in ref.top_k(4, 15)
            ]

    def test_answer_shrinks_when_stream_is_short(self):
        sf = k_closest_pairs(2)
        manager = StreamManager(30, 2)
        maintainer = SCaseMaintainer(sf, 5)
        state = ContinuousQueryState(TopKPairsQuery(sf, 5, 30, continuous=True))
        state.initialize(maintainer.pst, 0)
        event = manager.append((0.1, 0.1))
        delta = maintainer.on_tick(manager, event.new, event.expired)
        state.apply(delta, maintainer.pst, manager.now_seq)
        assert len(state) == 0  # one object, no pairs yet
        event = manager.append((0.2, 0.2))
        delta = maintainer.on_tick(manager, event.new, event.expired)
        state.apply(delta, maintainer.pst, manager.now_seq)
        assert len(state) == 1
