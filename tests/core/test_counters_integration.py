"""Cost-model integration: the counters every algorithm charges must be
internally consistent and reflect the paper's accounting."""

from __future__ import annotations

import random

from repro.analysis.cost_model import Counters
from repro.baselines.basic import BasicMaintainer
from repro.core.maintenance import SCaseMaintainer, TAMaintainer
from repro.core.monitor import TopKPairsMonitor
from repro.scoring.library import k_closest_pairs
from repro.stream.manager import StreamManager


def drive(maintainer, manager, rows):
    for row in rows:
        event = manager.append(row)
        maintainer.on_tick(manager, event.new, event.expired)


def random_rows(count, d, seed):
    rng = random.Random(seed)
    return [tuple(rng.random() for _ in range(d)) for _ in range(count)]


class TestSCaseAccounting:
    def test_scase_scores_every_window_pair(self):
        """Algorithm 3 considers exactly N-1 (or fewer while filling)
        pairs per arrival, each scored once."""
        N, ticks = 15, 50
        counters = Counters()
        manager = StreamManager(N, 2)
        maintainer = SCaseMaintainer(k_closest_pairs(2), 3,
                                     counters=counters)
        drive(maintainer, manager, random_rows(ticks, 2, 1))
        want = sum(min(t, N) - 1 for t in range(1, ticks + 1))
        assert counters.pairs_considered == want
        assert counters.score_evaluations == want
        assert counters.staircase_checks == want

    def test_candidates_bounded_by_considered(self):
        counters = Counters()
        manager = StreamManager(20, 2)
        maintainer = SCaseMaintainer(k_closest_pairs(2), 4,
                                     counters=counters)
        drive(maintainer, manager, random_rows(100, 2, 2))
        assert 0 < counters.candidate_pairs <= counters.pairs_considered
        assert counters.skyband_inserts <= counters.candidate_pairs

    def test_pst_ops_match_skyband_churn(self):
        counters = Counters()
        manager = StreamManager(15, 2)
        maintainer = SCaseMaintainer(k_closest_pairs(2), 3,
                                     counters=counters)
        drive(maintainer, manager, random_rows(80, 2, 3))
        assert counters.pst_inserts == counters.skyband_inserts
        assert counters.pst_deletes == counters.skyband_removals
        assert (
            counters.pst_inserts - counters.pst_deletes
            == len(maintainer.skyband)
        )


class TestTAAccounting:
    def test_ta_never_scores_a_pair_twice(self):
        """The seen-set guarantees one score evaluation per distinct pair
        access, even though it is reachable from d+1 lists."""
        counters = Counters()
        manager = StreamManager(25, 3)
        maintainer = TAMaintainer(k_closest_pairs(3), 3, counters=counters)
        drive(maintainer, manager, random_rows(100, 3, 4))
        assert counters.score_evaluations == counters.pairs_considered

    def test_ta_considers_fewer_than_scase(self):
        counters_ta, counters_sc = Counters(), Counters()
        mgr_a, mgr_b = StreamManager(80, 2), StreamManager(80, 2)
        ta = TAMaintainer(k_closest_pairs(2), 4, counters=counters_ta)
        sc = SCaseMaintainer(k_closest_pairs(2), 4, counters=counters_sc)
        rows = random_rows(240, 2, 5)
        drive(ta, mgr_a, rows)
        drive(sc, mgr_b, rows)
        assert counters_ta.pairs_considered < counters_sc.pairs_considered


class TestBasicAccounting:
    def test_dominance_checks_accumulate(self):
        counters = Counters()
        manager = StreamManager(20, 2)
        maintainer = BasicMaintainer(k_closest_pairs(2), 3,
                                     counters=counters)
        drive(maintainer, manager, random_rows(80, 2, 6))
        # Prefix scans: many comparisons per considered pair on average.
        assert counters.dominance_checks > counters.pairs_considered


class TestMonitorLevelCounters:
    def test_monitor_threads_counters_through(self):
        counters = Counters()
        monitor = TopKPairsMonitor(15, 2, counters=counters,
                                   strategy="scase")
        sf = k_closest_pairs(2)
        monitor.register_query(sf, k=3, n=10)
        for row in random_rows(50, 2, 7):
            monitor.append(row)
        snap = counters.snapshot()
        assert snap["score_evaluations"] > 0
        assert snap["staircase_checks"] > 0
        assert snap["recomputations"] >= 0
        # Snapshot queries charge answer scans.
        before = counters.answer_scans
        monitor.snapshot_query(sf, k=2, n=10)
        assert counters.answer_scans == before + 1
