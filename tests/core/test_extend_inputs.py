"""``TopKPairsMonitor.extend`` input handling: generators, rich row
tuples carrying timestamps/payloads, and the parallel ``timestamps=``
channel — per-tick and batched."""

from __future__ import annotations

import pytest

from repro.core.monitor import TopKPairsMonitor
from repro.exceptions import InvalidParameterError
from repro.scoring.library import k_closest_pairs

from tests.conftest import random_rows


def window_objects(monitor):
    return list(monitor.manager)


class TestIterableRows:
    def test_generator_per_tick(self):
        rows = random_rows(12, 2, seed=1)
        monitor = TopKPairsMonitor(20, 2)
        monitor.extend(row for row in rows)
        assert [obj.values for obj in window_objects(monitor)] == rows

    def test_generator_batched(self):
        rows = random_rows(13, 2, seed=2)
        eager = TopKPairsMonitor(20, 2)
        lazy = TopKPairsMonitor(20, 2)
        sf_eager, sf_lazy = k_closest_pairs(2), k_closest_pairs(2)
        h_eager = eager.register_query(sf_eager, k=3)
        h_lazy = lazy.register_query(sf_lazy, k=3)
        eager.extend(rows, batch_size=5)
        lazy.extend(iter(rows), batch_size=5)
        assert [p.uid for p in eager.results(h_eager)] == \
            [p.uid for p in lazy.results(h_lazy)]
        assert len(lazy.manager) == len(rows)

    def test_batch_size_larger_than_input(self):
        rows = random_rows(4, 2, seed=3)
        monitor = TopKPairsMonitor(10, 2)
        monitor.extend(iter(rows), batch_size=100)
        assert len(monitor.manager) == 4


class TestRichRowTuples:
    def test_values_timestamp_rows(self):
        rows = [((0.1 * i, 0.2 * i), float(10 + i)) for i in range(6)]
        monitor = TopKPairsMonitor(10, 2, time_horizon=100.0)
        monitor.extend(rows)
        objs = window_objects(monitor)
        assert [obj.timestamp for obj in objs] == [float(10 + i)
                                                  for i in range(6)]

    def test_values_timestamp_payload_rows(self):
        rows = [
            ((0.1, 0.2), 1.0, "a"),
            ((0.3, 0.4), 2.0, "b"),
            ((0.5, 0.6), None, "c"),
        ]
        monitor = TopKPairsMonitor(10, 2)
        monitor.extend(rows, batch_size=2)
        objs = window_objects(monitor)
        assert [obj.payload for obj in objs] == ["a", "b", "c"]
        assert [obj.timestamp for obj in objs[:2]] == [1.0, 2.0]

    def test_too_long_row_tuple_rejected(self):
        monitor = TopKPairsMonitor(10, 2)
        with pytest.raises(InvalidParameterError):
            monitor.extend([((0.1, 0.2), 1.0, "x", "extra")])

    def test_list_values_are_plain_rows(self):
        # A bare list of floats is a value sequence, not a rich tuple.
        monitor = TopKPairsMonitor(10, 2)
        monitor.extend([[0.1, 0.2], [0.3, 0.4]])
        assert len(monitor.manager) == 2


class TestTimestampsArgument:
    def test_parallel_timestamps(self):
        rows = random_rows(5, 2, seed=4)
        stamps = [2.0, 4.0, 6.0, 8.0, 10.0]
        monitor = TopKPairsMonitor(10, 2, time_horizon=50.0)
        monitor.extend(iter(rows), timestamps=iter(stamps))
        assert [obj.timestamp for obj in window_objects(monitor)] == stamps

    def test_timestamps_drive_time_eviction(self):
        rows = random_rows(6, 2, seed=5)
        stamps = [1.0, 2.0, 3.0, 4.0, 50.0, 51.0]
        monitor = TopKPairsMonitor(100, 2, time_horizon=10.0)
        monitor.extend(rows, timestamps=stamps, batch_size=3)
        assert [obj.timestamp for obj in window_objects(monitor)] == \
            [50.0, 51.0]

    def test_both_channels_rejected(self):
        monitor = TopKPairsMonitor(10, 2)
        with pytest.raises(InvalidParameterError):
            monitor.extend([((0.1, 0.2), 1.0)], timestamps=[2.0])

    def test_short_timestamps_rejected(self):
        monitor = TopKPairsMonitor(10, 2)
        with pytest.raises(InvalidParameterError):
            monitor.extend(random_rows(3, 2, seed=6), timestamps=[1.0])


class TestAnswersMatchAppend:
    def test_extend_equals_append_loop(self):
        rows = [((0.1 * i % 1.0, 0.7 * i % 1.0), float(i), i)
                for i in range(1, 25)]
        by_append = TopKPairsMonitor(12, 2, time_horizon=15.0)
        by_extend = TopKPairsMonitor(12, 2, time_horizon=15.0)
        sf_a, sf_e = k_closest_pairs(2), k_closest_pairs(2)
        h_a = by_append.register_query(sf_a, k=4)
        h_e = by_extend.register_query(sf_e, k=4)
        for values, timestamp, payload in rows:
            by_append.append(values, timestamp=timestamp, payload=payload)
        by_extend.extend(iter(rows))
        assert [p.uid for p in by_append.results(h_a)] == \
            [p.uid for p in by_extend.results(h_e)]
        answer = by_extend.results(h_e)
        assert all(isinstance(p.older.payload, int) for p in answer)


class TestExtendReturnCount:
    def test_per_tick_returns_exact_count(self):
        monitor = TopKPairsMonitor(20, 2)
        assert monitor.extend(random_rows(12, 2, seed=7)) == 12

    def test_batched_returns_exact_count(self):
        monitor = TopKPairsMonitor(20, 2)
        assert monitor.extend(random_rows(13, 2, seed=8),
                              batch_size=5) == 13

    def test_generator_input_counted(self):
        monitor = TopKPairsMonitor(20, 2)
        rows = random_rows(9, 2, seed=9)
        assert monitor.extend(row for row in rows) == 9

    def test_empty_iterable_returns_zero(self):
        monitor = TopKPairsMonitor(20, 2)
        assert monitor.extend([]) == 0
        assert monitor.extend(iter([]), batch_size=4) == 0

    def test_count_exceeding_window_still_reports_ingested(self):
        monitor = TopKPairsMonitor(5, 2)
        assert monitor.extend(random_rows(12, 2, seed=10)) == 12
        assert len(monitor.manager) == 5
