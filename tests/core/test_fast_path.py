"""The incremental maintenance fast path must be bit-identical to the
legacy rebuild-per-expiry / full-sweep path: same skyband, same staircase
points, same answers, at every tick."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.maintenance import SCaseMaintainer
from repro.core.monitor import TopKPairsMonitor
from repro.core.skyband_update import (
    reference_sweep_skyband,
    sweep_skyband,
)
from repro.obs import MetricsRecorder
from repro.scoring.library import k_closest_pairs, k_furthest_pairs

from tests.conftest import make_pair_at, random_rows


def sorted_pairs(age_scores):
    pairs = [make_pair_at(age_score) for age_score in age_scores]
    pairs.sort(key=lambda p: p.score_key)
    return pairs


class TestSweepImplementations:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(1, 25), st.floats(0, 50)),
            max_size=60,
        ),
        st.integers(1, 8),
    )
    def test_fast_sweep_equals_reference(self, age_scores, K):
        pairs = sorted_pairs(age_scores)
        fast_kept, fast_points = sweep_skyband(pairs, K)
        ref_kept, ref_points = reference_sweep_skyband(pairs, K)
        assert [p.uid for p in fast_kept] == [p.uid for p in ref_kept]
        assert fast_points == ref_points

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(1, 25), st.floats(0, 50)),
            min_size=2,
            max_size=60,
        ),
        st.integers(1, 6),
        st.data(),
    )
    def test_seeded_suffix_sweep_equals_full_sweep(self, age_scores, K, data):
        """Splitting a full sweep's input at any kept position and
        re-sweeping the suffix with the prefix's K smallest age keys as
        seed must reproduce the full sweep's suffix exactly."""
        pairs = sorted_pairs(age_scores)
        kept, points = sweep_skyband(pairs, K)
        split = data.draw(st.integers(0, len(pairs)))
        prefix = [p for p in kept if p.score_key < pairs[split:][0].score_key] \
            if split < len(pairs) else kept
        seed = sorted(p.age_key for p in prefix)[:K]
        suffix_kept, suffix_points = sweep_skyband(
            pairs[split:], K, seed=seed
        )
        assert [p.uid for p in prefix + suffix_kept] == [p.uid for p in kept]
        prefix_points = max(0, len(prefix) - K + 1)
        assert points[:prefix_points] + suffix_points == points

    def test_k_validation(self):
        with pytest.raises(ValueError):
            sweep_skyband([], 0)
        with pytest.raises(ValueError):
            reference_sweep_skyband([], 0)


def drive_pairwise(strategy, rows, *, k, window, time_horizon=None,
                   timestamps=None):
    """Stream ``rows`` through a fast and a legacy monitor in lockstep,
    asserting identical skybands, staircases and answers every tick."""
    fast = TopKPairsMonitor(window, 2, strategy=strategy,
                            time_horizon=time_horizon, fast_path=True)
    legacy = TopKPairsMonitor(window, 2, strategy=strategy,
                              time_horizon=time_horizon, fast_path=False)
    sf_fast, sf_legacy = k_closest_pairs(2), k_closest_pairs(2)
    h_fast = fast.register_query(sf_fast, k=k)
    h_legacy = legacy.register_query(sf_legacy, k=k)
    for index, row in enumerate(rows):
        ts = timestamps[index] if timestamps is not None else None
        fast.append(row, timestamp=ts)
        legacy.append(row, timestamp=ts)
        group_f = fast._groups[next(iter(fast._groups))]
        group_l = legacy._groups[next(iter(legacy._groups))]
        assert [p.uid for p in group_f.maintainer.skyband] == \
            [p.uid for p in group_l.maintainer.skyband]
        assert group_f.maintainer.staircase.points() == \
            group_l.maintainer.staircase.points()
        assert [p.uid for p in fast.results(h_fast)] == \
            [p.uid for p in legacy.results(h_legacy)]
    fast.check_invariants()
    legacy.check_invariants()


@pytest.mark.parametrize("strategy", ["scase", "ta"])
class TestFastPathEquivalence:
    def test_count_window_stream(self, strategy):
        drive_pairwise(strategy, random_rows(80, 2, seed=1), k=4, window=20)

    def test_time_horizon_bursts(self, strategy):
        """Timestamp jumps expire many objects in one tick — the case
        the coalesced expiry exists for."""
        rows = random_rows(90, 2, seed=2)
        timestamps, now = [], 0.0
        for index in range(len(rows)):
            now += 12.0 if index and index % 15 == 0 else 1.0
            timestamps.append(now)
        drive_pairwise(strategy, rows, k=4, window=200, time_horizon=30.0,
                       timestamps=timestamps)


class TestIncrementalDispatch:
    def test_forced_incremental_matches_forced_sweep(self):
        """Even with the ratio heuristic pinned to each extreme, results
        agree (the dispatch is a pure performance decision)."""
        rows = random_rows(70, 2, seed=3)
        always, never = [], []
        for ratio, out in ((10**9, always), (0, never)):
            monitor = TopKPairsMonitor(18, 2, strategy="scase")
            handle = monitor.register_query(k_furthest_pairs(2), k=3)
            group = monitor._groups[next(iter(monitor._groups))]
            group.maintainer.incremental_ratio = ratio
            for row in rows:
                monitor.append(row)
                out.append([p.uid for p in monitor.results(handle)])
            monitor.check_invariants()
        assert always == never

    def test_staircase_size_law(self):
        """Algorithm 4 emits one point per kept pair from the K-th on —
        the prefix/suffix stitching depends on this exact count."""
        monitor = TopKPairsMonitor(25, 2, strategy="scase")
        monitor.register_query(k_closest_pairs(2), k=5)
        for row in random_rows(60, 2, seed=4):
            monitor.append(row)
            group = monitor._groups[next(iter(monitor._groups))]
            maintainer = group.maintainer
            assert len(maintainer.staircase) == max(
                0, len(maintainer.skyband) - maintainer.K + 1
            )

    def test_apply_path_metrics(self):
        """The recorder counts which maintenance path each merge took."""
        recorder = MetricsRecorder()
        monitor = TopKPairsMonitor(20, 2, strategy="scase",
                                   recorder=recorder)
        monitor.register_query(k_closest_pairs(2), k=3)
        for row in random_rows(60, 2, seed=5):
            monitor.append(row)
        registry = recorder.registry
        incremental = registry.value("repro_apply_path_total", "incremental")
        sweep = registry.value("repro_apply_path_total", "sweep")
        assert incremental > 0
        assert incremental + sweep > 0

    def test_legacy_flag_disables_incremental(self):
        maintainer = SCaseMaintainer(k_closest_pairs(2), 3, fast_path=False)
        assert maintainer.fast_path is False
        recorder = MetricsRecorder()
        monitor = TopKPairsMonitor(20, 2, strategy="scase",
                                   recorder=recorder, fast_path=False)
        monitor.register_query(k_closest_pairs(2), k=3)
        for row in random_rows(40, 2, seed=6):
            monitor.append(row)
        registry = recorder.registry
        assert registry.value("repro_apply_path_total", "incremental") == 0
        assert registry.value("repro_apply_path_total", "sweep") > 0
