"""Candidate collection pays the user-supplied ``pair_filter`` only on
pairs that survive the cheap staircase dominance test, and counts every
invocation in ``Counters.pair_filter_calls``."""

from __future__ import annotations

import pytest

from repro.baselines.brute import BruteForceReference
from repro.core.monitor import TopKPairsMonitor
from repro.obs import Counters
from repro.scoring.library import k_closest_pairs

from tests.conftest import random_rows


class CountingFilter:
    """Symmetric predicate that records how often it is evaluated."""

    def __init__(self, predicate):
        self.predicate = predicate
        self.calls = 0

    def __call__(self, a, b):
        self.calls += 1
        return self.predicate(a, b)


def parity(a, b):
    return (a.seq + b.seq) % 2 == 0


@pytest.mark.parametrize("strategy", ["scase", "ta"])
class TestFilterAfterDominance:
    def test_filter_skipped_on_dominated_pairs(self, strategy):
        counters = Counters()
        fltr = CountingFilter(parity)
        monitor = TopKPairsMonitor(40, 2, strategy=strategy,
                                   counters=counters)
        monitor.register_query(k_closest_pairs(2), k=2, pair_filter=fltr)
        for row in random_rows(120, 2, seed=31):
            monitor.append(row)
        # Bootstrap evaluates the filter on every window pair before any
        # staircase exists; steady-state collection must not.
        assert counters.pair_filter_calls == fltr.calls
        assert counters.pairs_considered > 0
        # With K=2 over a 40-object window most new pairs are staircase-
        # dominated, so the filter runs on only a fraction of them.
        assert counters.pair_filter_calls < counters.pairs_considered

    def test_answers_unchanged_by_reordering(self, strategy):
        fltr = CountingFilter(parity)
        monitor = TopKPairsMonitor(15, 2, strategy=strategy)
        sf = k_closest_pairs(2)
        ref = BruteForceReference(sf, 15, pair_filter=parity)
        handle = monitor.register_query(sf, k=3, pair_filter=fltr)
        for row in random_rows(50, 2, seed=32):
            monitor.append(row)
            ref.append(row)
            assert [p.uid for p in monitor.results(handle)] == [
                p.uid for p in ref.top_k(3, 15)
            ]
        monitor.check_invariants()

    def test_no_filter_means_no_filter_calls(self, strategy):
        counters = Counters()
        monitor = TopKPairsMonitor(20, 2, strategy=strategy,
                                   counters=counters)
        monitor.register_query(k_closest_pairs(2), k=3)
        for row in random_rows(40, 2, seed=33):
            monitor.append(row)
        assert counters.pair_filter_calls == 0
