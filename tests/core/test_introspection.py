"""Tests for the maintainer's introspection helpers."""

from __future__ import annotations

import random

from repro.core.maintenance import SCaseMaintainer
from repro.core.pair import dominates, make_pair
from repro.scoring.library import k_closest_pairs
from repro.stream.manager import StreamManager


def build(N=20, K=3, ticks=70, seed=1):
    rng = random.Random(seed)
    sf = k_closest_pairs(2)
    manager = StreamManager(N, 2)
    maintainer = SCaseMaintainer(sf, K)
    for _ in range(ticks):
        event = manager.append((rng.random(), rng.random()))
        maintainer.on_tick(manager, event.new, event.expired)
    return manager, maintainer, sf


class TestDominatorsOf:
    def test_members_have_fewer_than_K_dominators(self):
        _, maintainer, _ = build()
        for pair in maintainer.skyband:
            assert len(maintainer.dominators_of(pair)) < maintainer.K

    def test_nonmembers_have_at_least_K_dominators(self):
        manager, maintainer, sf = build()
        member_uids = {p.uid for p in maintainer.skyband}
        objects = manager.objects()
        outsiders = [
            make_pair(a, b, sf)
            for i, a in enumerate(objects)
            for b in objects[i + 1:]
            if ((a.seq << 40) | b.seq) not in member_uids
        ]
        assert outsiders
        for pair in outsiders[:25]:
            assert len(maintainer.dominators_of(pair)) >= maintainer.K

    def test_result_sorted_and_actually_dominating(self):
        manager, maintainer, sf = build()
        objects = manager.objects()
        probe = make_pair(objects[0], objects[-1], sf)
        dominators = maintainer.dominators_of(probe)
        keys = [p.score_key for p in dominators]
        assert keys == sorted(keys)
        for q in dominators:
            assert dominates(q, probe)


class TestContains:
    def test_members_contained(self):
        _, maintainer, _ = build()
        for pair in maintainer.skyband:
            assert maintainer.contains(pair)

    def test_foreign_pair_not_contained(self):
        manager, maintainer, sf = build()
        member_uids = {p.uid for p in maintainer.skyband}
        objects = manager.objects()
        for i, a in enumerate(objects):
            for b in objects[i + 1:]:
                pair = make_pair(a, b, sf)
                if pair.uid not in member_uids:
                    assert not maintainer.contains(pair)
                    return
