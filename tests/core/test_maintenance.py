"""Tests for the skyband maintenance module (Algorithms 3 and 5)."""

from __future__ import annotations

import random

import pytest

from repro.analysis.cost_model import Counters
from repro.baselines.basic import BasicMaintainer
from repro.baselines.brute import BruteForceReference
from repro.core.maintenance import SCaseMaintainer, TAMaintainer
from repro.exceptions import InvalidParameterError, ScoringFunctionError
from repro.scoring.library import (
    k_closest_pairs,
    paper_scoring_functions,
    sensor_scoring_function,
)
from repro.stream.manager import StreamManager


def drive(maintainer, manager, rows):
    """Feed rows through manager + maintainer; return per-tick deltas."""
    deltas = []
    for row in rows:
        event = manager.append(row)
        deltas.append(
            maintainer.on_tick(manager, event.new, event.expired)
        )
    return deltas


def random_rows(count, d, seed):
    rng = random.Random(seed)
    return [tuple(rng.random() for _ in range(d)) for _ in range(count)]


MAINTAINERS = [SCaseMaintainer, BasicMaintainer, TAMaintainer]


@pytest.mark.parametrize("maintainer_cls", MAINTAINERS,
                         ids=lambda c: c.__name__)
class TestSkybandCorrectness:
    """Every maintainer must track the exact K-skyband of the window."""

    @pytest.mark.parametrize("K", [1, 3, 8])
    def test_matches_brute_force_skyband(self, maintainer_cls, K):
        sf = k_closest_pairs(2)
        N = 25
        manager = StreamManager(N, 2)
        maintainer = maintainer_cls(sf, K)
        ref = BruteForceReference(sf, N)
        for i, row in enumerate(random_rows(120, 2, seed=K)):
            event = manager.append(row)
            maintainer.on_tick(manager, event.new, event.expired)
            ref.append(row)
            if i % 7 == 0:
                got = {p.uid for p in maintainer.skyband}
                want = {p.uid for p in ref.skyband(K)}
                assert got == want, f"tick {i}"
        maintainer.check_invariants(manager)

    def test_all_paper_scoring_functions(self, maintainer_cls):
        for sf in paper_scoring_functions(2):
            manager = StreamManager(20, 2)
            maintainer = maintainer_cls(sf, K=4)
            ref = BruteForceReference(sf, 20)
            for row in random_rows(60, 2, seed=11):
                event = manager.append(row)
                maintainer.on_tick(manager, event.new, event.expired)
                ref.append(row)
            assert {p.uid for p in maintainer.skyband} == {
                p.uid for p in ref.skyband(4)
            }, sf.name

    def test_delta_reports_are_consistent(self, maintainer_cls):
        """added/removed/expired must exactly explain each skyband change."""
        sf = k_closest_pairs(2)
        manager = StreamManager(15, 2)
        maintainer = maintainer_cls(sf, K=3)
        previous: set[int] = set()
        for row in random_rows(80, 2, seed=5):
            event = manager.append(row)
            delta = maintainer.on_tick(manager, event.new, event.expired)
            current = {p.uid for p in maintainer.skyband}
            gone = {p.uid for p in delta.removed} | {
                p.uid for p in delta.expired
            }
            came = {p.uid for p in delta.added}
            assert previous - gone == previous & current
            assert (previous - gone) | came == current
            assert not (came & previous)
            previous = current

    def test_added_list_sorted_by_score(self, maintainer_cls):
        sf = k_closest_pairs(2)
        manager = StreamManager(15, 2)
        maintainer = maintainer_cls(sf, K=5)
        for row in random_rows(60, 2, seed=3):
            event = manager.append(row)
            delta = maintainer.on_tick(manager, event.new, event.expired)
            keys = [p.score_key for p in delta.added]
            assert keys == sorted(keys)

    def test_structures_stay_consistent(self, maintainer_cls):
        sf = k_closest_pairs(3)
        manager = StreamManager(12, 3)
        maintainer = maintainer_cls(sf, K=4)
        for i, row in enumerate(random_rows(70, 3, seed=8)):
            event = manager.append(row)
            maintainer.on_tick(manager, event.new, event.expired)
            if i % 10 == 0:
                maintainer.check_invariants(manager)

    def test_k_validation(self, maintainer_cls):
        with pytest.raises(InvalidParameterError):
            maintainer_cls(k_closest_pairs(1), K=0)


class TestArbitraryScoringFunction:
    """The sensor function is not global: only SCase/Basic handle it."""

    def test_scase_handles_sensor_function(self):
        sf = sensor_scoring_function()
        manager = StreamManager(20, 3)
        maintainer = SCaseMaintainer(sf, K=3)
        ref = BruteForceReference(sf, 20)
        rng = random.Random(2)
        t = 0.0
        for _ in range(60):
            t += rng.uniform(0.5, 2.0)
            row = (t, rng.uniform(15, 30), rng.uniform(30, 70))
            event = manager.append(row)
            maintainer.on_tick(manager, event.new, event.expired)
            ref.append(row)
        assert {p.uid for p in maintainer.skyband} == {
            p.uid for p in ref.skyband(3)
        }

    def test_ta_rejects_non_global(self):
        with pytest.raises(ScoringFunctionError):
            TAMaintainer(sensor_scoring_function(), K=3)


class TestTAEfficiency:
    def test_ta_considers_fewer_pairs_than_scase(self):
        """The entire point of Algorithm 5: with the staircase warm, TA
        must examine far fewer new pairs than the O(N) full scan."""
        sf_ta = k_closest_pairs(2)
        sf_sc = k_closest_pairs(2)
        N, K = 120, 4
        counters_ta, counters_sc = Counters(), Counters()
        mgr_ta, mgr_sc = StreamManager(N, 2), StreamManager(N, 2)
        ta = TAMaintainer(sf_ta, K, counters=counters_ta)
        sc = SCaseMaintainer(sf_sc, K, counters=counters_sc)
        rows = random_rows(400, 2, seed=1)
        drive(ta, mgr_ta, rows)
        drive(sc, mgr_sc, rows)
        # Same skybands...
        assert {p.uid for p in ta.skyband} == {p.uid for p in sc.skyband}
        # ...but TA touched a fraction of the pairs.
        assert counters_ta.pairs_considered < 0.7 * counters_sc.pairs_considered

    def test_ta_exhausts_lists_when_staircase_cold(self):
        """With an empty staircase nothing is dominated, so TA must fall
        back to examining every pair (correctness over speed)."""
        sf = k_closest_pairs(2)
        manager = StreamManager(30, 2)
        ta = TAMaintainer(sf, K=3)
        manager.append((0.5, 0.5))
        event = manager.append((0.6, 0.6))
        ta.on_tick(manager, event.new, event.expired)
        assert len(ta.skyband) == 1


class TestExpiry:
    def test_skyband_never_references_expired_objects(self):
        sf = k_closest_pairs(2)
        N = 10
        manager = StreamManager(N, 2)
        maintainer = SCaseMaintainer(sf, K=3)
        for row in random_rows(50, 2, seed=6):
            event = manager.append(row)
            maintainer.on_tick(manager, event.new, event.expired)
            window_seqs = {o.seq for o in manager}
            for pair in maintainer.skyband:
                assert pair.older.seq in window_seqs

    def test_expired_delta_has_only_max_age_pairs(self):
        sf = k_closest_pairs(2)
        manager = StreamManager(8, 2)
        maintainer = SCaseMaintainer(sf, K=2)
        for row in random_rows(40, 2, seed=12):
            event = manager.append(row)
            delta = maintainer.on_tick(manager, event.new, event.expired)
            for pair in delta.expired:
                assert event.expired
                assert pair.older.seq == event.expired[0].seq

    def test_at_most_k_pairs_expire_per_object(self):
        """§V-A: the K-skyband holds at most K pairs of any single age."""
        sf = k_closest_pairs(2)
        K = 3
        manager = StreamManager(12, 2)
        maintainer = SCaseMaintainer(sf, K=K)
        for row in random_rows(80, 2, seed=13):
            event = manager.append(row)
            delta = maintainer.on_tick(manager, event.new, event.expired)
            assert len(delta.expired) <= K


class TestBootstrap:
    def test_bootstrap_matches_incremental(self):
        sf = k_closest_pairs(2)
        manager = StreamManager(20, 2)
        incremental = SCaseMaintainer(sf, K=4)
        for row in random_rows(35, 2, seed=20):
            event = manager.append(row)
            incremental.on_tick(manager, event.new, event.expired)
        fresh = SCaseMaintainer(sf, K=4)
        fresh.bootstrap(manager)
        assert {p.uid for p in fresh.skyband} == {
            p.uid for p in incremental.skyband
        }
        fresh.check_invariants(manager)

    def test_bootstrap_then_continue_streaming(self):
        sf = k_closest_pairs(2)
        manager = StreamManager(15, 2)
        ref = BruteForceReference(sf, 15)
        for row in random_rows(20, 2, seed=21):
            manager.append(row)
            ref.append(row)
        maintainer = SCaseMaintainer(sf, K=3)
        maintainer.bootstrap(manager)
        for row in random_rows(30, 2, seed=22):
            event = manager.append(row)
            maintainer.on_tick(manager, event.new, event.expired)
            ref.append(row)
        maintainer.check_invariants(manager)
        assert {p.uid for p in maintainer.skyband} == {
            p.uid for p in ref.skyband(3)
        }
