"""Tests for the TopKPairsMonitor facade (paper Fig 2 framework)."""

from __future__ import annotations

import random

import pytest

from repro.baselines.brute import BruteForceReference
from repro.core.monitor import TopKPairsMonitor
from repro.exceptions import InvalidParameterError, UnknownQueryError
from repro.scoring.library import (
    k_closest_pairs,
    k_furthest_pairs,
    sensor_scoring_function,
)


def random_rows(count, d, seed):
    rng = random.Random(seed)
    return [tuple(rng.random() for _ in range(d)) for _ in range(count)]


class TestRegistration:
    def test_strategy_validated(self):
        with pytest.raises(InvalidParameterError):
            TopKPairsMonitor(10, 2, strategy="bogus")

    def test_n_defaults_to_window(self):
        monitor = TopKPairsMonitor(10, 2)
        handle = monitor.register_query(k_closest_pairs(2), k=2)
        assert handle.query.n == 10

    def test_n_larger_than_window_rejected(self):
        monitor = TopKPairsMonitor(10, 2)
        with pytest.raises(InvalidParameterError):
            monitor.register_query(k_closest_pairs(2), k=2, n=11)

    def test_unregister_unknown_raises(self):
        monitor = TopKPairsMonitor(10, 2)
        handle = monitor.register_query(k_closest_pairs(2), k=2)
        monitor.unregister_query(handle)
        with pytest.raises(UnknownQueryError):
            monitor.unregister_query(handle)

    def test_results_after_unregister_raises(self):
        monitor = TopKPairsMonitor(10, 2)
        handle = monitor.register_query(k_closest_pairs(2), k=2)
        monitor.unregister_query(handle)
        with pytest.raises(UnknownQueryError):
            monitor.results(handle)

    def test_auto_strategy_picks_ta_for_global(self):
        monitor = TopKPairsMonitor(10, 2)
        monitor.register_query(k_closest_pairs(2), k=2)
        group = next(iter(monitor._groups.values()))
        assert group.strategy == "ta"

    def test_auto_strategy_picks_scase_for_arbitrary(self):
        monitor = TopKPairsMonitor(10, 3)
        monitor.register_query(sensor_scoring_function(), k=2)
        group = next(iter(monitor._groups.values()))
        assert group.strategy == "scase"


class TestSkybandSharing:
    """§III-B: one skyband per unique scoring function, K = max k."""

    def test_same_function_shares_one_group(self):
        monitor = TopKPairsMonitor(20, 2)
        sf = k_closest_pairs(2)
        monitor.register_query(sf, k=2, n=10)
        monitor.register_query(sf, k=4, n=20)
        assert len(monitor._groups) == 1
        assert next(iter(monitor._groups.values())).K == 4

    def test_different_functions_get_separate_groups(self):
        monitor = TopKPairsMonitor(20, 2)
        monitor.register_query(k_closest_pairs(2), k=2)
        monitor.register_query(k_furthest_pairs(2), k=2)
        assert len(monitor._groups) == 2

    def test_raising_k_rebootstraps_correctly(self):
        monitor = TopKPairsMonitor(15, 2)
        sf = k_closest_pairs(2)
        ref = BruteForceReference(sf, 15)
        small = monitor.register_query(sf, k=2, n=15)
        rows = random_rows(40, 2, seed=1)
        for row in rows[:25]:
            monitor.append(row)
            ref.append(row)
        big = monitor.register_query(sf, k=6, n=15)
        for row in rows[25:]:
            monitor.append(row)
            ref.append(row)
            assert [p.uid for p in monitor.results(big)] == [
                p.uid for p in ref.top_k(6, 15)
            ]
            assert [p.uid for p in monitor.results(small)] == [
                p.uid for p in ref.top_k(2, 15)
            ]
        monitor.check_invariants()

    def test_group_dropped_with_last_query(self):
        monitor = TopKPairsMonitor(10, 2)
        sf = k_closest_pairs(2)
        a = monitor.register_query(sf, k=2)
        b = monitor.register_query(sf, k=3)
        monitor.unregister_query(a)
        assert len(monitor._groups) == 1
        monitor.unregister_query(b)
        assert len(monitor._groups) == 0


class TestMultiQueryAnswers:
    def test_many_queries_different_k_n(self):
        N = 20
        monitor = TopKPairsMonitor(N, 2)
        sf = k_closest_pairs(2)
        ref = BruteForceReference(sf, N)
        specs = [(1, 5), (2, 10), (4, 20), (3, 7)]
        handles = [monitor.register_query(sf, k=k, n=n) for k, n in specs]
        for row in random_rows(80, 2, seed=2):
            monitor.append(row)
            ref.append(row)
            for (k, n), handle in zip(specs, handles):
                got = [p.uid for p in monitor.results(handle)]
                want = [p.uid for p in ref.top_k(k, n)]
                assert got == want, (k, n)

    def test_mixed_scoring_functions(self):
        N = 15
        monitor = TopKPairsMonitor(N, 2)
        close, far = k_closest_pairs(2), k_furthest_pairs(2)
        ref_close = BruteForceReference(close, N)
        ref_far = BruteForceReference(far, N)
        hc = monitor.register_query(close, k=3, n=10)
        hf = monitor.register_query(far, k=3, n=10)
        for row in random_rows(60, 2, seed=3):
            monitor.append(row)
            ref_close.append(row)
            ref_far.append(row)
        assert [p.uid for p in monitor.results(hc)] == [
            p.uid for p in ref_close.top_k(3, 10)
        ]
        assert [p.uid for p in monitor.results(hf)] == [
            p.uid for p in ref_far.top_k(3, 10)
        ]

    def test_snapshot_query_handles(self):
        monitor = TopKPairsMonitor(15, 2)
        sf = k_closest_pairs(2)
        ref = BruteForceReference(sf, 15)
        handle = monitor.register_query(sf, k=3, n=10, continuous=False)
        for row in random_rows(40, 2, seed=4):
            monitor.append(row)
            ref.append(row)
        assert [p.uid for p in monitor.results(handle)] == [
            p.uid for p in ref.top_k(3, 10)
        ]

    def test_one_off_snapshot_query(self):
        monitor = TopKPairsMonitor(15, 2)
        sf = k_closest_pairs(2)
        ref = BruteForceReference(sf, 15)
        for row in random_rows(40, 2, seed=5):
            monitor.append(row)
            ref.append(row)
        got = monitor.snapshot_query(sf, k=4, n=12)
        assert [p.uid for p in got] == [p.uid for p in ref.top_k(4, 12)]

    def test_snapshot_query_window_validated(self):
        monitor = TopKPairsMonitor(10, 2)
        with pytest.raises(InvalidParameterError):
            monitor.snapshot_query(k_closest_pairs(2), k=2, n=11)


class TestDiagnostics:
    def test_skyband_size(self):
        monitor = TopKPairsMonitor(20, 2)
        sf = k_closest_pairs(2)
        assert monitor.skyband_size(sf) == 0
        monitor.register_query(sf, k=3)
        for row in random_rows(40, 2, seed=6):
            monitor.append(row)
        assert monitor.skyband_size(sf) >= 3

    def test_payloads_flow_through(self):
        monitor = TopKPairsMonitor(10, 1)
        sf = k_closest_pairs(1)
        handle = monitor.register_query(sf, k=1)
        monitor.append((1.0,), payload="alpha")
        monitor.append((1.1,), payload="beta")
        (best,) = monitor.results(handle)
        assert {best.older.payload, best.newer.payload} == {"alpha", "beta"}

    def test_extend(self):
        monitor = TopKPairsMonitor(10, 2)
        monitor.extend(random_rows(5, 2, seed=7))
        assert len(monitor.manager) == 5


class TestKRaiseSwap:
    """Raising a group's K via a second query must leave every live
    continuous answer correct immediately — the swapped-in maintainer
    re-initializes each state instead of letting it serve the old
    snapshot."""

    def test_first_answer_correct_right_after_k_raise(self):
        monitor = TopKPairsMonitor(15, 2)
        sf = k_closest_pairs(2)
        ref = BruteForceReference(sf, 15)
        small = monitor.register_query(sf, k=2)
        for row in random_rows(30, 2, seed=21):
            monitor.append(row)
            ref.append(row)
        big = monitor.register_query(sf, k=6)
        # No tick happened between the raise and these reads.
        assert [p.uid for p in monitor.results(small)] == [
            p.uid for p in ref.top_k(2, 15)
        ]
        assert [p.uid for p in monitor.results(big)] == [
            p.uid for p in ref.top_k(6, 15)
        ]
        monitor.check_invariants()

    def test_answers_track_after_k_raise(self):
        monitor = TopKPairsMonitor(12, 2)
        sf = k_furthest_pairs(2)
        ref = BruteForceReference(sf, 12)
        small = monitor.register_query(sf, k=2, n=8)
        for row in random_rows(20, 2, seed=22):
            monitor.append(row)
            ref.append(row)
        big = monitor.register_query(sf, k=5)
        for row in random_rows(25, 2, seed=23):
            monitor.append(row)
            ref.append(row)
            assert [p.uid for p in monitor.results(small)] == [
                p.uid for p in ref.top_k(2, 8)
            ]
            assert [p.uid for p in monitor.results(big)] == [
                p.uid for p in ref.top_k(5, 12)
            ]

    def test_state_rebound_to_new_pst(self):
        monitor = TopKPairsMonitor(10, 2)
        sf = k_closest_pairs(2)
        handle = monitor.register_query(sf, k=2)
        for row in random_rows(15, 2, seed=24):
            monitor.append(row)
        monitor.register_query(sf, k=5)
        group = monitor._groups[next(iter(monitor._groups))]
        # The refreshed answer is built from the new maintainer's pairs,
        # not carried over from the old snapshot by object identity.
        new_pairs = {id(p) for p in group.maintainer.skyband}
        assert handle.state.answer
        assert all(id(p) in new_pairs for p in handle.state.answer)
