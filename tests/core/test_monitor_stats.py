"""Tests for the monitor's diagnostics surface."""

from __future__ import annotations

import random

from repro.core.monitor import TopKPairsMonitor
from repro.obs import MetricsRecorder
from repro.scoring.library import k_closest_pairs, k_furthest_pairs


class TestStats:
    def test_empty_monitor(self):
        monitor = TopKPairsMonitor(10, 2)
        stats = monitor.stats()
        assert stats["window_size"] == 10
        assert stats["window_occupancy"] == 0
        assert stats["now_seq"] == 0
        assert stats["num_queries"] == 0
        assert stats["groups"] == []

    def test_groups_reported(self):
        monitor = TopKPairsMonitor(20, 2)
        close, far = k_closest_pairs(2), k_furthest_pairs(2)
        monitor.register_query(close, k=3)
        monitor.register_query(close, k=5)
        monitor.register_query(far, k=2)
        rng = random.Random(1)
        for _ in range(30):
            monitor.append((rng.random(), rng.random()))
        stats = monitor.stats()
        assert stats["window_occupancy"] == 20
        assert stats["now_seq"] == 30
        assert stats["num_queries"] == 3
        assert len(stats["groups"]) == 2
        by_name = {g["scoring_function"]: g for g in stats["groups"]}
        assert by_name[close.name]["K"] == 5
        assert by_name[close.name]["queries"] == 2
        assert by_name[close.name]["skyband_size"] >= 5
        assert by_name[far.name]["queries"] == 1
        assert all(g["strategy"] == "ta" for g in stats["groups"])

    def test_staircase_size_bounded_by_skyband(self):
        monitor = TopKPairsMonitor(15, 2)
        sf = k_closest_pairs(2)
        monitor.register_query(sf, k=4)
        rng = random.Random(2)
        for _ in range(40):
            monitor.append((rng.random(), rng.random()))
        (group,) = monitor.stats()["groups"]
        assert 0 < group["staircase_size"] <= group["skyband_size"]


class TestStatsIncludeMetrics:
    def _instrumented_monitor(self, steps=50):
        monitor = TopKPairsMonitor(20, 2, recorder=MetricsRecorder())
        monitor.register_query(k_closest_pairs(2), k=3)
        rng = random.Random(5)
        for _ in range(steps):
            monitor.append((rng.random(), rng.random()))
        return monitor, steps

    def test_metrics_absent_without_flag(self):
        monitor, _ = self._instrumented_monitor(steps=5)
        assert "metrics" not in monitor.stats()

    def test_metrics_snapshot_merged(self):
        monitor, steps = self._instrumented_monitor()
        stats = monitor.stats(include_metrics=True)
        metrics = stats["metrics"]
        assert metrics["repro_ticks_total"] == steps == stats["now_seq"]
        assert metrics["repro_window_occupancy"] \
            == stats["window_occupancy"]
        assert metrics["repro_skyband_size"] \
            == sum(g["skyband_size"] for g in stats["groups"])
        # Histograms appear in snapshot form.
        append = metrics["repro_append_seconds"]
        assert set(append) == {"count", "sum", "buckets"}
        assert append["count"] == steps

    def test_null_recorder_gives_empty_metrics(self):
        monitor = TopKPairsMonitor(10, 2)
        stats = monitor.stats(include_metrics=True)
        assert stats["metrics"] == {}
        assert stats["window_size"] == 10
