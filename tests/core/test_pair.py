"""Tests for pairs in (age, score) space and the dominance relation."""

from __future__ import annotations

import pytest

from repro.core.pair import Pair, dominates, make_pair, window_age_key_bound
from repro.scoring.library import k_closest_pairs
from repro.analysis.cost_model import Counters
from repro.stream.object import StreamObject

from tests.conftest import make_pair_at


def obj(seq, *values):
    return StreamObject(seq, values or (0.0,))


class TestPairBasics:
    def test_canonical_order(self):
        p = Pair(obj(5), obj(2), 1.0)
        assert p.older.seq == 2
        assert p.newer.seq == 5

    def test_rejects_self_pair(self):
        with pytest.raises(ValueError):
            Pair(obj(3), obj(3), 1.0)

    def test_age_is_older_members_age(self):
        """Paper §II-B: pair age = max of member ages."""
        p = Pair(obj(2), obj(7), 1.0)
        assert p.age(now_seq=10) == 9  # 10 - 2 + 1

    def test_age_key_orders_by_age(self):
        young = Pair(obj(8), obj(9), 1.0)
        old = Pair(obj(2), obj(9), 1.0)
        assert young.age_key < old.age_key

    def test_expiry_via_in_window(self):
        p = Pair(obj(2), obj(7), 1.0)
        assert p.in_window(now_seq=10, n=9)
        assert not p.in_window(now_seq=10, n=8)

    def test_uid_symmetric_and_unique(self):
        assert Pair(obj(1), obj(2), 0.0).uid == Pair(obj(2), obj(1), 9.0).uid
        assert Pair(obj(1), obj(2), 0.0).uid != Pair(obj(1), obj(3), 0.0).uid

    def test_equality_and_hash_by_members(self):
        a = Pair(obj(1), obj(2), 0.0)
        b = Pair(obj(2), obj(1), 5.0)
        assert a == b
        assert len({a, b}) == 1

    def test_ordering_by_score_key(self):
        cheap = Pair(obj(1), obj(2), 1.0)
        dear = Pair(obj(3), obj(4), 2.0)
        assert cheap < dear

    def test_objects_accessor(self):
        p = Pair(obj(4), obj(1), 0.0)
        assert tuple(o.seq for o in p.objects()) == (1, 4)


class TestScoreKeyTieBreaking:
    """Footnote 1: ties resolved by an infinitesimal perturbation."""

    def test_equal_scores_more_recent_ranks_first(self):
        older_pair = make_pair_at((9, 5.0))
        newer_pair = make_pair_at((2, 5.0))
        assert newer_pair.score_key < older_pair.score_key

    def test_score_keys_unique_even_for_identical_points(self):
        a = make_pair_at((5, 5.0))
        b = make_pair_at((5, 5.0))
        assert a.score_key != b.score_key


class TestDominance:
    def test_strictly_better_dominates(self):
        better = make_pair_at((2, 1.0))
        worse = make_pair_at((5, 3.0))
        assert dominates(better, worse)
        assert not dominates(worse, better)

    def test_equal_age_smaller_score_dominates(self):
        a = make_pair_at((4, 1.0))
        b = make_pair_at((4, 2.0))
        assert dominates(a, b)
        assert not dominates(b, a)

    def test_equal_score_smaller_age_dominates(self):
        """Preserved by the perturbation: more recent ranks first."""
        recent = make_pair_at((2, 5.0))
        stale = make_pair_at((7, 5.0))
        assert dominates(recent, stale)
        assert not dominates(stale, recent)

    def test_incomparable_points(self):
        low_score_old = make_pair_at((9, 1.0))
        high_score_new = make_pair_at((2, 8.0))
        assert not dominates(low_score_old, high_score_new)
        assert not dominates(high_score_new, low_score_old)

    def test_no_self_domination(self):
        p = make_pair_at((3, 3.0))
        assert not dominates(p, p)

    def test_identical_coordinates_one_direction_only(self):
        """Two pairs at the same (age, score) point: the perturbation must
        make exactly one side win at most (never both)."""
        a = make_pair_at((5, 5.0))
        b = make_pair_at((5, 5.0))
        assert not (dominates(a, b) and dominates(b, a))


class TestWindowBound:
    def test_bound_matches_in_window(self):
        now = 50
        for n in (1, 5, 49):
            bound = window_age_key_bound(now, n)
            for age in range(1, now):
                p = make_pair_at((age, 1.0), now_seq=now)
                assert (p.age_key <= bound) == p.in_window(now, n)


class TestMakePair:
    def test_scores_and_counts(self):
        counters = Counters()
        sf = k_closest_pairs(1)
        p = make_pair(obj(1, 1.0), obj(2, 4.0), sf, counters)
        assert p.score == 3.0
        assert counters.score_evaluations == 1

    def test_counters_optional(self):
        sf = k_closest_pairs(1)
        p = make_pair(obj(1, 1.0), obj(2, 4.0), sf)
        assert p.score == 3.0
