"""Tests for snapshot query answering (Algorithm 2 via the skyband PST)."""

from __future__ import annotations

import random

import pytest

from repro.analysis.cost_model import Counters
from repro.baselines.brute import BruteForceReference
from repro.baselines.linear import linear_top_k
from repro.core.maintenance import SCaseMaintainer
from repro.core.query import TopKPairsQuery, answer_snapshot
from repro.exceptions import InvalidParameterError
from repro.scoring.library import k_closest_pairs, paper_scoring_functions
from repro.stream.manager import StreamManager


def build_state(rows, N, K, sf=None, d=2):
    sf = sf if sf is not None else k_closest_pairs(d)
    manager = StreamManager(N, d)
    maintainer = SCaseMaintainer(sf, K)
    ref = BruteForceReference(sf, N)
    for row in rows:
        event = manager.append(row)
        maintainer.on_tick(manager, event.new, event.expired)
        ref.append(row)
    return manager, maintainer, ref


def random_rows(count, d, seed):
    rng = random.Random(seed)
    return [tuple(rng.random() for _ in range(d)) for _ in range(count)]


class TestQueryDescriptor:
    def test_valid(self):
        q = TopKPairsQuery(k_closest_pairs(1), k=3, n=10)
        assert (q.k, q.n) == (3, 10)
        assert not q.continuous

    def test_ids_unique(self):
        sf = k_closest_pairs(1)
        a, b = TopKPairsQuery(sf, 1, 5), TopKPairsQuery(sf, 1, 5)
        assert a.query_id != b.query_id

    def test_k_validated(self):
        with pytest.raises(InvalidParameterError):
            TopKPairsQuery(k_closest_pairs(1), k=0, n=10)

    def test_n_validated(self):
        with pytest.raises(InvalidParameterError):
            TopKPairsQuery(k_closest_pairs(1), k=1, n=1)


class TestSnapshotAnswering:
    def test_matches_brute_force_over_k_n_grid(self):
        N, K = 30, 10
        manager, maintainer, ref = build_state(
            random_rows(90, 2, seed=1), N, K
        )
        now = manager.now_seq
        for k in (1, 2, 5, 10):
            for n in (2, 5, 15, 30):
                got = answer_snapshot(maintainer.pst, k, n, now)
                want = ref.top_k(k, n)
                assert [p.uid for p in got] == [p.uid for p in want], (k, n)

    def test_matches_linear_scan(self):
        N, K = 25, 6
        manager, maintainer, ref = build_state(
            random_rows(70, 2, seed=2), N, K
        )
        now = manager.now_seq
        for k in (1, 3, 6):
            for n in (3, 10, 25):
                pst_answer = answer_snapshot(maintainer.pst, k, n, now)
                scan_answer = linear_top_k(maintainer.skyband, k, n, now)
                assert [p.uid for p in pst_answer] == [
                    p.uid for p in scan_answer
                ]

    def test_every_paper_scoring_function(self):
        for sf in paper_scoring_functions(3):
            manager, maintainer, ref = build_state(
                random_rows(60, 3, seed=4), N=20, K=5, sf=sf, d=3
            )
            got = answer_snapshot(maintainer.pst, 5, 12, manager.now_seq)
            assert [p.uid for p in got] == [p.uid for p in ref.top_k(5, 12)]

    def test_short_stream_returns_what_exists(self):
        manager, maintainer, _ = build_state(
            random_rows(3, 2, seed=5), N=20, K=5
        )
        got = answer_snapshot(maintainer.pst, 10, 20, manager.now_seq)
        assert len(got) == 3  # 3 objects -> 3 pairs

    def test_empty_window(self):
        manager = StreamManager(10, 2)
        maintainer = SCaseMaintainer(k_closest_pairs(2), 3)
        assert answer_snapshot(maintainer.pst, 5, 10, 0) == []

    def test_counters_charged(self):
        counters = Counters()
        manager, maintainer, _ = build_state(
            random_rows(20, 2, seed=6), N=10, K=3
        )
        answer_snapshot(maintainer.pst, 2, 10, manager.now_seq,
                        counters=counters)
        assert counters.answer_scans == 1

    def test_snapshot_theorem1_uses_only_skyband(self):
        """Theorem 1: the K-skyband alone answers every Q(k<=K, n<=N)."""
        N, K = 20, 6
        manager, maintainer, ref = build_state(
            random_rows(100, 2, seed=7), N, K
        )
        skyband_uids = {p.uid for p in maintainer.skyband}
        now = manager.now_seq
        for k in (1, 3, 6):
            for n in (2, 10, 20):
                for pair in ref.top_k(k, n):
                    assert pair.uid in skyband_uids
