"""Tests for Algorithm 4 (joint K-skyband + K-staircase computation)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pair import dominates
from repro.core.skyband_update import update_skyband_and_staircase

from tests.conftest import make_pair_at


def sorted_pairs(age_scores):
    pairs = [make_pair_at(age_score) for age_score in age_scores]
    pairs.sort(key=lambda p: p.score_key)
    return pairs


def brute_skyband(pairs, K):
    members = []
    for p in pairs:
        dominators = sum(1 for q in pairs if dominates(q, p))
        if dominators < K:
            members.append(p)
    members.sort(key=lambda p: p.score_key)
    return members


class TestSkyband:
    def test_paper_figure1_example(self):
        """Fig 1: p6 dominated by p3 and p4, so the 2-skyband is p1..p5."""
        coordinates = {
            "p1": (1, 9.0), "p2": (3, 6.0), "p3": (4, 4.0),
            "p4": (6, 2.0), "p5": (9, 1.0), "p6": (8, 5.0),
        }
        pairs = {name: make_pair_at(c) for name, c in coordinates.items()}
        ordered = sorted(pairs.values(), key=lambda p: p.score_key)
        skyband, _ = update_skyband_and_staircase(ordered, K=2)
        got = {p.uid for p in skyband}
        want = {pairs[name].uid for name in ("p1", "p2", "p3", "p4", "p5")}
        assert got == want

    def test_empty_input(self):
        skyband, staircase = update_skyband_and_staircase([], K=3)
        assert skyband == []
        assert len(staircase) == 0

    def test_k_validation(self):
        with pytest.raises(ValueError):
            update_skyband_and_staircase([], K=0)

    def test_fewer_pairs_than_k_all_kept(self):
        pairs = sorted_pairs([(1, 1.0), (2, 2.0)])
        skyband, staircase = update_skyband_and_staircase(pairs, K=5)
        assert len(skyband) == 2
        assert len(staircase) == 0  # the heap never filled up to K

    def test_k1_is_plain_skyline(self):
        pairs = sorted_pairs([(1, 5.0), (2, 3.0), (3, 4.0), (4, 1.0)])
        skyband, _ = update_skyband_and_staircase(pairs, K=1)
        assert {p.uid for p in skyband} == {
            p.uid for p in brute_skyband(pairs, 1)
        }

    def test_output_sorted_by_score(self):
        rng = random.Random(4)
        pairs = sorted_pairs(
            [(rng.randint(1, 30), rng.uniform(0, 9)) for _ in range(50)]
        )
        skyband, _ = update_skyband_and_staircase(pairs, K=3)
        keys = [p.score_key for p in skyband]
        assert keys == sorted(keys)

    @pytest.mark.parametrize("K", [1, 2, 3, 5, 10])
    def test_matches_brute_force(self, K):
        rng = random.Random(K)
        for trial in range(15):
            pairs = sorted_pairs(
                [
                    (rng.randint(1, 20), rng.choice([1.0, 2.5, 4.0, 7.0]))
                    for _ in range(rng.randint(0, 40))
                ]
            )
            skyband, _ = update_skyband_and_staircase(pairs, K)
            assert {p.uid for p in skyband} == {
                p.uid for p in brute_skyband(pairs, K)
            }

    def test_duplicate_ages_kept_up_to_k(self):
        """At most K pairs of one age can be in the K-skyband (the K
        smallest scores) — the property expiry handling relies on."""
        pairs = sorted_pairs([(5, float(s)) for s in range(10)])
        skyband, _ = update_skyband_and_staircase(pairs, K=3)
        assert len(skyband) == 3
        assert [p.score for p in skyband] == [0.0, 1.0, 2.0]


class TestStaircase:
    def test_invariants_hold(self):
        rng = random.Random(9)
        pairs = sorted_pairs(
            [(rng.randint(1, 25), rng.uniform(0, 9)) for _ in range(60)]
        )
        _, staircase = update_skyband_and_staircase(pairs, K=4)
        staircase.check_invariants()

    def test_dominance_equivalence(self):
        """A probe point is dominated by >= K skyband pairs iff the
        staircase says so — the defining property of §V-A.1."""
        rng = random.Random(21)
        pairs = sorted_pairs(
            [(rng.randint(1, 25), rng.uniform(0, 9)) for _ in range(60)]
        )
        K = 3
        skyband, staircase = update_skyband_and_staircase(pairs, K)
        for _ in range(200):
            probe = make_pair_at((rng.randint(1, 30), rng.uniform(0, 10)))
            brute = (
                sum(1 for q in skyband if dominates(q, probe)) >= K
            )
            assert staircase.dominates(probe.score_key, probe.age_key) == brute

    def test_first_point_appears_at_kth_pair(self):
        pairs = sorted_pairs([(i, float(i)) for i in range(1, 6)])
        _, staircase = update_skyband_and_staircase(pairs, K=3)
        points = staircase.points()
        assert points[0][0] == pairs[2].score_key


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(1, 25), st.floats(0, 50)),
        max_size=50,
    ),
    st.integers(1, 8),
)
def test_property_algorithm4_equals_brute_force(age_scores, K):
    pairs = sorted_pairs(age_scores)
    skyband, staircase = update_skyband_and_staircase(pairs, K)
    assert {p.uid for p in skyband} == {p.uid for p in brute_skyband(pairs, K)}
    staircase.check_invariants()
