"""Unit tests for the KStaircase structure itself."""

from __future__ import annotations

import math

import pytest

from repro.core.staircase import KStaircase


def key(score):
    """A minimal score key comparable with pair score keys."""
    return (score, 0, 0)


class TestEmpty:
    def test_dominates_nothing(self):
        staircase = KStaircase()
        assert not staircase.dominates(key(5.0), 10)
        assert len(staircase) == 0
        assert not staircase


class TestDominates:
    @pytest.fixture
    def staircase(self):
        # scores ascending, age thresholds non-increasing
        return KStaircase([(key(1.0), -10), (key(3.0), -20), (key(5.0), -30)])

    def test_point_right_of_a_step_and_below(self, staircase):
        # score 4 > 3.0 step, age_key -15 >= -20 -> dominated
        assert staircase.dominates(key(4.0), -15)

    def test_point_above_all_steps(self, staircase):
        # score 4 but age_key -25 < -20 (more recent than the threshold)
        assert not staircase.dominates(key(4.0), -25)

    def test_point_left_of_first_step(self, staircase):
        assert not staircase.dominates(key(0.5), 100)

    def test_score_equal_to_step_not_dominated_by_it(self, staircase):
        """Dominance needs a strictly smaller score key."""
        assert not staircase.dominates(key(1.0), -10)
        # but the previous step still applies for the 3.0 probe
        assert staircase.dominates(key(3.0), -10)

    def test_largest_step_applies_to_far_right(self, staircase):
        assert staircase.dominates(key(100.0), -30)
        assert not staircase.dominates(key(100.0), -31)

    def test_threshold_probe_with_minus_inf(self, staircase):
        """The TA dummy point uses (score, -inf, -inf) as its key."""
        probe = (3.0, -math.inf, -math.inf)
        assert staircase.dominates(probe, -10)
        assert not staircase.dominates(probe, -11)


class TestInvariants:
    def test_valid_staircase_passes(self):
        KStaircase([(key(1.0), 5), (key(2.0), 5), (key(3.0), 1)]).check_invariants()

    def test_unsorted_scores_detected(self):
        staircase = KStaircase.__new__(KStaircase)
        staircase._score_keys = [key(2.0), key(1.0)]
        staircase._age_keys = [5, 5]
        with pytest.raises(AssertionError):
            staircase.check_invariants()

    def test_increasing_ages_detected(self):
        staircase = KStaircase.__new__(KStaircase)
        staircase._score_keys = [key(1.0), key(2.0)]
        staircase._age_keys = [1, 5]
        with pytest.raises(AssertionError):
            staircase.check_invariants()

    def test_points_roundtrip(self):
        points = [(key(1.0), 9), (key(4.0), 2)]
        assert KStaircase(points).points() == points
